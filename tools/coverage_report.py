#!/usr/bin/env python3
"""Aggregate gcov line coverage from a -DSM_COVERAGE=ON build.

Usage:
    tools/coverage_report.py BUILD_DIR [--floor DIR=PCT]... [--json OUT]

Walks BUILD_DIR for .gcda counter files (written when the instrumented
tests run), invokes gcov in JSON mode, and merges line records across
translation units: a line is covered if any TU executed it.  Coverage is
reported per top-level source directory (src/core, src/spoof, ...) and
each --floor DIR=PCT becomes a gate: exit 1 when DIR's line coverage
falls below PCT.

Only the stdlib and the gcov binary are required.
"""

import argparse
import collections
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def run_gcov(gcda_paths, cwd):
    """Returns the parsed JSON documents for a batch of .gcda files."""
    cmd = ["gcov", "--json-format", "--stdout"] + gcda_paths
    proc = subprocess.run(cmd, cwd=cwd, stdout=subprocess.PIPE,
                          stderr=subprocess.DEVNULL, check=False)
    docs = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return docs


def source_key(path, repo_root):
    """Repo-relative path for sources inside the tree, else None."""
    path = os.path.normpath(os.path.join(repo_root, path)
                            if not os.path.isabs(path) else path)
    try:
        rel = os.path.relpath(path, repo_root)
    except ValueError:
        return None
    if rel.startswith(".."):
        return None
    return rel


def collect(build_dir, repo_root):
    """{source: {line_number: max_count}} for sources under the repo."""
    lines = collections.defaultdict(dict)
    by_dir = collections.defaultdict(list)
    for gcda in find_gcda(build_dir):
        by_dir[os.path.dirname(gcda)].append(os.path.basename(gcda))
    for cwd, names in sorted(by_dir.items()):
        for doc in run_gcov(sorted(names), cwd):
            for entry in doc.get("files", []):
                key = source_key(entry.get("file", ""), repo_root)
                if key is None:
                    continue
                merged = lines[key]
                for rec in entry.get("lines", []):
                    number = rec.get("line_number")
                    count = rec.get("count", 0)
                    if number is None:
                        continue
                    merged[number] = max(merged.get(number, 0), count)
    return lines


def group(lines):
    """Per-directory (and total) [covered, executable] line tallies.

    Only product sources under src/ count; the tests' and benches' own
    line coverage is trivially high and would dilute the floors.
    """
    stats = collections.defaultdict(lambda: [0, 0])
    for source, merged in lines.items():
        parts = source.split(os.sep)
        if parts[0] != "src" or len(parts) < 2:
            continue
        scope = os.sep.join(parts[:2])
        for count in merged.values():
            stats[scope][1] += 1
            stats["total"][1] += 1
            if count > 0:
                stats[scope][0] += 1
                stats["total"][0] += 1
    return stats


def parse_floor(spec):
    scope, _, pct = spec.partition("=")
    if not pct:
        raise argparse.ArgumentTypeError(
            f"--floor wants DIR=PCT, got {spec!r}")
    return scope, float(pct)


def main():
    parser = argparse.ArgumentParser(
        description="gcov aggregation with per-directory floors")
    parser.add_argument("build_dir")
    parser.add_argument("--floor", action="append", type=parse_floor,
                        default=[], metavar="DIR=PCT")
    parser.add_argument("--json", metavar="OUT",
                        help="also write the per-directory table as JSON")
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    lines = collect(args.build_dir, repo_root)
    if not lines:
        print(f"coverage: no .gcda under {args.build_dir} — build with "
              "-DSM_COVERAGE=ON and run the tests first", file=sys.stderr)
        return 2

    stats = group(lines)
    floors = dict(args.floor)
    failures = []
    print(f"{'scope':<18} {'covered':>8} {'lines':>8} {'pct':>7}  floor")
    for scope in sorted(stats, key=lambda s: (s == "total", s)):
        covered, executable = stats[scope]
        pct = 100.0 * covered / executable if executable else 0.0
        floor = floors.get(scope)
        mark = ""
        if floor is not None:
            mark = f"{floor:.1f}"
            if pct < floor:
                mark += "  FAIL"
                failures.append((scope, pct, floor))
        print(f"{scope:<18} {covered:>8} {executable:>8} {pct:>6.1f}%  {mark}")

    for scope in floors:
        if scope not in stats:
            failures.append((scope, 0.0, floors[scope]))
            print(f"{scope:<18} {'-':>8} {'-':>8} {'-':>7}  "
                  f"{floors[scope]:.1f}  FAIL (no sources seen)")

    if args.json:
        table = {
            scope: {
                "covered": stats[scope][0],
                "lines": stats[scope][1],
                "pct": round(100.0 * stats[scope][0] / stats[scope][1], 2)
                if stats[scope][1] else 0.0,
            }
            for scope in stats
        }
        with open(args.json, "w") as out:
            json.dump(table, out, indent=2, sort_keys=True)
            out.write("\n")

    if failures:
        for scope, pct, floor in failures:
            print(f"coverage: {scope} at {pct:.1f}% is below the "
                  f"{floor:.1f}% floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
