// sm-campaign-worker: one process shard of a supervised campaign.
//
//   sm-campaign-worker --workload synthetic:10000 --seed 0x5EED
//       --shards 4 --shard 1 --checkpoint dir/shard-1.ckpt
//
// Runs the trials of its static share (trial index % shards == shard),
// appending each completed trial to its own checkpoint file, so the
// worker itself is crash-safe: killed and relaunched with the same
// arguments it resumes from its last completed trial. Deliberately
// single-threaded — the supervisor's parallelism is processes, and one
// thread per process keeps a kill's blast radius to exactly one
// in-flight trial.
//
// Heartbeat protocol on stdout (the supervisor reads these for
// liveness):
//   ready <shard> <own-trials> <already-done>
//   done <trial-index>
//   complete <executed> <resumed>
//
// A .lock file (flock, held for the process lifetime) next to the
// checkpoint makes a double-launch of the same shard fail loudly
// instead of interleaving two writers into one append stream.
//
// --fault-byte-budget N arms the checkpoint writer's fault hook: after N
// more checkpoint body bytes the current append is cut mid-frame and the
// process _exit()s — a deterministic stand-in for kill -9 landing inside
// a checkpoint write (exit code 86 so the harness can tell the planned
// fault from a real crash).
#include <sys/file.h>
#include <sys/stat.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/workloads.hpp"

#include <fcntl.h>
#include <unistd.h>

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --workload <spec> --checkpoint <file> "
               "[--seed S] [--shards N --shard K] [--fault-byte-budget N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string workload, checkpoint;
  uint64_t seed = sm::campaign::CampaignOptions{}.campaign_seed;
  size_t shards = 1, shard = 0;
  long long fault_budget = -1;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--workload" && (v = next())) {
      workload = v;
    } else if (a == "--checkpoint" && (v = next())) {
      checkpoint = v;
    } else if (a == "--seed" && (v = next())) {
      seed = std::strtoull(v, nullptr, 0);
    } else if (a == "--shards" && (v = next())) {
      shards = std::strtoull(v, nullptr, 0);
    } else if (a == "--shard" && (v = next())) {
      shard = std::strtoull(v, nullptr, 0);
    } else if (a == "--fault-byte-budget" && (v = next())) {
      fault_budget = std::strtoll(v, nullptr, 0);
    } else {
      return usage(argv[0]);
    }
  }
  if (workload.empty() || checkpoint.empty() || shards == 0 ||
      shard >= shards) {
    return usage(argv[0]);
  }
  // Heartbeats must reach the supervisor promptly, not on buffer flush.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);

  try {
    std::vector<sm::campaign::Trial> trials =
        sm::campaign::build_workload(workload);
    sm::campaign::CampaignOptions options;
    options.campaign_seed = seed;

    // One writer per shard file, enforced: a second worker launched on
    // the same shard blocks here and exits instead of corrupting the
    // append stream. The lock dies with the process, so kill -9 never
    // leaves a stale one.
    std::string lock_path = checkpoint + ".lock";
    int lock_fd = ::open(lock_path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC,
                         0644);
    if (lock_fd < 0 || ::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
      std::fprintf(stderr, "shard %zu: cannot lock %s (another worker?)\n",
                   shard, lock_path.c_str());
      return 3;
    }

    sm::campaign::CheckpointState state =
        sm::campaign::load_checkpoint(checkpoint);
    sm::campaign::CheckpointMeta meta =
        sm::campaign::checkpoint_meta(trials, options);
    sm::campaign::CheckpointFile ckpt;
    ckpt.open(checkpoint, state, meta);
    if (fault_budget >= 0) {
      ckpt.writer().set_fault_budget(fault_budget, [] { ::_exit(86); });
    }

    size_t own = 0, already = 0;
    for (size_t i = shard; i < trials.size(); i += shards) {
      ++own;
      if (state.trials.count(i)) ++already;
    }
    std::printf("ready %zu %zu %zu\n", shard, own, already);

    size_t executed = 0;
    for (size_t i = shard; i < trials.size(); i += shards) {
      if (state.trials.count(i)) continue;
      sm::campaign::TrialResult slot;
      std::unique_ptr<sm::obs::Registry> snapshot;
      sm::campaign::execute_trial(trials[i], i, options, slot, &snapshot);
      if (!ckpt.append(slot, snapshot.get())) {
        std::fprintf(stderr, "shard %zu: checkpoint append failed: %s\n",
                     shard, ckpt.writer().error().c_str());
        return 4;
      }
      ++executed;
      std::printf("done %zu\n", i);
    }
    ckpt.sync();
    std::printf("complete %zu %zu\n", executed, already);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "shard %zu: %s\n", shard, e.what());
    return 1;
  }
}
