// Test-list campaign: the full platform loop — parse a Citizen-Lab-style
// target list, schedule a stealthy DNS measurement per target with
// jittered pacing, and emit the results as OONI-style JSON lines (with
// the observability metrics snapshot appended) plus a per-category
// summary table and a sim-time Chrome trace of the whole campaign.
//
//   $ ./testlist_campaign [trace.json]
#include <cstdio>

#include "analysis/report.hpp"
#include "core/mimicry.hpp"
#include "core/probe.hpp"
#include "core/report_json.hpp"
#include "core/risk.hpp"
#include "core/scheduler.hpp"
#include "core/targets.hpp"

using namespace sm;

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "testlist_trace.json";
  core::TargetList list = core::TargetList::builtin_sample();
  std::printf("campaign over %zu targets (%zu categories), stateless DNS "
              "mimicry with 6 cover queries each\n\n",
              list.size(), list.categories().size());

  core::TestbedConfig config;
  config.enable_observability = true;
  core::Testbed tb(config);
  core::MeasurementScheduler scheduler(tb);
  for (const auto& target : list.targets()) {
    scheduler.enqueue([domain = target.domain](core::Testbed& t) {
      return std::make_unique<core::StatelessDnsMimicryProbe>(
          t, core::StatelessMimicryOptions{.domain = domain,
                                           .cover_count = 6});
    });
  }
  auto reports = scheduler.run_all();
  tb.run_for(common::Duration::seconds(2));

  // Per-category rollup.
  analysis::Table table({"category", "targets", "blocked", "verdicts"});
  for (const auto& category : list.categories()) {
    auto targets = list.by_category(category);
    size_t blocked = 0;
    std::string verdicts;
    for (const auto& target : targets) {
      for (const auto& report : reports) {
        if (report.target != target.domain) continue;
        if (core::is_blocked(report.verdict)) ++blocked;
        if (!verdicts.empty()) verdicts += ", ";
        verdicts += std::string(core::to_string(report.verdict));
      }
    }
    table.add_row({category, analysis::Table::num(uint64_t(targets.size())),
                   analysis::Table::num(uint64_t(blocked)), verdicts});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  // Campaign-level risk, once, for the whole run.
  core::RiskReport risk = core::assess_risk(tb, "campaign");
  std::printf("campaign risk: %s\n\n", risk.to_string().c_str());

  // The machine-readable report file (JSON lines), with the campaign's
  // metrics snapshot as its final line.
  std::vector<std::pair<core::ProbeReport, core::RiskReport>> rows;
  for (const auto& report : reports) rows.emplace_back(report, risk);
  std::printf("--- report.jsonl ---\n%s",
              core::to_jsonl(rows, tb.metrics_snapshot()).c_str());

  if (tb.tracer().save(trace_path)) {
    std::printf("\nwrote %s (%zu events, %llu dropped) — open in "
                "chrome://tracing\n",
                trace_path, tb.tracer().size(),
                static_cast<unsigned long long>(tb.tracer().dropped()));
  }
  return 0;
}
