// Test-list campaign: the full platform loop — parse a Citizen-Lab-style
// target list, run a stealthy DNS measurement per target through the
// parallel campaign runner (one private testbed per target, sharded
// across hardware threads), and emit the results as OONI-style JSON
// lines with the merged observability metrics snapshot appended, plus a
// per-category summary table.
//
// The report is byte-identical whatever -j is: trials are seeded by
// index and merged in index order (see DESIGN.md "Campaign execution").
//
//   $ ./testlist_campaign [-j N]      # N worker threads, 0/default = all
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/report.hpp"
#include "campaign/campaign.hpp"
#include "core/mimicry.hpp"
#include "core/targets.hpp"

using namespace sm;

int main(int argc, char** argv) {
  size_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atol(argv[++i]));
    } else if (std::strncmp(argv[i], "-j", 2) == 0) {
      threads = static_cast<size_t>(std::atol(argv[i] + 2));
    }
  }

  core::TargetList list = core::TargetList::builtin_sample();
  std::printf("campaign over %zu targets (%zu categories), stateless DNS "
              "mimicry with 6 cover queries each, %zu worker thread(s)\n\n",
              list.size(), list.categories().size(),
              campaign::resolve_threads(threads));

  std::vector<campaign::Trial> trials;
  for (const auto& target : list.targets()) {
    core::TestbedConfig config;
    config.enable_observability = true;
    trials.push_back(campaign::Trial{
        .name = target.domain,
        .config = config,
        .factory = [domain = target.domain](core::Testbed& t) {
          return std::make_unique<core::StatelessDnsMimicryProbe>(
              t, core::StatelessMimicryOptions{.domain = domain,
                                               .cover_count = 6});
        }});
  }
  campaign::CampaignOptions options;
  options.threads = threads;
  campaign::CampaignResult result = campaign::run(trials, options);

  // Per-category rollup (results are ordered by trial index = list order).
  analysis::Table table({"category", "targets", "blocked", "verdicts"});
  for (const auto& category : list.categories()) {
    auto targets = list.by_category(category);
    size_t blocked = 0;
    std::string verdicts;
    for (const auto& target : targets) {
      for (const auto& trial : result.trials) {
        if (trial.failed || trial.report.target != target.domain) continue;
        if (core::is_blocked(trial.report.verdict)) ++blocked;
        if (!verdicts.empty()) verdicts += ", ";
        verdicts += std::string(core::to_string(trial.report.verdict));
      }
    }
    table.add_row({category, analysis::Table::num(uint64_t(targets.size())),
                   analysis::Table::num(uint64_t(blocked)), verdicts});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  // Campaign-level risk rollup: every trial ran in its own testbed, so
  // the platform-operator view is the count of trials that stayed clean.
  size_t evaded = 0;
  for (const auto& trial : result.trials)
    if (!trial.failed && trial.risk.evaded) ++evaded;
  std::printf("campaign risk: %zu/%zu trials evaded the MVR, %zu failed\n\n",
              evaded, result.trials.size(), result.failures);

  // The machine-readable report file (JSON lines), with the campaign's
  // merged metrics snapshot as its final line.
  std::printf("--- report.jsonl ---\n%s", result.to_jsonl().c_str());
  return 0;
}
