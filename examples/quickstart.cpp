// Quickstart: build the reference testbed (paper Fig. 1), run one stealthy
// scanning measurement (Method #1) against a censored service, and check
// both evaluation criteria — did we detect the blocking (accuracy), and
// did the surveillance MVR log us (evasion)?
//
//   $ ./quickstart
#include <cstdio>

#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"

int main() {
  using namespace sm;

  // A GFC-style censor that also null-routes the blocked site's address.
  core::TestbedConfig config;
  config.policy = censor::gfc_profile();
  config.policy.blocked_ips.push_back(core::TestbedAddresses{}.web_blocked);

  core::Testbed tb(config);

  // Method #1: nmap-style SYN scan of the top 100 ports. Port 80 must be
  // open on a web site; if it is not, something on the path is blocking.
  core::ScanOptions options;
  options.target = tb.addr().web_blocked;
  options.ports = core::top_tcp_ports(100);
  options.expected_open = {80};

  core::ScanProbe probe(tb, options);
  core::ProbeReport report = core::run_probe(tb, probe);

  std::printf("measurement : %s\n", report.to_string().c_str());

  core::RiskReport risk = core::assess_risk(tb, report.technique);
  std::printf("risk        : %s\n", risk.to_string().c_str());

  bool accurate = report.verdict == core::Verdict::BlockedTimeout;
  std::printf("\naccuracy: %s (expected blocked-timeout on a null-routed "
              "service)\n", accurate ? "PASS" : "FAIL");
  std::printf("evasion : %s (no targeted alert stored by the MVR)\n",
              risk.evaded ? "PASS" : "FAIL");
  return accurate && risk.evaded ? 0 : 1;
}
