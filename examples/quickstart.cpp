// Quickstart: build the reference testbed (paper Fig. 1), run one stealthy
// scanning measurement (Method #1) against a censored service, and check
// both evaluation criteria — did we detect the blocking (accuracy), and
// did the surveillance MVR log us (evasion)?
//
// With the observability layer enabled, the run also dumps a metrics
// snapshot (every counter the adversary-side subsystems accumulated) and
// a sim-time Chrome trace you can open in chrome://tracing.
//
//   $ ./quickstart [metrics.json [trace.json]]
#include <cstdio>

#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"

int main(int argc, char** argv) {
  using namespace sm;
  const char* metrics_path =
      argc > 1 ? argv[1] : "quickstart_metrics.json";
  const char* trace_path = argc > 2 ? argv[2] : "quickstart_trace.json";

  // A GFC-style censor that also null-routes the blocked site's address.
  core::TestbedConfig config;
  config.policy = censor::gfc_profile();
  config.policy.blocked_ips.push_back(core::TestbedAddresses{}.web_blocked);
  config.enable_observability = true;

  core::Testbed tb(config);

  // Method #1: nmap-style SYN scan of the top 100 ports. Port 80 must be
  // open on a web site; if it is not, something on the path is blocking.
  core::ScanOptions options;
  options.target = tb.addr().web_blocked;
  options.ports = core::top_tcp_ports(100);
  options.expected_open = {80};

  core::ScanProbe probe(tb, options);
  core::ProbeReport report = core::run_probe(tb, probe);

  std::printf("measurement : %s\n", report.to_string().c_str());

  core::RiskReport risk = core::assess_risk(tb, report.technique);
  std::printf("risk        : %s\n", risk.to_string().c_str());

  bool accurate = report.verdict == core::Verdict::BlockedTimeout;
  std::printf("\naccuracy: %s (expected blocked-timeout on a null-routed "
              "service)\n", accurate ? "PASS" : "FAIL");
  std::printf("evasion : %s (no targeted alert stored by the MVR)\n",
              risk.evaded ? "PASS" : "FAIL");

  // Observability export: metrics snapshot + flight-recorder trace.
  std::string metrics = tb.metrics_json();
  if (FILE* f = std::fopen(metrics_path, "w")) {
    std::fwrite(metrics.data(), 1, metrics.size(), f);
    std::fclose(f);
    std::printf("\nmetrics : %s (%zu series)\n", metrics_path,
                tb.metrics().series_count());
  }
  if (tb.tracer().save(trace_path)) {
    std::printf("trace   : %s (%zu events, %llu dropped) — open in "
                "chrome://tracing\n",
                trace_path, tb.tracer().size(),
                static_cast<unsigned long long>(tb.tracer().dropped()));
  }
  return accurate && risk.evaded ? 0 : 1;
}
