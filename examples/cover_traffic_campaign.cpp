// Cover-traffic campaign (§4): one real measurement hidden inside spoofed
// cover from the whole /24. Shows what the surveillance analyst ends up
// with: suspicion spread across the AS, attribution entropy, and the
// TTL-limited replies that keep spoofed hosts from RST-ing the mimicry.
//
//   $ ./cover_traffic_campaign [cover_flows]
#include <cstdio>
#include <cstdlib>
#include <cmath>

#include "common/stats.hpp"
#include "core/mimicry.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"

using namespace sm;

int main(int argc, char** argv) {
  size_t cover = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 15;

  core::TestbedConfig config;
  config.neighbor_count = 20;
  core::Testbed tb(config);

  std::printf("campaign: 1 real fetch of a censored-keyword URL + %zu "
              "spoofed cover flows\n\n", cover);

  core::StatefulMimicryProbe probe(
      tb, {.path = "/search?q=falun", .cover_flows = cover});
  core::ProbeReport report = core::run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(2));

  std::printf("measurement : %s\n", report.to_string().c_str());
  std::printf("cover flows : %zu started, replies TTL-limited to die "
              "after the tap\n", probe.cover_flows_started());
  std::printf("router      : %llu replies expired in the network (ICMP "
              "time-exceeded)\n",
              static_cast<unsigned long long>(
                  tb.router->counters().icmp_time_exceeded));

  // What does the analyst see? Suspicion spread over the AS.
  auto population = tb.client_as_addresses();
  std::vector<size_t> alert_counts;
  size_t flagged_hosts = 0;
  for (auto addr : population) {
    uint64_t noise = tb.mvr->noise_alerts_for(addr);
    alert_counts.push_back(static_cast<size_t>(noise));
    if (noise > 0) ++flagged_hosts;
  }
  core::RiskReport risk = core::assess_risk(tb, "mimicry-stateful");
  std::printf("\nanalyst view:\n");
  std::printf("  hosts with any (noise) alert : %zu of %zu\n", flagged_hosts,
              population.size());
  std::printf("  attribution entropy          : %.2f bits (max %.2f)\n",
              common::entropy_bits(alert_counts),
              std::log2(static_cast<double>(population.size())));
  std::printf("  P(attribute to real client)  : %.3f\n",
              risk.attribution_probability);
  std::printf("  targeted alerts on client    : %llu -> evaded=%s\n",
              static_cast<unsigned long long>(risk.targeted_alerts),
              risk.evaded ? "yes" : "no");
  return 0;
}
