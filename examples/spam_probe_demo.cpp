// Spam probe walkthrough (Method #2, §3.1): MX lookup -> A lookup ->
// SMTP delivery of a spam-cloaked message, against three targets that
// exercise the three outcomes — delivered (open), DNS-forged (GFC-style),
// and silently dropped (null-routed mail server). Also scores the actual
// transmitted message with the Proofpoint-like scorer, previewing Fig. 2.
//
//   $ ./spam_probe_demo
#include <cstdio>

#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/spam.hpp"
#include "spamfilter/scorer.hpp"

using namespace sm;

namespace {

void run_case(const char* label, const core::TestbedConfig& config,
              const std::string& domain) {
  core::Testbed tb(config);
  core::SpamProbe probe(tb, {.domain = domain});
  core::ProbeReport report = core::run_probe(tb, probe);
  core::RiskReport risk = core::assess_risk(tb, "spam");

  spamfilter::Scorer scorer;
  auto score = scorer.score_raw(probe.message());

  std::printf("--- %s (%s)\n", label, domain.c_str());
  std::printf("  verdict    : %s [%s]\n",
              std::string(core::to_string(report.verdict)).c_str(),
              report.detail.c_str());
  std::printf("  spam score : %.1f/100 (classified %s — blends with bulk "
              "spam)\n", score.score, score.is_spam() ? "SPAM" : "HAM");
  std::printf("  evasion    : %s (noise alerts=%llu, targeted=%llu)\n\n",
              risk.evaded ? "yes" : "NO",
              static_cast<unsigned long long>(risk.noise_alerts),
              static_cast<unsigned long long>(risk.targeted_alerts));
}

}  // namespace

int main() {
  core::TestbedConfig gfc;
  gfc.policy = censor::gfc_profile();

  run_case("open domain, spam delivered", gfc, "open.example");
  run_case("GFC DNS forgery (bad A for MX query)", gfc, "twitter.com");

  core::TestbedConfig dropping = gfc;
  dropping.policy.blocked_ips.push_back(
      core::TestbedAddresses{}.mail_blocked);
  run_case("null-routed mail server", dropping, "blocked.example");
  return 0;
}
