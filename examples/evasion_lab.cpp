// Evasion lab: the arms race around the censor's and the surveillance
// system's packet-processing limits, in one run.
//
//   round 1 — keyword in one segment           -> censor RSTs it
//   round 2 — keyword split across IP fragments-> fragment-blind censor
//                                                 misses it (Khattak-style)
//   round 3 — censor turns on defragmentation  -> caught again
//   round 4 — TTL-limited cover replies        -> invisible to spoofed
//                                                 hosts, visible to the tap
//   round 5 — surveillance adds TTL normalizer -> cover unravels, but
//                                                 traceroute breaks (the
//                                                 paper's predicted cost)
//
//   $ ./evasion_lab
#include <cstdio>

#include "core/probe.hpp"
#include "core/testbed.hpp"
#include "packet/fragment.hpp"
#include "spoof/cover.hpp"
#include "surveillance/normalizer.hpp"

using namespace sm;

namespace {

void send_keyword(core::Testbed& tb, size_t mtu) {
  std::string req = "GET /search?q=falun HTTP/1.1\r\nHost: x\r\n\r\n";
  packet::IpOptions opt;
  opt.dont_fragment = false;
  opt.identification = 7;
  packet::Packet p = packet::make_tcp(
      tb.addr().client, tb.addr().web_blocked, 5555, 80,
      packet::TcpFlags::kAck, 1000, 1, common::to_bytes(req), opt);
  for (auto& f : packet::fragment(p, mtu)) tb.client->send(std::move(f));
  tb.run_for(common::Duration::millis(50));
}

core::TestbedConfig config(bool defrag) {
  core::TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.reassemble_ip_fragments = defrag;
  return cfg;
}

}  // namespace

int main() {
  {
    core::Testbed tb(config(false));
    send_keyword(tb, 1500);
    std::printf("round 1: keyword in one segment        -> censor RST "
                "bursts: %llu (detected)\n",
                (unsigned long long)tb.censor_tap->stats().rst_bursts);
  }
  {
    core::Testbed tb(config(false));
    send_keyword(tb, 56);
    std::printf("round 2: keyword split across fragments-> censor RST "
                "bursts: %llu (evaded!)\n",
                (unsigned long long)tb.censor_tap->stats().rst_bursts);
  }
  {
    core::Testbed tb(config(true));
    send_keyword(tb, 56);
    std::printf("round 3: censor defragments            -> censor RST "
                "bursts: %llu (caught again)\n",
                (unsigned long long)tb.censor_tap->stats().rst_bursts);
  }
  {
    core::Testbed tb(config(false));
    tb.mimicry_server->register_cover_client(tb.neighbors[0]->address(), 1);
    spoof::StatefulMimicryClient mimic(*tb.client, tb.addr().measurement,
                                       80, tb.config().mimicry_secret,
                                       common::Duration::millis(10));
    mimic.run_flow(tb.neighbors[0]->address(),
                   "GET / HTTP/1.1\r\nHost: m\r\n\r\n");
    tb.run_for(common::Duration::seconds(2));
    std::printf("round 4: TTL-limited cover flow        -> spoofed host "
                "RSTs: %llu, flow served: %llu (stealthy & complete)\n",
                (unsigned long long)tb.neighbor_stacks[0]->stats().rst_out,
                (unsigned long long)tb.measurement_http->requests_served());
  }
  {
    core::Testbed tb(config(false));
    surveillance::TtlNormalizerStats stats;
    tb.router->set_transformer(surveillance::make_ttl_normalizer(10,
                                                                 &stats));
    tb.mimicry_server->register_cover_client(tb.neighbors[0]->address(), 1);
    spoof::StatefulMimicryClient mimic(*tb.client, tb.addr().measurement,
                                       80, tb.config().mimicry_secret,
                                       common::Duration::millis(10));
    mimic.run_flow(tb.neighbors[0]->address(),
                   "GET / HTTP/1.1\r\nHost: m\r\n\r\n");
    // The broken-diagnostics cost: a traceroute probe that should expire.
    uint64_t te = 0;
    tb.client->set_icmp_handler(
        [&te](const packet::Decoded& d, const common::Bytes&) {
          if (d.icmp->type == packet::IcmpHeader::kTimeExceeded) ++te;
        });
    tb.client->send_udp(tb.addr().web_open, 33434, 33434,
                        common::to_bytes("traceroute"), /*ttl=*/1);
    tb.run_for(common::Duration::seconds(2));
    std::printf("round 5: surveillance normalizes TTLs  -> spoofed host "
                "RSTs: %llu (cover unraveled), traceroute replies: %llu "
                "(diagnostics broken)\n",
                (unsigned long long)tb.neighbor_stacks[0]->stats().rst_out,
                (unsigned long long)te);
  }
  std::printf("\nNo move is free: each measure has a counter, and each "
              "counter has a cost — §4.2 and §7 of the paper in "
              "miniature.\n");
  return 0;
}
