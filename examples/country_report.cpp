// Country report: run every measurement technique (overt baselines plus
// the paper's three stealthy methods and both mimicry variants) against a
// censored and an uncensored target, and print a censorship report plus a
// per-technique risk assessment — the decision table a measurement
// platform operator would actually read.
//
//   $ ./country_report
#include <cstdio>

#include "analysis/report.hpp"
#include "core/background.hpp"
#include "core/ddos.hpp"
#include "core/mimicry.hpp"
#include "core/overt.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"
#include "core/spam.hpp"

using namespace sm;

namespace {

struct Row {
  core::ProbeReport report;
  core::RiskReport risk;
};

/// Runs one probe in a *fresh* testbed (so risk is attributable to that
/// technique alone) with background population traffic for realism.
template <typename ProbeT, typename Options>
Row run_in_fresh_testbed(const core::TestbedConfig& config,
                         const Options& options) {
  core::Testbed tb(config);
  core::BackgroundTraffic bg(tb);
  bg.schedule(common::Duration::seconds(5));
  ProbeT probe(tb, options);
  Row row;
  row.report = core::run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(2));  // let background drain
  row.risk = core::assess_risk(tb, row.report.technique);
  return row;
}

}  // namespace

int main() {
  core::TestbedConfig config;
  config.policy = censor::gfc_profile();
  config.policy.blocked_ips.push_back(core::TestbedAddresses{}.mail_blocked);

  std::vector<Row> rows;
  rows.push_back(run_in_fresh_testbed<core::OvertDnsProbe>(
      config, core::OvertDnsOptions{.domain = "twitter.com"}));
  rows.push_back(run_in_fresh_testbed<core::OvertHttpProbe>(
      config, core::OvertHttpOptions{.domain = "blocked.example"}));
  {
    core::ScanOptions scan;
    scan.target = core::TestbedAddresses{}.web_blocked;
    scan.ports = core::top_tcp_ports(100);
    rows.push_back(run_in_fresh_testbed<core::ScanProbe>(config, scan));
  }
  rows.push_back(run_in_fresh_testbed<core::SpamProbe>(
      config, core::SpamOptions{.domain = "blocked.example"}));
  rows.push_back(run_in_fresh_testbed<core::DdosProbe>(
      config, core::DdosOptions{.domain = "blocked.example"}));
  rows.push_back(run_in_fresh_testbed<core::StatelessDnsMimicryProbe>(
      config, core::StatelessMimicryOptions{.domain = "youtube.com"}));
  rows.push_back(run_in_fresh_testbed<core::StatefulMimicryProbe>(
      config, core::StatefulMimicryOptions{.path = "/search?q=falun"}));

  analysis::Table table({"technique", "target", "verdict", "evaded MVR",
                         "analyst suspicion", "attribution P"});
  for (const auto& row : rows) {
    table.add_row({row.report.technique, row.report.target,
                   std::string(core::to_string(row.report.verdict)),
                   row.risk.evaded ? "yes" : "NO",
                   analysis::Table::num(row.risk.suspicion),
                   analysis::Table::num(row.risk.attribution_probability)});
  }
  std::printf("Censorship measurement report (GFC-style censor)\n\n%s\n",
              table.to_markdown().c_str());

  std::printf("Reading: every stealthy technique should detect its "
              "mechanism (accuracy)\nwith 'evaded MVR' = yes; the overt "
              "baselines detect it too but are logged.\n");
  return 0;
}
