// E15 — ablation: application fingerprinting vs. implementation hygiene
// (§3.2.1 / "The Parrot is Dead" [22]).
//
// The paper concedes that a surveillance operator willing to write
// bespoke rules could fingerprint the measurement tool's implementation
// artifacts. We make that concrete: a naive scanner that allocates its
// source ports from one contiguous block is trivially fingerprintable;
// real nmap (and the hardened probe) randomizes them. The 2x2 matrix
// shows both sides — the fingerprint rule catches only the naive
// implementation, and costs the operator nothing against the hardened
// one.
#include <cstdio>

#include "analysis/report.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"

using namespace sm;

namespace {

struct Cell {
  core::Verdict verdict;
  bool evaded;
};

Cell run(bool fingerprint_rules, bool randomized_probe) {
  core::TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.blocked_ips.push_back(core::TestbedAddresses{}.web_blocked);
  cfg.mvr.enable_fingerprint_rules = fingerprint_rules;
  core::Testbed tb(cfg);

  core::ScanOptions opts;
  opts.target = tb.addr().web_blocked;
  opts.ports = core::top_tcp_ports(100);
  opts.expected_open = {80};
  opts.randomize_source_ports = randomized_probe;
  core::ScanProbe probe(tb, opts);
  core::ProbeReport report = core::run_probe(tb, probe);
  core::RiskReport risk = core::assess_risk(tb, "scan");
  return Cell{report.verdict, risk.evaded};
}

}  // namespace

int main() {
  std::printf("E15 — fingerprinting the scanner's implementation "
              "artifacts (paper §3.2.1 caveat)\n\n");

  analysis::Table table({"surveillance ruleset", "naive scanner "
                         "(contiguous sports)", "hardened scanner "
                         "(randomized, nmap-like)"});
  Cell naive_community = run(false, false);
  Cell hard_community = run(false, true);
  Cell naive_fp = run(true, false);
  Cell hard_fp = run(true, true);
  auto cell = [](const Cell& c) {
    return std::string(core::to_string(c.verdict)) +
           (c.evaded ? " / evaded" : " / FLAGGED");
  };
  table.add_row({"community rules only", cell(naive_community),
                 cell(hard_community)});
  table.add_row({"community + bespoke fingerprint rule", cell(naive_fp),
                 cell(hard_fp)});
  std::printf("%s\n", table.to_markdown().c_str());

  std::printf("reading: under community rules (the paper's assumption) "
              "both implementations evade;\nthe bespoke rule flags only "
              "the naive implementation — evading fingerprinting is an "
              "implementation-hygiene arms race, not a free property.\n");
  bool shape = naive_community.evaded && hard_community.evaded &&
               !naive_fp.evaded && hard_fp.evaded &&
               naive_fp.verdict == core::Verdict::BlockedTimeout;
  std::printf("\npaper-shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
