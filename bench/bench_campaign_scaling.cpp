// E18 — campaign runner scaling: trials/sec for the eval-matrix workload
// (5 censor configs x 8 techniques = 40 independent trials) at 1/2/4/8
// worker threads, plus the headline correctness property: the campaign
// report (to_jsonl, including the merged metrics snapshot) is
// byte-identical at every thread count and in both shard modes.
//
// Emits a human-readable table on stdout and a JSON report (default
// BENCH_campaign.json, or argv[1]). bench/run_benches.sh gates on
// speedup_4x when the machine actually has ≥4 cores, guarding against
// accidental serialization through a global lock.
//
// Exit code: 0 only if every run produced identical bytes.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace sm;

namespace {

std::vector<campaign::Trial> workload() {
  std::vector<campaign::Trial> trials;
  auto techniques = bench::standard_techniques();
  for (const auto& [name, config] : bench::eval_matrix_configs()) {
    auto batch = bench::technique_trials(name, config, techniques);
    trials.insert(trials.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  }
  return trials;
}

struct Timed {
  size_t threads = 0;
  campaign::Shard shard = campaign::Shard::ByIndex;
  double seconds = 0.0;
  double trials_per_sec = 0.0;
  std::string jsonl;
};

Timed time_run(const std::vector<campaign::Trial>& trials, size_t threads,
               campaign::Shard shard) {
  campaign::CampaignOptions options;
  options.threads = threads;
  options.shard = shard;
  auto start = std::chrono::steady_clock::now();
  campaign::CampaignResult result = campaign::run(trials, options);
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  Timed out;
  out.threads = threads;
  out.shard = shard;
  out.seconds = elapsed.count();
  out.trials_per_sec = static_cast<double>(trials.size()) / elapsed.count();
  out.jsonl = result.to_jsonl();
  if (result.failures != 0) {
    std::fprintf(stderr, "!!! %zu trial(s) failed at -j%zu\n",
                 result.failures, threads);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_campaign.json";
  std::vector<campaign::Trial> trials = workload();
  size_t hw = campaign::resolve_threads(0);
  std::printf("E18 — campaign scaling: %zu eval-matrix trials, hardware "
              "concurrency %zu\n\n",
              trials.size(), hw);

  // Warm-up pass (first-touch allocator and page-cache effects land
  // here, not in the -j1 baseline).
  time_run(trials, 1, campaign::Shard::ByIndex);

  std::vector<Timed> runs;
  for (size_t threads : {1, 2, 4, 8}) {
    runs.push_back(time_run(trials, threads, campaign::Shard::ByIndex));
    std::printf("  -j%zu (by-index): %7.3f s  %7.1f trials/s\n", threads,
                runs.back().seconds, runs.back().trials_per_sec);
  }
  // One dynamic-shard run: same bytes, work-stealing balance.
  runs.push_back(time_run(trials, 4, campaign::Shard::Dynamic));
  std::printf("  -j4 (dynamic) : %7.3f s  %7.1f trials/s\n",
              runs.back().seconds, runs.back().trials_per_sec);

  bool deterministic = true;
  for (const Timed& r : runs) {
    if (r.jsonl != runs.front().jsonl) deterministic = false;
  }
  double base = runs[0].trials_per_sec;
  double speedup_2x = runs[1].trials_per_sec / base;
  double speedup_4x = runs[2].trials_per_sec / base;
  double speedup_8x = runs[3].trials_per_sec / base;
  std::printf("\nspeedup vs -j1: x2=%.2f  x4=%.2f  x8=%.2f\n", speedup_2x,
              speedup_4x, speedup_8x);
  std::printf("deterministic (byte-identical reports across -j and shard "
              "modes): %s\n",
              deterministic ? "PASS" : "FAIL");

  FILE* f = std::fopen(out_path, "w");
  if (f) {
    std::fprintf(f,
                 "{\"bench\":\"campaign_scaling\",\"trials\":%zu,"
                 "\"hw_concurrency\":%zu,\"deterministic\":%s,"
                 "\"speedup_2x\":%.3f,\"speedup_4x\":%.3f,"
                 "\"speedup_8x\":%.3f,\"runs\":[",
                 trials.size(), hw, deterministic ? "true" : "false",
                 speedup_2x, speedup_4x, speedup_8x);
    for (size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(f,
                   "%s{\"threads\":%zu,\"shard\":\"%s\",\"seconds\":%.4f,"
                   "\"trials_per_sec\":%.2f}",
                   i ? "," : "", runs[i].threads,
                   runs[i].shard == campaign::Shard::ByIndex ? "by-index"
                                                             : "dynamic",
                   runs[i].seconds, runs[i].trials_per_sec);
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "!!! cannot write %s\n", out_path);
  }
  return deterministic ? 0 : 1;
}
