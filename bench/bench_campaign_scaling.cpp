// E18 — campaign runner scaling: trials/sec for the eval-matrix workload
// (5 censor configs x 8 techniques = 40 independent trials) at 1/2/4/8
// worker threads, plus the headline correctness property: the campaign
// report (to_jsonl, including the merged metrics snapshot) is
// byte-identical at every thread count, in both shard modes, and under
// BOTH backends — the in-process thread pool and the forked
// process-shard workers (the sm-campaignd substrate).
//
// Emits a human-readable table on stdout and a JSON report (default
// BENCH_campaign.json, or argv[1]). Every run records the machine's
// hardware concurrency, and speedup_Nx / proc_speedup_Nx fields are
// only emitted when the machine actually has >= N cores — an
// oversubscribed run still checks determinism, but its "speedup" is
// scheduling noise, not scaling data, and is skipped with a note
// instead. bench/run_benches.sh gates on speedup_4x and proc_speedup_4x
// when the machine has >=4 cores, guarding against accidental
// serialization through a global lock (threads) or the controller pipe
// (processes).
//
// Exit code: 0 only if every run produced identical bytes.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace sm;

namespace {

std::vector<campaign::Trial> workload() {
  std::vector<campaign::Trial> trials;
  auto techniques = bench::standard_techniques();
  for (const auto& [name, config] : bench::eval_matrix_configs()) {
    auto batch = bench::technique_trials(name, config, techniques);
    trials.insert(trials.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  }
  return trials;
}

struct Timed {
  size_t threads = 0;
  campaign::Shard shard = campaign::Shard::ByIndex;
  campaign::Backend backend = campaign::Backend::Thread;
  double seconds = 0.0;
  double trials_per_sec = 0.0;
  std::string jsonl;
};

Timed time_run(const std::vector<campaign::Trial>& trials, size_t threads,
               campaign::Shard shard,
               campaign::Backend backend = campaign::Backend::Thread) {
  campaign::CampaignOptions options;
  options.threads = threads;
  options.shard = shard;
  options.backend = backend;
  auto start = std::chrono::steady_clock::now();
  campaign::CampaignResult result = campaign::run(trials, options);
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  Timed out;
  out.threads = threads;
  out.shard = shard;
  out.backend = backend;
  out.seconds = elapsed.count();
  out.trials_per_sec = static_cast<double>(trials.size()) / elapsed.count();
  out.jsonl = result.to_jsonl();
  if (result.failures != 0) {
    std::fprintf(stderr, "!!! %zu trial(s) failed at -j%zu\n",
                 result.failures, threads);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_campaign.json";
  std::vector<campaign::Trial> trials = workload();
  size_t hw = campaign::resolve_threads(0);
  std::printf("E18 — campaign scaling: %zu eval-matrix trials, hardware "
              "concurrency %zu\n\n",
              trials.size(), hw);

  // Warm-up pass (first-touch allocator and page-cache effects land
  // here, not in the -j1 baseline).
  time_run(trials, 1, campaign::Shard::ByIndex);

  std::vector<Timed> runs;
  for (size_t threads : {1, 2, 4, 8}) {
    runs.push_back(time_run(trials, threads, campaign::Shard::ByIndex));
    std::printf("  -j%zu (by-index): %7.3f s  %7.1f trials/s\n", threads,
                runs.back().seconds, runs.back().trials_per_sec);
  }
  // One dynamic-shard run: same bytes, work-stealing balance.
  runs.push_back(time_run(trials, 4, campaign::Shard::Dynamic));
  std::printf("  -j4 (dynamic) : %7.3f s  %7.1f trials/s\n",
              runs.back().seconds, runs.back().trials_per_sec);
  // Process-shard backend (forked workers over pipes): the crash-safe
  // substrate must both scale and produce the same bytes.
  size_t first_proc = runs.size();
  for (size_t threads : {1, 4}) {
    runs.push_back(time_run(trials, threads, campaign::Shard::ByIndex,
                            campaign::Backend::Process));
    std::printf("  -j%zu (process) : %7.3f s  %7.1f trials/s\n", threads,
                runs.back().seconds, runs.back().trials_per_sec);
  }
  runs.push_back(time_run(trials, 4, campaign::Shard::Dynamic,
                          campaign::Backend::Process));
  std::printf("  -j4 (proc/dyn): %7.3f s  %7.1f trials/s\n",
              runs.back().seconds, runs.back().trials_per_sec);

  bool deterministic = true;
  for (const Timed& r : runs) {
    if (r.jsonl != runs.front().jsonl) deterministic = false;
  }
  double base = runs[0].trials_per_sec;
  // A speedup figure is only meaningful when the machine can actually
  // run that many workers in parallel.
  std::string speedup_fields, skipped_notes;
  for (size_t i = 1; i < 4; ++i) {
    size_t threads = runs[i].threads;
    char buf[96];
    if (threads <= hw) {
      double speedup = runs[i].trials_per_sec / base;
      std::snprintf(buf, sizeof buf, "\"speedup_%zux\":%.3f,", threads,
                    speedup);
      speedup_fields += buf;
      std::printf("speedup vs -j1 at -j%zu: %.2f\n", threads, speedup);
    } else {
      std::snprintf(buf, sizeof buf,
                    "%s\"-j%zu: only %zu core(s), speedup not comparable\"",
                    skipped_notes.empty() ? "" : ",", threads, hw);
      skipped_notes += buf;
      std::printf("speedup at -j%zu: skipped (only %zu hardware core(s); "
                  "determinism still checked)\n",
                  threads, hw);
    }
  }
  // Process-backend speedup vs the same -j1 thread baseline: a healthy
  // controller keeps the pipe protocol off the critical path.
  {
    const Timed& proc4 = runs[first_proc + 1];
    char buf[96];
    if (proc4.threads <= hw) {
      double speedup = proc4.trials_per_sec / base;
      std::snprintf(buf, sizeof buf, "\"proc_speedup_4x\":%.3f,", speedup);
      speedup_fields += buf;
      std::printf("process-shard speedup vs -j1 at -j4: %.2f\n", speedup);
    } else {
      std::snprintf(buf, sizeof buf,
                    "%s\"proc -j4: only %zu core(s), speedup not "
                    "comparable\"",
                    skipped_notes.empty() ? "" : ",", hw);
      skipped_notes += buf;
      std::printf("process-shard speedup at -j4: skipped (only %zu hardware "
                  "core(s); determinism still checked)\n",
                  hw);
    }
  }
  std::printf("deterministic (byte-identical reports across -j, shard "
              "modes, and backends): %s\n",
              deterministic ? "PASS" : "FAIL");

  FILE* f = std::fopen(out_path, "w");
  if (f) {
    std::fprintf(f,
                 "{\"bench\":\"campaign_scaling\",\"trials\":%zu,"
                 "\"hw_concurrency\":%zu,\"deterministic\":%s,"
                 "%s\"speedup_skipped\":[%s],\"runs\":[",
                 trials.size(), hw, deterministic ? "true" : "false",
                 speedup_fields.c_str(), skipped_notes.c_str());
    for (size_t i = 0; i < runs.size(); ++i) {
      std::fprintf(f,
                   "%s{\"threads\":%zu,\"hw_concurrency\":%zu,"
                   "\"shard\":\"%s\",\"backend\":\"%s\",\"seconds\":%.4f,"
                   "\"trials_per_sec\":%.2f,\"scaling_valid\":%s}",
                   i ? "," : "", runs[i].threads, hw,
                   runs[i].shard == campaign::Shard::ByIndex ? "by-index"
                                                             : "dynamic",
                   runs[i].backend == campaign::Backend::Thread ? "thread"
                                                                : "process",
                   runs[i].seconds, runs[i].trials_per_sec,
                   runs[i].threads <= hw ? "true" : "false");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "!!! cannot write %s\n", out_path);
  }
  return deterministic ? 0 : 1;
}
