// E19 — verdict robustness under network impairment.
//
// The safety argument of the paper assumes the measurement can tell
// "censored" from "bad network". This bench quantifies that boundary:
//
//   Part A  At 0% loss the technique x censor matrix must reproduce the
//           E2 expectations exactly — the impairment layer and the
//           retry/confidence machinery must be invisible when idle.
//   Part B  Uncensored policy, loss grid (iid 0/0.05/0.10/0.20 plus a
//           bursty Gilbert-Elliott variant) x retry-enabled techniques
//           x K seeded trials. Reports the false-verdict curve; the
//           gate: up to the documented ceiling (20% iid loss, and
//           degrading bursts on top of 10%), retry-enabled probes
//           conclude Blocked *zero* times on an open path. Inconclusive
//           is honesty, not failure.
//   Part C  The ladder must not hide real censorship: a null-route
//           censor at ceiling loss must still be concluded Blocked by
//           every retry-enabled probe (no Open conclusions).
//
// The documented out-of-scope regime: blackhole bursts (loss_bad = 1.0)
// on links carrying only the probe's own packets. The GE chain is
// packet-clocked, so such a burst never heals with time — within any
// finite retry ladder it is provably indistinguishable from a dropping
// censor (see DESIGN.md §9).
//
// Emits a table per part on stdout and a JSON report (argv[1], default
// BENCH_impairment.json) with the full false-verdict rate curve.
// Exit code: 0 only if all three gates hold.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "core/ping.hpp"

using namespace sm;
using bench::NamedFactory;
using bench::TechniqueRun;

namespace {

constexpr double kCeilingLoss = 0.20;  // documented iid-loss ceiling
constexpr size_t kTrialsPerCell = 3;   // seeded repeats per (level, tech)

struct Level {
  std::string name;
  double iid = 0.0;
  bool burst = false;
};

std::vector<Level> loss_levels() {
  return {{"iid-0.00", 0.0, false},
          {"iid-0.05", 0.05, false},
          {"iid-0.10", 0.10, false},
          {"iid-0.20", kCeilingLoss, false},
          {"burst-0.10", 0.10, true}};
}

void impair(core::TestbedConfig& cfg, const Level& level) {
  cfg.client_link.loss_rate = level.iid;
  if (level.burst) {
    // Degrading (not blackhole) bursts: mean length 4 packets, 80% loss
    // inside a burst — the strongest regime the retry ladder still
    // covers (see header comment).
    cfg.client_link.impairment.burst.p_enter = 0.05;
    cfg.client_link.impairment.burst.loss_bad = 0.8;
  }
}

/// The retry-enabled technique suite: every probe with a silence-shaped
/// failure mode, pointed at an *open* service, with its ladder sized for
/// the ceiling (DNS retries ride on TestbedConfig::dns_retries).
std::vector<NamedFactory> retry_techniques(bool blocked_target) {
  std::vector<NamedFactory> out;
  out.push_back({"syn-reach", [blocked_target](core::Testbed& tb) {
                   return std::make_unique<core::SynReachabilityProbe>(
                       tb, core::SynReachabilityOptions{
                               .target = blocked_target
                                             ? tb.addr().web_blocked
                                             : tb.addr().web_open,
                               .port = 80,
                               .retry = {.max_attempts = 8}});
                 }});
  out.push_back({"scan", [blocked_target](core::Testbed& tb) {
                   core::ScanOptions opts;
                   opts.target = blocked_target ? tb.addr().web_blocked
                                                : tb.addr().web_open;
                   opts.ports = {80};
                   opts.expected_open = {80};
                   opts.retry = {.max_attempts = 6};
                   return std::make_unique<core::ScanProbe>(tb, opts);
                 }});
  out.push_back({"ping", [blocked_target](core::Testbed& tb) {
                   return std::make_unique<core::PingProbe>(
                       tb, core::PingOptions{
                               .target = blocked_target
                                             ? tb.addr().web_blocked
                                             : tb.addr().web_open,
                               .retry = {.max_attempts = 4}});
                 }});
  if (!blocked_target) {
    out.push_back({"overt-dns", [](core::Testbed& tb) {
                     return std::make_unique<core::OvertDnsProbe>(
                         tb,
                         core::OvertDnsOptions{.domain = "twitter.com"});
                   }});
    out.push_back({"spam", [](core::Testbed& tb) {
                     return std::make_unique<core::SpamProbe>(
                         tb, core::SpamOptions{.domain = "open.example",
                                               .retry = {.max_attempts = 3}});
                   }});
    out.push_back({"ddos", [](core::Testbed& tb) {
                     return std::make_unique<core::DdosProbe>(
                         tb, core::DdosOptions{.domain = "open.example",
                                               .requests = 10,
                                               .retry = {.max_attempts = 3}});
                   }});
  }
  return out;
}

struct CellTally {
  size_t trials = 0, open = 0, blocked = 0, inconclusive = 0;
  double false_blocked_rate() const {
    return trials ? static_cast<double>(blocked) /
                        static_cast<double>(trials)
                  : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = argc > 1 ? argv[1] : "BENCH_impairment.json";
  std::printf("E19 — verdict robustness under impairment "
              "(loss x technique, ceiling %.0f%%)\n\n",
              kCeilingLoss * 100);

  // --- Part A: 0% loss reproduces the E2 verdict expectations ----------
  auto techniques = bench::standard_techniques();
  auto scenarios = bench::eval_matrix_configs();
  auto expected_by_scenario = bench::eval_matrix_expectations();
  std::vector<campaign::Trial> a_trials;
  for (const auto& [name, config] : scenarios) {
    auto batch = bench::technique_trials(name, config, techniques);
    a_trials.insert(a_trials.end(), std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
  }
  std::vector<TechniqueRun> a_runs = bench::run_campaign(a_trials);
  size_t a_cells = 0, a_hits = 0;
  for (size_t s = 0; s < scenarios.size(); ++s) {
    const auto& expected = expected_by_scenario[scenarios[s].first];
    for (size_t t = 0; t < techniques.size(); ++t) {
      auto it = expected.find(techniques[t].name);
      if (it == expected.end()) continue;
      ++a_cells;
      const TechniqueRun& run = a_runs[s * techniques.size() + t];
      bool hit = false;
      for (core::Verdict v : it->second)
        if (run.report.verdict == v) hit = true;
      if (hit) {
        ++a_hits;
      } else {
        std::printf("  A-MISS %s/%s: got %s\n", scenarios[s].first.c_str(),
                    techniques[t].name.c_str(),
                    std::string(core::to_string(run.report.verdict))
                        .c_str());
      }
    }
  }
  bool part_a_ok = a_cells > 0 && a_hits == a_cells;
  std::printf("part A: E2 expectations at 0%% loss: %zu/%zu cells match "
              "-> %s\n\n",
              a_hits, a_cells, part_a_ok ? "PASS" : "FAIL");

  // --- Part B: false-verdict curve on an uncensored lossy path ---------
  auto levels = loss_levels();
  auto open_techniques = retry_techniques(/*blocked_target=*/false);
  std::vector<campaign::Trial> b_trials;
  for (const Level& level : levels) {
    core::TestbedConfig cfg;
    cfg.policy = censor::CensorPolicy{};
    cfg.dns_retries = 6;
    impair(cfg, level);
    for (const NamedFactory& tech : open_techniques) {
      for (size_t k = 0; k < kTrialsPerCell; ++k) {
        b_trials.push_back(campaign::Trial{
            .name = level.name + "/" + tech.name + "#" + std::to_string(k),
            .config = cfg,
            .factory = tech.factory});
      }
    }
  }
  std::vector<TechniqueRun> b_runs = bench::run_campaign(b_trials);

  std::vector<std::vector<CellTally>> curve(
      levels.size(), std::vector<CellTally>(open_techniques.size()));
  size_t idx = 0, false_blocked_total = 0;
  for (size_t l = 0; l < levels.size(); ++l) {
    for (size_t t = 0; t < open_techniques.size(); ++t) {
      for (size_t k = 0; k < kTrialsPerCell; ++k, ++idx) {
        CellTally& cell = curve[l][t];
        ++cell.trials;
        switch (b_runs[idx].report.confidence.conclusion) {
          case core::Conclusion::Open: ++cell.open; break;
          case core::Conclusion::Blocked:
            ++cell.blocked;
            ++false_blocked_total;
            std::printf("  B-FALSE-BLOCKED %s: %s\n",
                        b_trials[idx].name.c_str(),
                        b_runs[idx].report.to_string().c_str());
            break;
          case core::Conclusion::Inconclusive: ++cell.inconclusive; break;
        }
      }
    }
  }
  {
    std::vector<std::string> header = {"loss level"};
    for (const auto& t : open_techniques) header.push_back(t.name);
    analysis::Table table(header);
    for (size_t l = 0; l < levels.size(); ++l) {
      std::vector<std::string> row = {levels[l].name};
      for (size_t t = 0; t < open_techniques.size(); ++t) {
        const CellTally& c = curve[l][t];
        row.push_back(std::to_string(c.open) + "o/" +
                      std::to_string(c.blocked) + "b/" +
                      std::to_string(c.inconclusive) + "i");
      }
      table.add_row(row);
    }
    std::printf("part B: conclusions per cell (open/blocked/inconclusive, "
                "%zu trials each), uncensored path:\n%s\n",
                kTrialsPerCell, table.to_markdown().c_str());
  }
  bool part_b_ok = false_blocked_total == 0;
  std::printf("part B: false \"blocked\" conclusions up to the ceiling: "
              "%zu -> %s\n\n",
              false_blocked_total, part_b_ok ? "PASS" : "FAIL");

  // --- Part C: real dropping at ceiling loss is still detected ---------
  auto blocked_techniques = retry_techniques(/*blocked_target=*/true);
  std::vector<campaign::Trial> c_trials;
  {
    core::TestbedConfig cfg;
    cfg.policy =
        censor::dropping_profile({core::TestbedAddresses{}.web_blocked});
    cfg.dns_retries = 6;
    impair(cfg, Level{"ceiling", kCeilingLoss, false});
    for (const NamedFactory& tech : blocked_techniques) {
      for (size_t k = 0; k < kTrialsPerCell; ++k) {
        c_trials.push_back(campaign::Trial{
            .name = "null-route/" + tech.name + "#" + std::to_string(k),
            .config = cfg,
            .factory = tech.factory});
      }
    }
  }
  std::vector<TechniqueRun> c_runs = bench::run_campaign(c_trials);
  size_t c_blocked = 0, c_open = 0;
  for (size_t i = 0; i < c_runs.size(); ++i) {
    switch (c_runs[i].report.confidence.conclusion) {
      case core::Conclusion::Blocked: ++c_blocked; break;
      case core::Conclusion::Open:
        ++c_open;
        std::printf("  C-FALSE-OPEN %s: %s\n", c_trials[i].name.c_str(),
                    c_runs[i].report.to_string().c_str());
        break;
      default: break;
    }
  }
  bool part_c_ok = c_open == 0 && c_blocked == c_runs.size();
  std::printf("part C: null-route at %.0f%% loss: %zu/%zu concluded "
              "Blocked, %zu false Open -> %s\n\n",
              kCeilingLoss * 100, c_blocked, c_runs.size(), c_open,
              part_c_ok ? "PASS" : "FAIL");

  // --- JSON report ------------------------------------------------------
  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n  \"bench\": \"impairment\",\n"
                 "  \"ceiling_loss_rate\": %.2f,\n"
                 "  \"trials_per_cell\": %zu,\n"
                 "  \"part_a_matrix_cells\": %zu,\n"
                 "  \"part_a_matrix_ok\": %s,\n",
                 kCeilingLoss, kTrialsPerCell, a_cells,
                 part_a_ok ? "true" : "false");
    std::fprintf(f, "  \"false_verdict_curve\": [\n");
    bool first = true;
    for (size_t l = 0; l < levels.size(); ++l) {
      for (size_t t = 0; t < open_techniques.size(); ++t) {
        const CellTally& c = curve[l][t];
        std::fprintf(f,
                     "%s    {\"level\": \"%s\", \"iid_loss\": %.2f, "
                     "\"burst\": %s, \"technique\": \"%s\", "
                     "\"trials\": %zu, \"open\": %zu, \"blocked\": %zu, "
                     "\"inconclusive\": %zu, "
                     "\"false_blocked_rate\": %.4f}",
                     first ? "" : ",\n", levels[l].name.c_str(),
                     levels[l].iid, levels[l].burst ? "true" : "false",
                     open_techniques[t].name.c_str(), c.trials, c.open,
                     c.blocked, c.inconclusive, c.false_blocked_rate());
        first = false;
      }
    }
    std::fprintf(f,
                 "\n  ],\n"
                 "  \"false_blocked_total\": %zu,\n"
                 "  \"part_c_trials\": %zu,\n"
                 "  \"part_c_blocked\": %zu,\n"
                 "  \"part_c_false_open\": %zu,\n"
                 "  \"pass\": %s\n}\n",
                 false_blocked_total, c_runs.size(), c_blocked, c_open,
                 (part_a_ok && part_b_ok && part_c_ok) ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  } else {
    std::fprintf(stderr, "!!! cannot write %s\n", json_path);
  }

  bool pass = part_a_ok && part_b_ok && part_c_ok;
  std::printf("E19 gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
