// E14 — ablation: scan pacing vs. the surveillance scan detector.
//
// Method #1's cover story is that "machines on the Internet are
// constantly being scanned" (10.8M scans/month against one darknet), so
// scan alerts are bulk noise. This bench asks a sharper question: at
// what rate does the measurement scan trip the detector at all? The
// community scan rule fires at >=100 SYNs from one source in 60 s; a
// paced scan stays under it entirely — zero alerts of any class — while
// measuring exactly the same thing.
#include <cstdio>

#include "analysis/report.hpp"
#include "common/strings.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"

using namespace sm;

int main() {
  std::printf("E14 — scan pacing vs. detection (scan rule: 100 SYNs / "
              "60 s per source)\n\n");

  analysis::Table table({"inter-SYN gap", "ports", "duration (sim)",
                         "verdict", "noise alerts", "targeted alerts"});
  struct Row {
    int gap_ms;
    size_t ports;
  };
  bool fast_flagged = false, slow_silent = false, all_accurate = true;
  for (Row row : {Row{2, 150}, Row{50, 150}, Row{400, 150},
                  Row{700, 150}}) {
    core::TestbedConfig cfg;
    cfg.policy = censor::gfc_profile();
    cfg.policy.blocked_ips.push_back(core::TestbedAddresses{}.web_blocked);
    core::Testbed tb(cfg);

    core::ScanOptions opts;
    opts.target = tb.addr().web_blocked;
    opts.ports = core::top_tcp_ports(row.ports);
    opts.expected_open = {80};
    opts.pace = common::Duration::millis(row.gap_ms);
    core::ScanProbe probe(tb, opts);
    core::ProbeReport report =
        core::run_probe(tb, probe, common::Duration::seconds(300));
    core::RiskReport risk = core::assess_risk(tb, "scan");

    if (report.verdict != core::Verdict::BlockedTimeout)
      all_accurate = false;
    if (row.gap_ms <= 50 && risk.noise_alerts > 0) fast_flagged = true;
    if (row.gap_ms >= 700 && risk.noise_alerts == 0) slow_silent = true;

    table.add_row({common::format("%d ms", row.gap_ms),
                   analysis::Table::num(uint64_t(row.ports)),
                   common::format("%.0f s",
                                  tb.net.engine().now().to_seconds()),
                   std::string(core::to_string(report.verdict)),
                   analysis::Table::num(risk.noise_alerts),
                   analysis::Table::num(risk.targeted_alerts)});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  std::printf("reading: the nmap-speed scan is *detected but discarded* "
              "(noise class) — the paper's blend-into-the-background "
              "argument;\nthe paced scan is not detected at all — "
              "slower, but it never even enters the surveillance "
              "system's logs.\n");
  bool shape = fast_flagged && slow_silent && all_accurate;
  std::printf("\npaper-shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
