// Population-scale attribution bench (E23): the paper's anchors at the
// scale they were stated for.
//
// Builds a ~100k-host AS topology with asgen, floods it with flyweight
// background traffic, hides overt and mimicry measurement probes inside
// it, and measures what the surveillance MVR attributes to whom:
//
//   Part 1 — topology: hosts, routers, CIDR route counts, build wall
//     time (the compiled LPM + O(1) connect work makes this seconds,
//     not minutes).
//   Part 2 — throughput + attribution: border-router MVR taps observe
//     the full mix; gates require >= 1e6 forwarded packet-hops per
//     wall-second (2.5e5 in --smoke), every overt probe attributed,
//     no mimicry probe attributed, and the population anchors in range
//     (p2p discard share, ~7.5% content retention, ~1.57% of users
//     touching censored content).
//   Part 3 — determinism: R replica simulations through
//     campaign::run_jobs at 1 and 4 threads; the concatenated replica
//     JSONL must be byte-identical.
//
// Emits a human table on stdout and a JSON report (default
// BENCH_population.json, argv[1] to override). `--smoke` shrinks the
// population and replica count for ci.sh's perf stage; same JSON shape,
// so tools/perf_smoke.py can diff the self-normalized metrics against
// the checked-in baseline. Exit code 0 iff every gate passed.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "common/time.hpp"
#include "netsim/asgen.hpp"
#include "netsim/bgtraffic.hpp"
#include "netsim/router.hpp"
#include "netsim/topology.hpp"
#include "surveillance/classify.hpp"
#include "surveillance/mvr.hpp"

using namespace sm;
using common::Duration;
using common::Ipv4Address;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// Process CPU seconds. The traffic phase is single-threaded, so CPU
/// time equals wall time minus scheduler preemption — the throughput
/// gate uses it to stay meaningful on a loaded shared machine.
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

uint64_t fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

netsim::AsGenConfig population_config(bool smoke) {
  netsim::AsGenConfig config;
  if (smoke) {
    config.as_count = 6;
    config.transit_count = 2;
    config.routers_per_as = 3;
    config.subnets_per_router = 2;
    config.hosts_per_subnet = 140;  // 5,040 hosts
  } else {
    config.as_count = 12;
    config.transit_count = 3;
    config.routers_per_as = 4;
    config.subnets_per_router = 4;
    config.hosts_per_subnet = 520;  // 99,840 hosts
  }
  config.extra_peering = 2;
  return config;
}

/// One replica of the attribution experiment, small enough to run many
/// times: fixed topology seed, per-replica traffic seed, one overt and
/// one mimicry probe. Returns a single deterministic JSONL line.
std::string attribution_replica(size_t index) {
  netsim::Network net;
  netsim::AsGenConfig topo_config;
  topo_config.as_count = 4;
  topo_config.transit_count = 1;
  topo_config.routers_per_as = 2;
  topo_config.subnets_per_router = 2;
  topo_config.hosts_per_subnet = 16;  // 256 hosts
  netsim::AsTopology topo = netsim::AsTopology::generate(net, topo_config);

  surveillance::MvrTap mvr;
  for (const netsim::AsInfo& as : topo.ases()) {
    as.routers.front()->add_tap(&mvr);
  }

  netsim::BgTrafficConfig traffic;
  traffic.seed = 0xB6 + index;
  traffic.flows_per_second = 500;
  traffic.window = Duration::seconds(2);
  netsim::BgTraffic bg(net, topo, traffic);
  bg.start();
  Ipv4Address overt = bg.launch_probe(2 * index, /*mimicry=*/false);
  Ipv4Address mimic = bg.launch_probe(2 * index + 1, /*mimicry=*/true);
  net.run_for(Duration::seconds(4));

  const auto& s = bg.stats();
  char line[512];
  std::snprintf(
      line, sizeof(line),
      "{\"replica\":%zu,\"topo_digest\":%llu,\"flows\":%llu,"
      "\"packets\":%llu,\"bytes\":%llu,\"censored\":%llu,"
      "\"overt_targeted\":%llu,\"mimic_targeted\":%llu,"
      "\"mimic_censored_alerts\":%llu,\"mvr_bytes_seen\":%llu}",
      index, (unsigned long long)fnv1a(topo.describe()),
      (unsigned long long)s.flows_started,
      (unsigned long long)s.packets_emitted,
      (unsigned long long)s.bytes_emitted,
      (unsigned long long)s.flows_censored,
      (unsigned long long)mvr.targeted_alerts_for(overt),
      (unsigned long long)mvr.targeted_alerts_for(mimic),
      (unsigned long long)mvr.censored_access_alerts_for(mimic),
      (unsigned long long)mvr.stats().bytes_seen);
  return line;
}

std::string run_replicas(size_t n, size_t threads) {
  std::vector<std::string> lines(n);
  campaign::CampaignOptions options;
  options.threads = threads;
  auto errors = campaign::run_jobs(
      n, [&](size_t index, int) { lines[index] = attribution_replica(index); },
      options);
  std::string joined;
  for (size_t i = 0; i < n; ++i) {
    if (!errors[i].empty()) return "error: " + errors[i];
    joined += lines[i];
    joined += '\n';
  }
  return joined;
}

struct Gate {
  int failures = 0;
  void require(bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GATE FAIL: %s\n", what);
      ++failures;
    }
  }
};

/// Everything one topology-build + traffic run produces. The simulation
/// is deterministic, so repeated runs are free re-measurements of the
/// same work: wall time varies with scheduler noise, `digest` must not.
struct TrafficRun {
  size_t hosts = 0, ases = 0, routers = 0;
  double build_seconds = 0, run_seconds = 0, run_cpu_seconds = 0;
  uint64_t flows = 0, packets_emitted = 0, hops = 0;
  uint64_t mvr_packets_seen = 0;
  size_t recycled = 0, live_flows = 0;
  size_t probers = 0;
  size_t overt_hits = 0, mimic_hits = 0;
  size_t overt_censored = 0, mimic_censored = 0;
  double p2p_share = 0, discard_share = 0, retained_fraction = 0;
  double censored_user_fraction = 0, observed_censored_fraction = 0;
  std::string digest;
};

TrafficRun traffic_run(bool smoke) {
  TrafficRun out;
  netsim::Network net;
  auto t0 = clock_type::now();
  netsim::AsTopology topo =
      netsim::AsTopology::generate(net, population_config(smoke));
  out.build_seconds = seconds_since(t0);
  out.hosts = topo.population();
  out.ases = topo.ases().size();
  for (const netsim::AsInfo& as : topo.ases()) {
    out.routers += as.routers.size();
  }

  // The paper's MVR is a *national* surveillance system: one monitored
  // country (the last stub AS), its border instrumented — Fig. 1 at
  // population scale. Probers live inside the country; everything they
  // send crosses the tapped border alongside the country's background
  // traffic.
  const netsim::AsInfo& country = topo.ases().back();
  surveillance::MvrTap mvr;
  topo.border(country.index)->add_tap(&mvr);

  netsim::BgTrafficConfig traffic;
  traffic.flows_per_second = smoke ? 4000 : 25000;
  traffic.window = smoke ? Duration::seconds(2) : Duration::seconds(4);
  netsim::BgTraffic bg(net, topo, traffic);
  bg.start();

  // Probes hide across the country's population, spread by stride.
  out.probers = smoke ? 8 : 32;
  std::vector<Ipv4Address> overt_addrs;
  std::vector<Ipv4Address> mimic_addrs;
  size_t stride = country.host_count / (2 * out.probers + 1);
  for (size_t i = 0; i < out.probers; ++i) {
    overt_addrs.push_back(
        bg.launch_probe(country.first_host + (2 * i) * stride, false));
    mimic_addrs.push_back(
        bg.launch_probe(country.first_host + (2 * i + 1) * stride, true));
  }

  t0 = clock_type::now();
  double cpu0 = cpu_seconds();
  net.run_for(traffic.window + Duration::seconds(2));
  out.run_cpu_seconds = cpu_seconds() - cpu0;
  out.run_seconds = seconds_since(t0);

  for (const netsim::AsInfo& as : topo.ases()) {
    for (const netsim::Router* r : as.routers) {
      out.hops += r->counters().forwarded;
    }
  }
  const auto& s = bg.stats();
  out.flows = s.flows_started;
  out.packets_emitted = s.packets_emitted;
  out.recycled = bg.flow_slots_recycled();
  out.live_flows = bg.live_flows();

  for (Ipv4Address a : overt_addrs) {
    if (mvr.targeted_alerts_for(a) > 0) ++out.overt_hits;
    if (mvr.censored_access_alerts_for(a) > 0) ++out.overt_censored;
  }
  for (Ipv4Address a : mimic_addrs) {
    if (mvr.targeted_alerts_for(a) > 0) ++out.mimic_hits;
    if (mvr.censored_access_alerts_for(a) > 0) ++out.mimic_censored;
  }

  const auto& m = mvr.stats();
  out.mvr_packets_seen = m.packets_seen;
  auto p2p_it = m.bytes_by_class.find(surveillance::TrafficClass::P2p);
  uint64_t p2p_bytes = p2p_it == m.bytes_by_class.end() ? 0 : p2p_it->second;
  out.p2p_share = m.bytes_seen ? double(p2p_bytes) / m.bytes_seen : 0;
  out.discard_share =
      m.bytes_seen ? double(m.bytes_discarded) / m.bytes_seen : 0;
  uint64_t kept = m.bytes_seen - m.bytes_discarded;
  out.retained_fraction =
      kept ? double(m.bytes_content_retained) / kept : 0;
  out.censored_user_fraction =
      s.flows_web ? double(s.flows_censored) / s.flows_web : 0;
  // The paper's population anchor, measured rather than asserted: what
  // fraction of the monitored country's hosts did the MVR log touching
  // censored content? (Probers excluded — they are the signal under
  // test, not the population. Both probe kinds request censored content,
  // so both earn the alert their cover story implies.)
  size_t censored_hosts = 0;
  for (size_t h = country.first_host;
       h < country.first_host + country.host_count; ++h) {
    if (mvr.censored_access_alerts_for(topo.hosts()[h]->address()) > 0) {
      ++censored_hosts;
    }
  }
  censored_hosts -= out.mimic_censored + out.overt_censored;
  out.observed_censored_fraction =
      double(censored_hosts) / country.host_count;

  char digest[256];
  std::snprintf(digest, sizeof(digest),
                "%llu/%llu/%llu/%llu/%llu/%zu/%zu/%zu/%zu/%zu",
                (unsigned long long)out.flows,
                (unsigned long long)out.packets_emitted,
                (unsigned long long)out.hops,
                (unsigned long long)m.bytes_seen,
                (unsigned long long)m.bytes_discarded, out.overt_hits,
                out.mimic_hits, out.overt_censored, out.mimic_censored,
                censored_hosts);
  out.digest = digest;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_population.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      out_path = argv[i];
  }

  // --- Parts 1+2: topology build, throughput, attribution --------------
  // The deterministic simulation makes repeats free re-measurements of
  // identical work, so wall-clock throughput is gated on the fastest of
  // N runs — the standard way to strip scheduler noise from a shared
  // machine. Every repeat must reproduce the first run's stats digest.
  const int repeats = smoke ? 2 : 3;
  TrafficRun run = traffic_run(smoke);
  std::printf("topology: %zu hosts, %zu ASes, %zu routers in %.2fs\n",
              run.hosts, run.ases, run.routers, run.build_seconds);
  double best_wall = run.run_seconds;
  double best_cpu = run.run_cpu_seconds;
  bool repeats_identical = true;
  for (int rep = 1; rep < repeats; ++rep) {
    TrafficRun again = traffic_run(smoke);
    best_wall = std::min(best_wall, again.run_seconds);
    best_cpu = std::min(best_cpu, again.run_cpu_seconds);
    repeats_identical = repeats_identical && again.digest == run.digest;
  }

  double pps_emitted = run.packets_emitted / best_cpu;
  double pps_hops = run.hops / best_cpu;
  std::printf("traffic: %llu flows, %llu packets emitted, %llu hops in "
              "%.2fs cpu (%.2fs wall) best-of-%d -> %.0f emitted pps, "
              "%.0f hop pps\n",
              (unsigned long long)run.flows,
              (unsigned long long)run.packets_emitted,
              (unsigned long long)run.hops, best_cpu, best_wall, repeats,
              pps_emitted, pps_hops);

  const size_t probers = run.probers;
  double overt_rate = double(run.overt_hits) / probers;
  double mimic_rate = double(run.mimic_hits) / probers;
  std::printf("attribution: overt %.2f, mimicry %.2f (censored alerts on "
              "%zu/%zu mimics)\n",
              overt_rate, mimic_rate, run.mimic_censored, probers);
  std::printf("anchors: p2p byte share %.3f, discard share %.3f, content "
              "retention %.4f, censored flow fraction %.4f, "
              "observed censored-host fraction %.4f\n",
              run.p2p_share, run.discard_share, run.retained_fraction,
              run.censored_user_fraction, run.observed_censored_fraction);

  // --- Part 3: determinism across worker counts ------------------------
  const size_t replicas = smoke ? 2 : 4;
  std::string j1 = run_replicas(replicas, 1);
  std::string j4 = run_replicas(replicas, 4);
  bool deterministic = (j1 == j4) && j1.rfind("error:", 0) != 0;
  std::printf("determinism: %zu replicas, -j1 vs -j4 %s\n", replicas,
              deterministic ? "byte-identical" : "DIFFER");

  // --- Gates ------------------------------------------------------------
  Gate gate;
  gate.require(run.hosts == (smoke ? 5040u : 99840u), "population size");
  gate.require(pps_hops >= (smoke ? 2.5e5 : 1e6),
               "simulated packet-hop throughput");
  gate.require(repeats_identical, "repeated runs byte-identical");
  gate.require(overt_rate == 1.0, "every overt probe attributed");
  gate.require(mimic_rate == 0.0, "no mimicry probe attributed");
  gate.require(run.mimic_censored == probers,
               "mimicry earns the population's censored-access alert");
  gate.require(run.censored_user_fraction > 0.008 &&
                   run.censored_user_fraction < 0.025,
               "censored flow fraction near the 1.57% anchor");
  gate.require(run.observed_censored_fraction > 0.0 &&
                   run.observed_censored_fraction < 0.10,
               "MVR-observed censored-host fraction plausible");
  gate.require(run.discard_share > 0.10 && run.discard_share < 0.60,
               "MVR discard share plausible");
  gate.require(run.retained_fraction > 0.02 && run.retained_fraction < 0.20,
               "content retention near the 7.5% anchor");
  gate.require(deterministic, "-j1 vs -j4 replica JSONL identical");
  gate.require(run.live_flows == 0, "all background flows drained");

  FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 2;
  }
  std::fprintf(f,
               "{\"bench\":\"population\",\"smoke\":%s,"
               "\"topology\":{\"hosts\":%zu,\"ases\":%zu,\"routers\":%zu,"
               "\"build_seconds\":%.3f},",
               smoke ? "true" : "false", run.hosts, run.ases, run.routers,
               run.build_seconds);
  std::fprintf(f,
               "\"throughput\":{\"flows\":%llu,\"packets_emitted\":%llu,"
               "\"packet_hops\":%llu,\"wall_seconds\":%.3f,"
               "\"cpu_seconds\":%.3f,\"repeats\":%d,"
               "\"emitted_pps\":%.0f,\"hop_pps\":%.0f,"
               "\"mvr_packets_seen\":%llu,\"flow_slots_recycled\":%zu},",
               (unsigned long long)run.flows,
               (unsigned long long)run.packets_emitted,
               (unsigned long long)run.hops, best_wall, best_cpu, repeats,
               pps_emitted, pps_hops,
               (unsigned long long)run.mvr_packets_seen, run.recycled);
  std::fprintf(f,
               "\"attribution\":{\"probers\":%zu,\"overt_rate\":%.4f,"
               "\"mimicry_rate\":%.4f,\"mimicry_censored_alerts\":%zu,"
               "\"p2p_byte_share\":%.4f,\"discard_share\":%.4f,"
               "\"retained_fraction\":%.4f,"
               "\"censored_user_fraction\":%.4f,"
               "\"observed_censored_fraction\":%.4f},",
               probers, overt_rate, mimic_rate, run.mimic_censored,
               run.p2p_share, run.discard_share, run.retained_fraction,
               run.censored_user_fraction, run.observed_censored_fraction);
  std::fprintf(f,
               "\"determinism\":{\"replicas\":%zu,"
               "\"j1_vs_j4_identical\":%s,\"repeats_identical\":%s,"
               "\"replica_digest\":%llu},"
               "\"pass\":%s}\n",
               replicas, deterministic ? "true" : "false",
               repeats_identical ? "true" : "false",
               (unsigned long long)fnv1a(j1),
               gate.failures == 0 ? "true" : "false");
  std::fclose(f);

  if (gate.failures) {
    std::fprintf(stderr, "%d gate(s) failed\n", gate.failures);
    return 1;
  }
  std::printf("all gates passed -> %s\n", out_path);
  return 0;
}
