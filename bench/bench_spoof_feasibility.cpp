// E6 — §4.2 spoofing feasibility (Beverly et al. [7]): "77% of clients
// can spoof other addresses within their own /24, and 11% can spoof
// addresses within their own /16; these characteristics hold across a
// wide range of countries and regions."
//
// We sample the SAV deployment model over many simulated networks and
// report the measured fractions, plus the consequence that matters for
// cover traffic: the distribution of *usable cover pool size* (how many
// neighbor addresses a random client can credibly implicate).
#include <cstdio>

#include "analysis/report.hpp"
#include "common/stats.hpp"
#include "spoof/sav.hpp"

using namespace sm;
using namespace sm::spoof;

int main() {
  std::printf("E6 — source-address-validation feasibility "
              "(paper anchor: 77%% //24, 11%% //16)\n\n");

  analysis::Table table({"region seed", "clients", ">= /24", ">= /16",
                         "unfiltered"});
  double total24 = 0, total16 = 0, totalany = 0;
  const int kRegions = 5;
  const size_t kClientsPerRegion = 20000;
  for (int region = 0; region < kRegions; ++region) {
    SavModel model({}, 1000 + static_cast<uint64_t>(region));
    size_t n24 = 0, n16 = 0, nany = 0;
    for (size_t i = 0; i < kClientsPerRegion; ++i) {
      common::Ipv4Address client(
          static_cast<uint32_t>(0x0A000000u + region * 0x10000u + i));
      SpoofScope s = model.scope_for(client);
      if (s != SpoofScope::None) ++n24;
      if (s == SpoofScope::Slash16 || s == SpoofScope::Any) ++n16;
      if (s == SpoofScope::Any) ++nany;
    }
    double f24 = double(n24) / kClientsPerRegion;
    double f16 = double(n16) / kClientsPerRegion;
    double fany = double(nany) / kClientsPerRegion;
    total24 += f24;
    total16 += f16;
    totalany += fany;
    table.add_row({analysis::Table::num(uint64_t(1000 + region)),
                   analysis::Table::num(uint64_t(kClientsPerRegion)),
                   analysis::Table::pct(f24), analysis::Table::pct(f16),
                   analysis::Table::pct(fany)});
  }
  table.add_row({"mean", "", analysis::Table::pct(total24 / kRegions),
                 analysis::Table::pct(total16 / kRegions),
                 analysis::Table::pct(totalany / kRegions)});
  std::printf("%s\n", table.to_markdown().c_str());

  // Cover pool size: a /24 spoofer can implicate 253 neighbors; a /16
  // spoofer 65533; a filtered client only itself.
  common::EmpiricalCdf pool;
  SavModel model({}, 42);
  for (size_t i = 0; i < 20000; ++i) {
    common::Ipv4Address client(0x0A000000u + static_cast<uint32_t>(i));
    switch (model.scope_for(client)) {
      case SpoofScope::None: pool.add(0); break;
      case SpoofScope::Slash24: pool.add(253); break;
      case SpoofScope::Slash16: pool.add(65533); break;
      case SpoofScope::Any: pool.add(16777213); break;
    }
  }
  std::printf("usable cover-pool size (neighbors a client can implicate):\n"
              "  median=%g  p75=%g  p90=%g  (0 means strict SAV: no "
              "spoofed cover possible)\n\n",
              pool.quantile(0.5), pool.quantile(0.75), pool.quantile(0.9));

  bool shape = std::abs(total24 / kRegions - 0.77) < 0.02 &&
               std::abs(total16 / kRegions - 0.11) < 0.02;
  std::printf("paper-shape check (77%% / 11%% within 2pp): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
