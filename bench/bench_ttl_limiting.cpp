// E8 — §4.1 TTL-limited replies: "we could TTL limit our queries to
// ensure that they never reach the client... set reply TTLs so they are
// dropped after they pass through the surveillance system but before they
// reach the client."
//
// Chain topology: server — r1(tap) — r2 — ... — rN — {client, spoofee}.
// We sweep the reply TTL and report, per value: did the SYN/ACK cross the
// surveillance tap, was it delivered to the spoofed host, did the spoofed
// host's stack RST (unraveling the mimicry), and did the full cover flow
// still complete on the server. The feasible window must match
// plan_reply_ttl exactly.
#include <cstdio>

#include "analysis/report.hpp"
#include "netsim/topology.hpp"
#include "netsim/trace.hpp"
#include "proto/http/server.hpp"
#include "spoof/cover.hpp"
#include "spoof/ttl.hpp"

using namespace sm;
using common::Duration;
using common::Ipv4Address;

namespace {

struct ChainResult {
  bool crossed_tap = false;
  bool delivered = false;
  bool spoofee_rst = false;
  bool flow_completed = false;
};

ChainResult run_chain(int n_routers, uint8_t reply_ttl) {
  netsim::Network net;
  std::vector<netsim::Router*> routers;
  for (int i = 0; i < n_routers; ++i)
    routers.push_back(net.add_router("r" + std::to_string(i)));
  // Chain links with directional routes.
  for (int i = 1; i < n_routers; ++i) {
    int pa = routers[i - 1]->port_count();
    int pb = routers[i]->port_count();
    net.connect(routers[i - 1], routers[i]);
    routers[i - 1]->add_route(
        common::Cidr(Ipv4Address(10, 0, 0, 0), 8), pa);
    routers[i]->add_route(
        common::Cidr(Ipv4Address(198, 18, 0, 0), 16), pb);
  }
  auto* server = net.add_host("server", Ipv4Address(198, 18, 0, 1));
  net.connect(server, routers.front());
  auto* client = net.add_host("client", Ipv4Address(10, 1, 1, 10));
  auto* spoofee = net.add_host("spoofee", Ipv4Address(10, 1, 1, 11));
  net.connect(client, routers.back());
  net.connect(spoofee, routers.back());

  netsim::TraceTap tap;  // the surveillance tap at r1 (server side)
  routers.front()->add_tap(&tap);

  proto::tcp::Stack server_stack(*server);
  proto::tcp::Stack spoofee_stack(*spoofee);
  proto::http::Server http(server_stack, 80);
  spoof::MimicryServer mimicry(server_stack, 0xFEED, 80);
  mimicry.register_cover_client(spoofee->address(), reply_ttl);

  spoof::StatefulMimicryClient mimic(*client, server->address(), 80,
                                     0xFEED, Duration::millis(10));
  mimic.run_flow(spoofee->address(),
                 "GET /x HTTP/1.1\r\nHost: m\r\n\r\n");
  net.run_for(Duration::seconds(3));

  ChainResult out;
  for (const auto& rec : tap.records()) {
    auto d = packet::decode(rec.data);
    if (d && d->tcp && d->tcp->syn() && d->tcp->ack_flag() &&
        d->ip.dst == spoofee->address())
      out.crossed_tap = true;
  }
  out.delivered = spoofee_stack.stats().segments_in > 0;
  out.spoofee_rst = spoofee_stack.stats().rst_out > 0;
  out.flow_completed = http.requests_served() > 0;
  return out;
}

}  // namespace

int main() {
  std::printf("E8 — TTL-limited replies across an N-router chain "
              "(tap at the first router from the server)\n\n");

  bool shape = true;
  for (int n : {1, 3, 5}) {
    int hops_to_tap = 1;          // tap adjacent to the server
    int hops_to_client = n;       // client behind all n routers
    auto planned = spoof::plan_reply_ttl(hops_to_tap, hops_to_client);
    analysis::Table table({"reply TTL", "crossed tap", "delivered to "
                           "spoofee", "spoofee RST (unraveled)",
                           "flow completed on server", "in planned window"});
    for (int ttl = 1; ttl <= n + 1; ++ttl) {
      ChainResult r = run_chain(n, static_cast<uint8_t>(ttl));
      bool in_window = ttl >= hops_to_tap && ttl <= hops_to_client;
      table.add_row({analysis::Table::num(uint64_t(ttl)),
                     r.crossed_tap ? "yes" : "no",
                     r.delivered ? "YES" : "no",
                     r.spoofee_rst ? "YES" : "no",
                     r.flow_completed ? "yes" : "no",
                     in_window ? "yes" : "no"});
      // Shape: in-window TTLs cross the tap, are not delivered, never
      // draw a RST, and the mimicry flow completes. Out-of-window (too
      // large) TTLs are delivered and unraveled by the spoofee's RST.
      if (in_window) {
        shape = shape && r.crossed_tap && !r.delivered && !r.spoofee_rst &&
                r.flow_completed;
      } else {
        shape = shape && r.delivered && r.spoofee_rst;
      }
    }
    std::printf("chain of %d router(s), planned TTL window [%d, %d], "
                "plan_reply_ttl -> %s\n%s\n",
                n, hops_to_tap, hops_to_client,
                planned ? std::to_string(*planned).c_str() : "(none)",
                table.to_markdown().c_str());
  }
  std::printf("paper-shape check (in-window: stealthy & complete; "
              "beyond-window: RST unraveling): %s\n",
              shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
