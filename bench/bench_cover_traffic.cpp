// E7 — Fig. 3a/3b cover traffic: attribution confusion vs. cover volume.
//
// §4.1's promise: "making it more difficult for a surveillance system to
// implicate any individual host". We quantify it: run the stateful
// mimicry campaign with k spoofed cover flows (k swept 0..20) plus
// background population traffic, then ask the analyst who did it.
// Reported per k: P(attribute to the real client), attribution entropy
// over the AS, and whether the measurement stayed accurate. Expected
// shape: P(client) decays toward 1/(k+1) and entropy grows ~log2(k+1).
#include <cmath>
#include <cstdio>

#include "analysis/report.hpp"
#include "common/stats.hpp"
#include "core/background.hpp"
#include "core/mimicry.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"

using namespace sm;

int main() {
  std::printf("E7 — attribution confusion from spoofed cover traffic "
              "(Fig. 3 techniques)\n\n");

  analysis::Table table({"cover flows k", "verdict", "evaded",
                         "P(attribute client)", "1/(k+1) reference",
                         "alert entropy (bits)"});
  bool monotone = true;
  double prev_p = 2.0;
  for (size_t k : {0, 1, 2, 5, 10, 20}) {
    core::TestbedConfig config;
    config.neighbor_count = 20;
    core::Testbed tb(config);

    core::StatefulMimicryProbe probe(
        tb, {.path = "/search?q=falun", .cover_flows = k});
    core::ProbeReport report = core::run_probe(tb, probe);
    tb.run_for(common::Duration::seconds(2));
    core::RiskReport risk = core::assess_risk(tb, "mimicry-stateful");

    // Attribution by traffic share: among AS hosts the tap saw talking
    // to the measurement server, what share is the real client? The
    // analyst cannot do better from a signature-free flow log.
    auto population = tb.client_as_addresses();
    std::vector<size_t> weights;
    size_t client_weight = 0;
    for (auto addr : population) {
      size_t w = 0;
      for (const auto& rec : tb.trace->records()) {
        auto d = packet::decode(rec.data);
        if (d && d->ip.src == addr &&
            d->ip.dst == tb.addr().measurement)
          ++w;
      }
      weights.push_back(w);
      if (addr == tb.addr().client) client_weight = w;
    }
    size_t total_weight = 0;
    for (auto w : weights) total_weight += w;
    double p_client =
        total_weight ? double(client_weight) / double(total_weight) : 0.0;
    double entropy = common::entropy_bits(weights);

    if (p_client > prev_p + 0.02) monotone = false;
    prev_p = p_client;

    table.add_row({analysis::Table::num(uint64_t(k)),
                   std::string(core::to_string(report.verdict)),
                   risk.evaded ? "yes" : "NO",
                   analysis::Table::num(p_client),
                   analysis::Table::num(1.0 / double(k + 1)),
                   analysis::Table::num(entropy)});
  }
  std::printf("%s\n", table.to_markdown().c_str());
  std::printf("reading: with k cover flows the client's traffic share "
              "falls toward 1/(k+1),\nso the analyst's best guess is "
              "wrong k/(k+1) of the time.\n");
  std::printf("\npaper-shape check (P(client) non-increasing in k): %s\n",
              monotone ? "PASS" : "FAIL");
  return monotone ? 0 : 1;
}
