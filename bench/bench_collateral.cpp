// E13 — ablation: cloud co-hosting and the censor's collateral-damage
// dilemma (§4.1).
//
// "The rise of cloud services makes it possible to host the measurement
// target in a location that may resemble a real target of interest,
// thereby evading blocking. For example, the target could be hosted on
// Amazon Web Services, which shares IP ranges with real measurement
// targets."
//
// Topology: a cloud /24 hosting N popular tenant sites plus the
// measurement server. Three censor postures:
//   precise  — null-route the measurement server's /32 only
//   range    — null-route the whole cloud /24
//   none     — no IP blocking
// For each: is the measurement server blocked, and how many tenant sites
// went dark as collateral? The dilemma: the precise block works only if
// the censor can *identify* the measurement IP; the range block works
// but takes the popular tenants down with it.
#include <cstdio>

#include "analysis/report.hpp"
#include "campaign/campaign.hpp"
#include "censor/engine.hpp"
#include "netsim/topology.hpp"
#include "proto/http/client.hpp"
#include "proto/http/server.hpp"

using namespace sm;
using common::Duration;
using common::Ipv4Address;

namespace {

constexpr size_t kTenants = 8;

struct CloudResult {
  bool measurement_reachable = false;
  size_t tenants_reachable = 0;
};

CloudResult run(const censor::CensorPolicy& policy) {
  netsim::Network net;
  auto* client = net.add_host("client", Ipv4Address(10, 1, 1, 10));
  auto* router = net.add_router("r");
  net.connect(client, router);

  // The cloud /24: tenants at .1...N, the measurement server at .50 —
  // indistinguishable by address alone.
  std::vector<netsim::Host*> tenants;
  std::vector<std::unique_ptr<proto::tcp::Stack>> stacks;
  std::vector<std::unique_ptr<proto::http::Server>> servers;
  for (size_t i = 0; i < kTenants; ++i) {
    auto* h = net.add_host("tenant" + std::to_string(i),
                           Ipv4Address(203, 0, 113,
                                       static_cast<uint8_t>(1 + i)));
    net.connect(h, router);
    stacks.push_back(std::make_unique<proto::tcp::Stack>(*h));
    servers.push_back(
        std::make_unique<proto::http::Server>(*stacks.back(), 80));
    tenants.push_back(h);
  }
  auto* measurement = net.add_host("measurement",
                                   Ipv4Address(203, 0, 113, 50));
  net.connect(measurement, router);
  stacks.push_back(std::make_unique<proto::tcp::Stack>(*measurement));
  servers.push_back(
      std::make_unique<proto::http::Server>(*stacks.back(), 80));

  censor::CensorTap censor_tap(policy);
  router->add_tap(&censor_tap);

  proto::tcp::Stack client_stack(*client);
  proto::http::Client http(client_stack);

  CloudResult result;
  auto fetch = [&](Ipv4Address target, bool* ok_flag, size_t* counter) {
    proto::tcp::ConnectOptions opts;
    opts.rto = Duration::millis(100);
    opts.max_retries = 2;
    http.fetch(target, 80, proto::http::Request::get("cloud", "/"),
               [ok_flag, counter](const proto::http::FetchResult& r) {
                 if (r.ok()) {
                   if (ok_flag) *ok_flag = true;
                   if (counter) ++*counter;
                 }
               },
               Duration::seconds(3), opts);
  };
  fetch(measurement->address(), &result.measurement_reachable, nullptr);
  for (auto* t : tenants)
    fetch(t->address(), nullptr, &result.tenants_reachable);
  net.run_for(Duration::seconds(8));
  return result;
}

}  // namespace

int main() {
  std::printf("E13 — blocking a cloud-hosted measurement server: efficacy "
              "vs. collateral (paper §4.1)\n\n");

  censor::CensorPolicy none;
  censor::CensorPolicy precise;
  precise.blocked_ips.push_back(Ipv4Address(203, 0, 113, 50));
  censor::CensorPolicy range;
  range.blocked_prefixes.push_back(
      common::Cidr(Ipv4Address(203, 0, 113, 0), 24));

  analysis::Table table({"censor posture", "measurement server blocked",
                         "tenant sites dark (collateral)"});
  // The three postures are independent simulations over a custom (non-
  // Testbed) topology, so they shard through the campaign layer's
  // low-level job pool rather than the Trial runner.
  const censor::CensorPolicy* policies[] = {&none, &precise, &range};
  CloudResult results[3];
  auto errors = campaign::run_jobs(
      3, [&](size_t i, int) { results[i] = run(*policies[i]); });
  for (size_t i = 0; i < errors.size(); ++i) {
    if (!errors[i].empty()) {
      std::fprintf(stderr, "!!! posture %zu failed: %s\n", i,
                   errors[i].c_str());
      return 1;
    }
  }
  const CloudResult& r_none = results[0];
  const CloudResult& r_precise = results[1];
  const CloudResult& r_range = results[2];
  auto row = [&](const char* name, const CloudResult& r) {
    table.add_row({name, r.measurement_reachable ? "no" : "YES",
                   analysis::Table::num(uint64_t(kTenants -
                                                 r.tenants_reachable)) +
                       " of " + std::to_string(kTenants)});
  };
  row("no IP blocking", r_none);
  row("precise /32 null-route", r_precise);
  row("range /24 null-route", r_range);
  std::printf("%s\n", table.to_markdown().c_str());

  std::printf("reading: the /32 block is surgical but requires knowing "
              "which cloud address is the measurement server —\nexactly "
              "the attribution problem the techniques create; the /24 "
              "block needs no attribution but darkens %zu tenants.\n",
              kTenants);
  bool shape = r_none.measurement_reachable &&
               r_none.tenants_reachable == kTenants &&
               !r_precise.measurement_reachable &&
               r_precise.tenants_reachable == kTenants &&
               !r_range.measurement_reachable &&
               r_range.tenants_reachable == 0;
  std::printf("\npaper-shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
