// E11 — ablation: traffic normalization as a countermeasure (§4.2).
//
// "Traffic normalization may be able to identify odd TTL values in our
// packets, but these approaches come at a high cost; for example, they
// may require disabling traceroute and ping [21]." We install a TTL
// normalizer (floor = 10) on the tap router and measure both sides of
// the trade:
//   offense — TTL-limited cover replies now reach the spoofed hosts,
//             whose RSTs unravel the stateful mimicry;
//   cost    — packets meant to expire in the network (traceroute-style
//             TTL=1..3 probes) no longer do: ICMP Time Exceeded counts
//             drop to zero and the diagnostics break.
#include <cstdio>

#include "analysis/report.hpp"
#include "core/probe.hpp"
#include "core/testbed.hpp"
#include "spoof/cover.hpp"
#include "surveillance/normalizer.hpp"

using namespace sm;

namespace {

struct Outcome {
  uint64_t ttls_raised = 0;
  uint64_t spoofee_rsts = 0;
  uint64_t replies_expired = 0;   // ICMP time-exceeded events
  uint64_t traceroute_replies = 0;  // ICMP TE elicited by TTL probes
  uint64_t flows_completed = 0;
};

Outcome run(bool with_normalizer) {
  core::Testbed tb;
  surveillance::TtlNormalizerStats stats;
  if (with_normalizer)
    tb.router->set_transformer(
        surveillance::make_ttl_normalizer(10, &stats));

  // Offense: 5 TTL-limited cover flows.
  spoof::StatefulMimicryClient mimic(*tb.client, tb.addr().measurement, 80,
                                     tb.config().mimicry_secret,
                                     common::Duration::millis(10));
  for (size_t i = 0; i < 5; ++i) {
    tb.mimicry_server->register_cover_client(tb.neighbors[i]->address(), 1);
    mimic.run_flow(tb.neighbors[i]->address(),
                   "GET /cover HTTP/1.1\r\nHost: m\r\n\r\n");
  }
  tb.run_for(common::Duration::seconds(3));

  Outcome out;
  out.ttls_raised = stats.ttls_raised;
  for (size_t i = 0; i < 5; ++i)
    out.spoofee_rsts += tb.neighbor_stacks[i]->stats().rst_out;
  out.replies_expired = tb.router->counters().icmp_time_exceeded;
  out.flows_completed = tb.measurement_http->requests_served();

  // Cost: a traceroute-style sweep (TTL 1..3 UDP probes) from the client
  // counts the ICMP Time Exceeded replies it gets back.
  uint64_t te_before = 0;
  tb.client->set_icmp_handler(
      [&te_before](const packet::Decoded& d, const common::Bytes&) {
        if (d.icmp->type == packet::IcmpHeader::kTimeExceeded) ++te_before;
      });
  for (uint8_t ttl = 1; ttl <= 3; ++ttl) {
    tb.client->send_udp(tb.addr().web_open, 33434, 33434,
                        common::to_bytes("traceroute"), ttl);
  }
  tb.run_for(common::Duration::seconds(1));
  out.traceroute_replies = te_before;
  return out;
}

}  // namespace

int main() {
  std::printf("E11 — TTL normalization: surveillance countermeasure vs. "
              "collateral damage (paper §4.2)\n\n");

  Outcome off = run(false);
  Outcome on = run(true);

  analysis::Table table({"configuration", "TTLs raised",
                         "spoofee RSTs (mimicry unraveled)",
                         "cover flows completed",
                         "traceroute TE replies (of 1 expected)"});
  auto row = [&](const char* name, const Outcome& o) {
    table.add_row({name, analysis::Table::num(o.ttls_raised),
                   analysis::Table::num(o.spoofee_rsts),
                   analysis::Table::num(o.flows_completed),
                   analysis::Table::num(o.traceroute_replies)});
  };
  row("no normalizer (baseline)", off);
  row("TTL normalizer, floor 10", on);
  std::printf("%s\n", table.to_markdown().c_str());

  std::printf("reading: the normalizer does defeat TTL-limited cover "
              "(RSTs appear, flows unravel),\nbut it also erases the TTL "
              "expirations traceroute depends on — the paper's predicted "
              "cost.\n");
  bool shape = off.spoofee_rsts == 0 && on.spoofee_rsts > 0 &&
               off.traceroute_replies >= 1 && on.traceroute_replies == 0 &&
               off.flows_completed == 5;
  std::printf("\npaper-shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
