// E20 — simcheck throughput and fault-detection gates.
//
// Measures the property-based model-checker itself:
//
//   Part A  Clean exploration at a fixed seed: all five oracles must be
//           green over the sample, at -j1 and -j4, with byte-identical
//           trial logs (the campaign determinism contract extended to
//           simcheck). Reports trials/sec at both thread counts.
//   Part B  Fault sensitivity: with the break-verdict sabotage the O1
//           oracle must produce counterexamples that delta-debug down to
//           <= 6 scenario elements; with the ttl-plus-one sabotage the
//           O3 spoof-safety oracle must fire. Reports mean shrink
//           evaluations and shrunk sizes.
//
// Emits a short table on stdout and a JSON report (argv[1], default
// BENCH_simcheck.json). Exit code: 0 only if all gates hold.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "simcheck/explore.hpp"
#include "simcheck/json.hpp"

using namespace sm;
using simcheck::ExploreOptions;
using simcheck::ExploreResult;
using simcheck::Json;

namespace {

constexpr uint64_t kSeed = 0x51AC4EC0DEULL;
constexpr size_t kTrials = 300;
constexpr size_t kFaultTrials = 32;

struct TimedRun {
  ExploreResult result;
  double seconds = 0.0;
};

TimedRun timed_explore(const ExploreOptions& options) {
  auto start = std::chrono::steady_clock::now();
  TimedRun run;
  run.result = simcheck::explore(options);
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  run.seconds = elapsed.count();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_simcheck.json";
  bool ok = true;

  // Part A: clean exploration, -j1 vs -j4.
  ExploreOptions clean;
  clean.seed = kSeed;
  clean.trials = kTrials;
  clean.threads = 1;
  TimedRun j1 = timed_explore(clean);
  clean.threads = 4;
  TimedRun j4 = timed_explore(clean);

  bool all_green = j1.result.ok() && j4.result.ok();
  bool deterministic = j1.result.log == j4.result.log;
  ok = ok && all_green && deterministic;

  std::printf("part A: %zu trials  -j1 %.2fs (%.0f/s)  -j4 %.2fs (%.0f/s)"
              "  green=%d deterministic=%d\n",
              kTrials, j1.seconds, kTrials / j1.seconds, j4.seconds,
              kTrials / j4.seconds, all_green ? 1 : 0,
              deterministic ? 1 : 0);

  // Part B: sabotages must be caught and shrink small.
  ExploreOptions broken = clean;
  broken.threads = 4;
  broken.trials = kFaultTrials;
  broken.faults.break_verdict = true;
  TimedRun verdict_fault = timed_explore(broken);

  size_t shrink_evals = 0, shrunk_elements = 0, max_shrunk = 0;
  for (const auto& ce : verdict_fault.result.counterexamples) {
    shrink_evals += ce.shrunk.evaluations;
    shrunk_elements += ce.shrunk.scenario.elements();
    max_shrunk = std::max(max_shrunk, ce.shrunk.scenario.elements());
  }
  size_t n_ce = verdict_fault.result.counterexamples.size();
  bool verdict_caught = n_ce > 0 && max_shrunk <= 6;
  ok = ok && verdict_caught;

  ExploreOptions ttl = clean;
  ttl.threads = 4;
  ttl.trials = kFaultTrials;
  ttl.faults.ttl_plus_one = true;
  ttl.shrink = false;
  TimedRun ttl_fault = timed_explore(ttl);
  bool ttl_caught = false;
  for (const auto& ce : ttl_fault.result.counterexamples) {
    if (ce.oracle == "O3") ttl_caught = true;
  }
  ok = ok && ttl_caught;

  std::printf("part B: break-verdict -> %zu counterexamples, "
              "mean %.1f shrink evals, max %zu elements (gate <= 6); "
              "ttl-plus-one caught by O3: %d\n",
              n_ce, n_ce ? static_cast<double>(shrink_evals) / n_ce : 0.0,
              max_shrunk, ttl_caught ? 1 : 0);

  Json report = Json::object();
  report.set("bench", Json::string("simcheck"));
  report.set("seed", Json::integer(static_cast<long long>(kSeed)));
  report.set("trials", Json::integer(static_cast<long long>(kTrials)));
  report.set("wall_seconds_j1", Json::number(j1.seconds));
  report.set("wall_seconds_j4", Json::number(j4.seconds));
  report.set("trials_per_sec_j1", Json::number(kTrials / j1.seconds));
  report.set("trials_per_sec_j4", Json::number(kTrials / j4.seconds));
  report.set("speedup_4x", Json::number(j1.seconds / j4.seconds));
  report.set("all_oracles_green", Json::boolean(all_green));
  report.set("deterministic", Json::boolean(deterministic));
  report.set("packets_checked",
             Json::integer(static_cast<long long>(j1.result.packets_checked)));
  Json verdict = Json::object();
  verdict.set("counterexamples", Json::integer(static_cast<long long>(n_ce)));
  verdict.set("mean_shrink_evaluations",
              Json::number(n_ce ? static_cast<double>(shrink_evals) / n_ce
                                : 0.0));
  verdict.set("mean_shrunk_elements",
              Json::number(n_ce ? static_cast<double>(shrunk_elements) / n_ce
                                : 0.0));
  verdict.set("max_shrunk_elements",
              Json::integer(static_cast<long long>(max_shrunk)));
  verdict.set("caught", Json::boolean(verdict_caught));
  report.set("fault_break_verdict", verdict);
  Json ttl_report = Json::object();
  ttl_report.set("counterexamples",
                 Json::integer(static_cast<long long>(
                     ttl_fault.result.counterexamples.size())));
  ttl_report.set("caught", Json::boolean(ttl_caught));
  report.set("fault_ttl_plus_one", ttl_report);

  std::FILE* out = std::fopen(out_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 2;
  }
  std::string text = report.pretty(2);
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}
