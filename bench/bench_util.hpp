// Shared helpers for the experiment benches: run one technique in a fresh
// testbed (or a whole technique x config matrix through the campaign
// runner) and collect both the measurement report and the risk report.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "campaign/campaign.hpp"
#include "core/ddos.hpp"
#include "core/mimicry.hpp"
#include "core/overt.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"
#include "core/spam.hpp"
#include "core/synprobe.hpp"

namespace sm::bench {

struct TechniqueRun {
  core::ProbeReport report;
  core::RiskReport risk;
};

/// Factory signature: builds a probe bound to the given testbed.
using ProbeFactory =
    std::function<std::unique_ptr<core::Probe>(core::Testbed&)>;

/// Runs `factory`'s probe in a fresh testbed configured with `config`
/// (single-cell path; matrix benches go through run_campaign below).
inline TechniqueRun run_technique(const core::TestbedConfig& config,
                                  const ProbeFactory& factory,
                                  const std::string& label) {
  core::Testbed tb(config);
  auto probe = factory(tb);
  TechniqueRun out;
  out.report = core::run_probe(tb, *probe);
  tb.run_for(common::Duration::seconds(2));  // drain in-flight traffic
  out.risk = core::assess_risk(tb, label);
  return out;
}

/// The standard technique suite, in presentation order.
struct NamedFactory {
  std::string name;
  ProbeFactory factory;
};

inline std::vector<NamedFactory> standard_techniques() {
  std::vector<NamedFactory> out;
  out.push_back({"overt-dns", [](core::Testbed& tb) {
                   return std::make_unique<core::OvertDnsProbe>(
                       tb, core::OvertDnsOptions{.domain = "twitter.com"});
                 }});
  out.push_back({"overt-http", [](core::Testbed& tb) {
                   return std::make_unique<core::OvertHttpProbe>(
                       tb,
                       core::OvertHttpOptions{.domain = "blocked.example"});
                 }});
  out.push_back({"scan", [](core::Testbed& tb) {
                   core::ScanOptions opts;
                   opts.target = tb.addr().web_blocked;
                   opts.ports = core::top_tcp_ports(100);
                   opts.expected_open = {80};
                   return std::make_unique<core::ScanProbe>(tb, opts);
                 }});
  out.push_back({"syn-reach", [](core::Testbed& tb) {
                   return std::make_unique<core::SynReachabilityProbe>(
                       tb, core::SynReachabilityOptions{
                               .target = tb.addr().web_blocked,
                               .port = 80,
                               .cover_count = 5});
                 }});
  out.push_back({"spam", [](core::Testbed& tb) {
                   return std::make_unique<core::SpamProbe>(
                       tb, core::SpamOptions{.domain = "blocked.example"});
                 }});
  out.push_back({"ddos", [](core::Testbed& tb) {
                   return std::make_unique<core::DdosProbe>(
                       tb, core::DdosOptions{.domain = "blocked.example",
                                             .requests = 15});
                 }});
  out.push_back({"mimicry-dns", [](core::Testbed& tb) {
                   return std::make_unique<core::StatelessDnsMimicryProbe>(
                       tb, core::StatelessMimicryOptions{
                               .domain = "twitter.com", .cover_count = 10});
                 }});
  out.push_back({"mimicry-stateful", [](core::Testbed& tb) {
                   return std::make_unique<core::StatefulMimicryProbe>(
                       tb, core::StatefulMimicryOptions{
                               .path = "/search?q=falun",
                               .cover_flows = 10});
                 }});
  return out;
}

/// The five censor mechanisms of the E2 evaluation matrix, by name —
/// shared between bench_eval_matrix (which attaches per-technique
/// expectations) and bench_campaign_scaling (which uses the matrix as its
/// workload).
inline std::vector<std::pair<std::string, core::TestbedConfig>>
eval_matrix_configs() {
  core::TestbedAddresses addr;
  std::vector<std::pair<std::string, core::TestbedConfig>> out;
  {
    core::TestbedConfig c;
    c.policy = censor::gfc_profile();
    c.policy.dns_forgeries.clear();  // isolate the mechanism
    out.emplace_back("keyword-rst", c);
  }
  {
    core::TestbedConfig c;
    c.policy = censor::gfc_profile();
    c.policy.rst_keywords.clear();
    out.emplace_back("dns-forgery", c);
  }
  {
    core::TestbedConfig c;
    c.policy =
        censor::dropping_profile({addr.web_blocked, addr.mail_blocked});
    out.emplace_back("ip-null-route", c);
  }
  {
    core::TestbedConfig c;
    c.policy = censor::dropping_profile({}, {{addr.web_blocked, 80}});
    out.emplace_back("port-block-80", c);
  }
  {
    core::TestbedConfig c;
    c.policy = censor::CensorPolicy{};
    c.policy.blockpage_keywords = {"blocked.example"};
    out.emplace_back("blockpage-injection", c);
  }
  return out;
}

/// Which verdicts count as "detected the configured blocking" per
/// technique, keyed by scenario name (missing entry = technique is not
/// expected to detect this mechanism). Shared between bench_eval_matrix
/// (E2, the accuracy x evasion matrix) and bench_impairment (E19, which
/// re-checks the same expectations at 0% loss before sweeping loss).
inline std::map<std::string,
                std::map<std::string, std::vector<core::Verdict>>>
eval_matrix_expectations() {
  using core::Verdict;
  return {
      {"keyword-rst",
       {
           {"overt-http", {Verdict::BlockedRst}},
           {"ddos", {Verdict::BlockedRst}},
           {"mimicry-stateful", {Verdict::BlockedRst}},
       }},
      {"dns-forgery",
       {
           {"overt-dns", {Verdict::BlockedDnsForgery}},
           {"mimicry-dns", {Verdict::BlockedDnsForgery}},
       }},
      {"ip-null-route",
       {
           {"overt-http", {Verdict::BlockedTimeout}},
           {"scan", {Verdict::BlockedTimeout}},
           {"syn-reach", {Verdict::BlockedTimeout}},
           {"spam", {Verdict::BlockedTimeout}},
           {"ddos", {Verdict::BlockedTimeout}},
       }},
      {"port-block-80",
       {
           {"overt-http", {Verdict::BlockedTimeout}},
           {"scan", {Verdict::BlockedTimeout}},
           {"syn-reach", {Verdict::BlockedTimeout}},
           {"ddos", {Verdict::BlockedTimeout}},
       }},
      {"blockpage-injection",
       {
           {"overt-http", {Verdict::BlockedBlockpage}},
           {"ddos", {Verdict::BlockedBlockpage}},
       }},
  };
}

/// Builds one campaign Trial per technique for a single censor config;
/// trial names are "<config_name>/<technique>".
inline std::vector<campaign::Trial> technique_trials(
    const std::string& config_name, const core::TestbedConfig& config,
    const std::vector<NamedFactory>& techniques) {
  std::vector<campaign::Trial> out;
  out.reserve(techniques.size());
  for (const NamedFactory& technique : techniques) {
    out.push_back(campaign::Trial{
        .name = config_name.empty() ? technique.name
                                    : config_name + "/" + technique.name,
        .config = config,
        .factory = technique.factory});
  }
  return out;
}

/// Runs a trial list through the campaign runner and hands the results
/// back in trial order as TechniqueRuns. A failed trial keeps its default
/// (Inconclusive, not-evaded) run, so shape checks fail loudly rather
/// than crash.
inline std::vector<TechniqueRun> run_campaign(
    const std::vector<campaign::Trial>& trials, size_t threads = 0) {
  campaign::CampaignOptions options;
  options.threads = threads;
  campaign::CampaignResult result = campaign::run(trials, options);
  std::vector<TechniqueRun> out(result.trials.size());
  for (const campaign::TrialResult& t : result.trials) {
    if (t.failed) {
      std::fprintf(stderr, "!!! trial %zu (%s) failed: %s\n", t.index,
                   t.name.c_str(), t.error.c_str());
      continue;
    }
    out[t.index] = TechniqueRun{t.report, t.risk};
  }
  return out;
}

}  // namespace sm::bench
