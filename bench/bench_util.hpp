// Shared helpers for the experiment benches: run one technique in a fresh
// testbed and collect both the measurement report and the risk report.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "core/ddos.hpp"
#include "core/mimicry.hpp"
#include "core/overt.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"
#include "core/spam.hpp"
#include "core/synprobe.hpp"

namespace sm::bench {

struct TechniqueRun {
  core::ProbeReport report;
  core::RiskReport risk;
};

/// Factory signature: builds a probe bound to the given testbed.
using ProbeFactory =
    std::function<std::unique_ptr<core::Probe>(core::Testbed&)>;

/// Runs `factory`'s probe in a fresh testbed configured with `config`.
inline TechniqueRun run_technique(const core::TestbedConfig& config,
                                  const ProbeFactory& factory,
                                  const std::string& label) {
  core::Testbed tb(config);
  auto probe = factory(tb);
  TechniqueRun out;
  out.report = core::run_probe(tb, *probe);
  tb.run_for(common::Duration::seconds(2));  // drain in-flight traffic
  out.risk = core::assess_risk(tb, label);
  return out;
}

/// The standard technique suite, in presentation order.
struct NamedFactory {
  std::string name;
  ProbeFactory factory;
};

inline std::vector<NamedFactory> standard_techniques() {
  std::vector<NamedFactory> out;
  out.push_back({"overt-dns", [](core::Testbed& tb) {
                   return std::make_unique<core::OvertDnsProbe>(
                       tb, core::OvertDnsOptions{.domain = "twitter.com"});
                 }});
  out.push_back({"overt-http", [](core::Testbed& tb) {
                   return std::make_unique<core::OvertHttpProbe>(
                       tb,
                       core::OvertHttpOptions{.domain = "blocked.example"});
                 }});
  out.push_back({"scan", [](core::Testbed& tb) {
                   core::ScanOptions opts;
                   opts.target = tb.addr().web_blocked;
                   opts.ports = core::top_tcp_ports(100);
                   opts.expected_open = {80};
                   return std::make_unique<core::ScanProbe>(tb, opts);
                 }});
  out.push_back({"syn-reach", [](core::Testbed& tb) {
                   return std::make_unique<core::SynReachabilityProbe>(
                       tb, core::SynReachabilityOptions{
                               .target = tb.addr().web_blocked,
                               .port = 80,
                               .cover_count = 5});
                 }});
  out.push_back({"spam", [](core::Testbed& tb) {
                   return std::make_unique<core::SpamProbe>(
                       tb, core::SpamOptions{.domain = "blocked.example"});
                 }});
  out.push_back({"ddos", [](core::Testbed& tb) {
                   return std::make_unique<core::DdosProbe>(
                       tb, core::DdosOptions{.domain = "blocked.example",
                                             .requests = 15});
                 }});
  out.push_back({"mimicry-dns", [](core::Testbed& tb) {
                   return std::make_unique<core::StatelessDnsMimicryProbe>(
                       tb, core::StatelessMimicryOptions{
                               .domain = "twitter.com", .cover_count = 10});
                 }});
  out.push_back({"mimicry-stateful", [](core::Testbed& tb) {
                   return std::make_unique<core::StatefulMimicryProbe>(
                       tb, core::StatefulMimicryOptions{
                               .path = "/search?q=falun",
                               .cover_flows = 10});
                 }});
  return out;
}

}  // namespace sm::bench
