// Fast-path IDS matching bench: packets/sec through sm::ids::Engine with
// the legacy linear rule scan, the rule-group index + Aho-Corasick
// fast-pattern prefilter, and the Auto cutover (which must match or beat
// the best fixed mode at every scale), at 10/100/1000-rule ruleset sizes.
// Auto exists because the fastpath bookkeeping was a net loss on tiny
// rulesets (0.92x at 10 rules); this bench is the calibration + the
// regression gate for EngineOptions::auto_linear_max_rules.
//
// Emits a human-readable table on stdout and a JSON report (default
// BENCH_ids_fastpath.json, or argv[1]) so the perf trajectory is tracked
// across PRs.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "ids/engine.hpp"
#include "packet/packet.hpp"

using namespace sm;
using common::Ipv4Address;
using common::Rng;
using common::SimTime;
using packet::TcpFlags;

namespace {

struct PacketBox {
  common::Bytes storage;
  packet::Decoded decoded;
};

/// Keyword pool: rules draw patterns from here; payloads occasionally
/// embed one so the prefilter sees a realistic (low) hit rate.
const std::vector<std::string>& keywords() {
  static const std::vector<std::string> kw = [] {
    std::vector<std::string> out;
    const char* stems[] = {"falun",  "ultrasurf", "freegate", "beacon",
                           "tor",    "obfs4",     "vpn",      "proxy",
                           "tunnel", "psiphon",   "lantern",  "shadows"};
    for (int i = 0; i < 1024; ++i) {
      out.push_back(std::string(stems[i % 12]) + "-sig" + std::to_string(i));
    }
    return out;
  }();
  return kw;
}

/// A Snort-shaped ruleset: ~70% single-dst-port content rules (hash
/// buckets), ~20% any-port content rules (fallback + prefilter), ~10%
/// port-only rules without content.
std::vector<ids::Rule> make_ruleset(size_t n, Rng& rng) {
  std::string text;
  const auto& kw = keywords();
  for (size_t i = 0; i < n; ++i) {
    uint16_t port = static_cast<uint16_t>(1024 + (i * 7) % 4096);
    const std::string& pat = kw[i % kw.size()];
    double shape = rng.uniform();
    if (shape < 0.70) {
      text += "alert tcp any any -> any " + std::to_string(port) +
              " (msg:\"p" + std::to_string(i) + "\"; content:\"" + pat +
              "\"; nocase; sid:" + std::to_string(100000 + i) + ";)\n";
    } else if (shape < 0.90) {
      text += "alert tcp any any -> any any (msg:\"a" + std::to_string(i) +
              "\"; content:\"" + pat + "\"; sid:" +
              std::to_string(100000 + i) + ";)\n";
    } else {
      text += "drop tcp any any -> any " + std::to_string(port) +
              " (msg:\"b" + std::to_string(i) + "\"; dsize:>1400; sid:" +
              std::to_string(100000 + i) + ";)\n";
    }
  }
  auto parsed = ids::parse_rules(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "ruleset generation bug: %s\n",
                 parsed.errors[0].message.c_str());
    std::exit(1);
  }
  return std::move(parsed.rules);
}

/// Mixed traffic: mostly clean HTTP-ish payloads across the rule port
/// space, a few percent carrying a rule keyword.
std::vector<PacketBox> make_packets(size_t n, Rng& rng) {
  std::vector<PacketBox> out;
  out.reserve(n);
  const auto& kw = keywords();
  for (size_t i = 0; i < n; ++i) {
    std::string payload = "GET /index.html?session=";
    size_t filler = 200 + rng.bounded(400);
    for (size_t j = 0; j < filler; ++j)
      payload += static_cast<char>('a' + rng.bounded(26));
    if (rng.chance(0.03)) payload += " " + kw[rng.bounded(kw.size())];
    uint16_t dp = static_cast<uint16_t>(1024 + rng.bounded(4096));
    PacketBox box;
    packet::Packet p = packet::make_tcp(
        Ipv4Address(10, 0, static_cast<uint8_t>(rng.bounded(8)),
                    static_cast<uint8_t>(1 + rng.bounded(250))),
        Ipv4Address(192, 0, 2, 80),
        static_cast<uint16_t>(1024 + rng.bounded(60000)), dp, TcpFlags::kAck,
        static_cast<uint32_t>(i * 1000), 1, common::to_bytes(payload));
    box.storage = p.data();
    box.decoded = *packet::decode(box.storage);
    out.push_back(std::move(box));
  }
  return out;
}

struct RunResult {
  double pps = 0;
  uint64_t alerts = 0;
  ids::Engine::Stats stats;
};

/// Processes the packet set repeatedly until ~min_seconds elapsed.
RunResult run_engine(ids::Engine& engine,
                     const std::vector<PacketBox>& packets,
                     double min_seconds) {
  using clock = std::chrono::steady_clock;
  RunResult r;
  uint64_t processed = 0;
  int64_t t = 0;
  auto start = clock::now();
  double elapsed = 0;
  do {
    for (const auto& box : packets) {
      auto v = engine.process(SimTime(t += 1000), box.decoded);
      processed += 1;
    }
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < min_seconds);
  r.pps = static_cast<double>(processed) / elapsed;
  r.stats = engine.stats();
  r.alerts = engine.stats().alerts;
  return r;
}

struct SizeResult {
  size_t rules;
  RunResult linear;
  RunResult fast;
  RunResult auto_r;
  double speedup;       // fastpath vs linear
  double auto_speedup;  // auto vs linear (>= 1.0 is the regression gate)
  const char* auto_path;
};

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_ids_fastpath.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke")
      smoke = true;
    else
      out_path = argv[i];
  }
  // Smoke mode (ci.sh perf stage) trades timing stability for speed;
  // tools/perf_smoke.py compensates with a generous regression margin.
  const double min_seconds = smoke ? 0.1 : 0.4;
  const size_t sizes[] = {10, 100, 1000};

  std::printf("IDS fast-path bench: linear scan vs port-group index + "
              "Aho-Corasick prefilter vs auto cutover\n\n");
  std::printf("%8s %16s %16s %16s %9s %9s %9s\n", "rules", "linear pps",
              "fastpath pps", "auto pps", "speedup", "auto x", "auto=");

  std::vector<SizeResult> results;
  for (size_t n : sizes) {
    Rng rule_rng(42);
    Rng pkt_rng(1337);
    auto rules = make_ruleset(n, rule_rng);
    auto packets = make_packets(512, pkt_rng);

    ids::Engine linear(rules,
                       ids::EngineOptions{.mode = ids::MatchMode::Linear});
    ids::Engine fast(rules,
                     ids::EngineOptions{.mode = ids::MatchMode::Fastpath});
    ids::Engine auto_engine(rules, ids::EngineOptions{});  // Auto default

    SizeResult sr;
    sr.rules = n;
    sr.linear = run_engine(linear, packets, min_seconds);
    sr.fast = run_engine(fast, packets, min_seconds);
    sr.auto_r = run_engine(auto_engine, packets, min_seconds);
    sr.speedup = sr.fast.pps / sr.linear.pps;
    sr.auto_speedup = sr.auto_r.pps / sr.linear.pps;
    sr.auto_path = auto_engine.fastpath_active() ? "fastpath" : "linear";

    // Verdict sanity: both engines must alert at the same per-packet
    // rate (stats are cumulative over different iteration counts).
    double lin_rate = static_cast<double>(sr.linear.stats.alerts) /
                      static_cast<double>(sr.linear.stats.packets);
    double fast_rate = static_cast<double>(sr.fast.stats.alerts) /
                       static_cast<double>(sr.fast.stats.packets);
    double auto_rate = static_cast<double>(sr.auto_r.stats.alerts) /
                       static_cast<double>(sr.auto_r.stats.packets);
    if (lin_rate != fast_rate || lin_rate != auto_rate) {
      std::fprintf(stderr,
                   "FAIL: alert rate diverged at %zu rules "
                   "(linear %.6f vs fastpath %.6f vs auto %.6f)\n",
                   n, lin_rate, fast_rate, auto_rate);
      return 1;
    }

    std::printf("%8zu %16.0f %16.0f %16.0f %8.1fx %8.2fx %9s\n", n,
                sr.linear.pps, sr.fast.pps, sr.auto_r.pps, sr.speedup,
                sr.auto_speedup, sr.auto_path);
    results.push_back(sr);
  }

  bool pass = results.back().speedup >= 5.0;
  std::printf("\n1000-rule speedup %.1fx (target >= 5x): %s\n",
              results.back().speedup, pass ? "PASS" : "FAIL");
  // The auto-cutover regression gates: never slower than linear on the
  // small ruleset it falls back for, and within noise of the fastpath
  // at scale. Tolerance 0.95: two timed runs of the same engine jitter
  // a few percent on a busy machine. Smoke mode's 4x-shorter windows
  // cannot resolve 5%, so it gates at 0.8 — perf_smoke.py's
  // baseline comparison catches real drift.
  const double tol = smoke ? 0.8 : 0.95;
  if (results.front().auto_speedup < tol) {
    std::printf("auto %.2fx at %zu rules (target >= ~1x): FAIL\n",
                results.front().auto_speedup, results.front().rules);
    pass = false;
  }
  for (const auto& sr : results) {
    double best = sr.fast.pps > sr.linear.pps ? sr.fast.pps : sr.linear.pps;
    if (sr.auto_r.pps < best * tol) {
      std::printf("auto %.0f pps < best fixed mode %.0f pps at %zu rules: "
                  "FAIL\n",
                  sr.auto_r.pps, best, sr.rules);
      pass = false;
    }
  }

  FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\"bench\":\"ids_fastpath\",\"packet_count\":512,"
                  "\"results\":[");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& sr = results[i];
    std::fprintf(
        f,
        "%s{\"rules\":%zu,\"linear_pps\":%.0f,\"fastpath_pps\":%.0f,"
        "\"auto_pps\":%.0f,\"speedup\":%.2f,\"auto_speedup\":%.2f,"
        "\"auto_path\":\"%s\",\"fastpath_candidates\":%llu,"
        "\"prefilter_hits\":%llu,\"prefilter_skips\":%llu,"
        "\"payload_scans\":%llu,\"stream_scans\":%llu}",
        i ? "," : "", sr.rules, sr.linear.pps, sr.fast.pps, sr.auto_r.pps,
        sr.speedup, sr.auto_speedup, sr.auto_path,
        static_cast<unsigned long long>(sr.fast.stats.fastpath_candidates),
        static_cast<unsigned long long>(sr.fast.stats.prefilter_hits),
        static_cast<unsigned long long>(sr.fast.stats.prefilter_skips),
        static_cast<unsigned long long>(sr.fast.stats.payload_scans),
        static_cast<unsigned long long>(sr.fast.stats.stream_scans));
  }
  std::fprintf(f, "],\"pass\":%s}\n", pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return pass ? 0 : 1;
}
