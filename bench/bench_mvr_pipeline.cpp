// E4 — §2.1 surveillance storage model: Massive Volume Reduction and the
// retention windows.
//
// Anchors from the paper: the NSA could store only 7.5% of received
// traffic [31]; MVR cuts ~30% of volume "in part by throwing away all
// peer-to-peer traffic" [28]; content is kept 3 days, connection metadata
// 30 days (campus: flow records ~36 h, alerts ~1 y).
//
// Part 1 drives a realistic traffic mix through the MVR tap at packet
// level and reports the per-class volume, the discard fraction, and the
// content-retention fraction (should sit near the configured 7.5%).
// Part 2 feeds the retention stores over 40 simulated days and shows
// occupancy plateauing at each window (3 d content / 30 d metadata).
#include <cstdio>

#include "analysis/report.hpp"
#include "core/background.hpp"
#include "core/testbed.hpp"

using namespace sm;

int main() {
  std::printf("E4 — MVR pipeline and retention windows (paper §2.1)\n\n");

  // --- Part 1: packet-level volume reduction on a realistic mix ---
  core::TestbedConfig config;
  config.neighbor_count = 30;
  core::Testbed tb(config);
  core::BackgroundConfig bg_cfg;
  bg_cfg.p2p_fraction = 0.3;  // ~30% of hosts torrenting: the MVR's cut
  core::BackgroundTraffic bg(tb, bg_cfg);
  bg.schedule(common::Duration::seconds(60));
  tb.run_for(common::Duration::seconds(70));

  const auto& stats = tb.mvr->stats();
  analysis::Table classes({"traffic class", "bytes", "share"});
  uint64_t total = stats.bytes_seen ? stats.bytes_seen : 1;
  for (const auto& [cls, bytes] : stats.bytes_by_class) {
    classes.add_row({surveillance::to_string(cls),
                     analysis::Table::num(bytes),
                     analysis::Table::pct(double(bytes) / double(total))});
  }
  std::printf("observed mix over 60 simulated seconds "
              "(%llu packets, %llu bytes):\n%s\n",
              (unsigned long long)stats.packets_seen,
              (unsigned long long)stats.bytes_seen,
              classes.to_markdown().c_str());

  double discard = double(stats.bytes_discarded) / double(total);
  double retained = tb.mvr->retained_fraction();
  uint64_t eligible = stats.bytes_seen - stats.bytes_discarded;
  double retained_of_eligible =
      eligible ? double(stats.bytes_content_retained) / double(eligible)
               : 0.0;
  analysis::Table summary({"quantity", "measured", "paper anchor"});
  summary.add_row({"volume discarded by MVR (class-based)",
                   analysis::Table::pct(discard), "~30% (TEMPORA [28])"});
  summary.add_row({"content retained (of eligible bytes)",
                   analysis::Table::pct(retained_of_eligible),
                   "7.5% sampling rate [31]"});
  summary.add_row({"content retained (of all seen bytes)",
                   analysis::Table::pct(retained),
                   "<= 7.5% of received traffic"});
  summary.add_row({"metadata records kept",
                   analysis::Table::num(
                       uint64_t(tb.mvr->metadata_store().count())),
                   "every connection (CDR-like)"});
  std::printf("%s\n", summary.to_markdown().c_str());

  // --- Part 2: store occupancy over 40 simulated days ---
  std::printf("store occupancy vs. day (constant inflow of 1 GB/day "
              "content eligible, 1M metadata records/day):\n\n");
  surveillance::ContentStore content(common::Duration::days(3));
  surveillance::MetadataStore metadata(common::Duration::days(30));
  analysis::Table occupancy(
      {"day", "content GB (3d window)", "metadata Mrec (30d window)"});
  for (int day = 1; day <= 40; ++day) {
    common::SimTime now(common::Duration::days(day).count());
    surveillance::ContentItem c;
    c.time = now;
    content.add(now, c, 1ull << 30);  // 1 GB/day as one accounting item
    for (int k = 0; k < 10; ++k) {    // metadata in 0.1M batches
      surveillance::MetadataItem m;
      m.time = now;
      metadata.add(now, m, 100'000);
    }
    if (day <= 5 || day % 5 == 0 || day == 29 || day == 31) {
      occupancy.add_row(
          {analysis::Table::num(uint64_t(day)),
           analysis::Table::num(double(content.bytes()) / double(1u << 30)),
           analysis::Table::num(double(metadata.bytes()) / 1e6)});
    }
  }
  std::printf("%s\n", occupancy.to_markdown().c_str());

  bool shape = discard > 0.15 && retained < 0.15 &&
               content.bytes() == 3ull << 30 &&
               metadata.bytes() == 30'000'000ull;
  std::printf("paper-shape check (significant discard, ~7.5%% content "
              "retention, 3d/30d plateaus): %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
