// E2 — §3.2.2 IDS evaluation: the accuracy x evasion matrix.
//
// The paper's criterion: "We declared a measurement successful if it can
// detect blocking (as controlled by our modifications to the censorship
// system) without triggering the MVR to log its traffic." We run every
// technique against five censor configurations (keyword RST injection,
// DNS forgery, IP null-route, port block, blockpage) and report, per cell:
//   verdict    — what the technique concluded
//   accurate   — did it detect the mechanism it is designed to detect
//   evaded     — zero targeted alerts stored by the MVR for the client
// Expected shape: stealthy techniques match the overt baselines on
// accuracy for their mechanisms, but only the overt baselines get logged.
//
// Every cell is independent, so the whole matrix runs through the
// campaign runner (one trial per scenario x technique, sharded across
// hardware threads); results come back in trial order, so the tables
// print exactly as the sequential version did.
#include <cstdio>

#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace sm;
using bench::NamedFactory;
using bench::TechniqueRun;

int main() {
  std::printf("E2 — accuracy x evasion matrix (paper §3.2.2)\n\n");
  auto techniques = bench::standard_techniques();
  auto scenarios = bench::eval_matrix_configs();
  auto expected_by_scenario = bench::eval_matrix_expectations();

  // One trial per (scenario, technique) cell, all sharded at once.
  std::vector<campaign::Trial> trials;
  for (const auto& [name, config] : scenarios) {
    auto batch = bench::technique_trials(name, config, techniques);
    trials.insert(trials.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  }
  std::vector<TechniqueRun> runs = bench::run_campaign(trials);

  size_t stealthy_cells = 0, stealthy_accurate_evaded = 0;
  size_t overt_cells = 0, overt_accurate = 0, overt_logged = 0;

  for (size_t s = 0; s < scenarios.size(); ++s) {
    const auto& [scenario_name, config] = scenarios[s];
    const auto& expected = expected_by_scenario[scenario_name];
    analysis::Table table(
        {"technique", "verdict", "accurate", "evaded MVR", "noise alerts"});
    for (size_t t = 0; t < techniques.size(); ++t) {
      const NamedFactory& technique = techniques[t];
      const TechniqueRun& run = runs[s * techniques.size() + t];
      auto expected_it = expected.find(technique.name);
      std::string accurate = "n/a";
      bool is_expected_cell = expected_it != expected.end();
      bool hit = false;
      if (is_expected_cell) {
        for (core::Verdict v : expected_it->second)
          if (run.report.verdict == v) hit = true;
        accurate = hit ? "yes" : "NO";
      }
      bool overt = technique.name.rfind("overt", 0) == 0;
      if (is_expected_cell) {
        if (overt) {
          ++overt_cells;
          if (hit) ++overt_accurate;
          if (!run.risk.evaded) ++overt_logged;
        } else {
          ++stealthy_cells;
          if (hit && run.risk.evaded) ++stealthy_accurate_evaded;
        }
      }
      table.add_row({technique.name,
                     std::string(core::to_string(run.report.verdict)),
                     accurate, run.risk.evaded ? "yes" : "NO",
                     analysis::Table::num(run.risk.noise_alerts)});
    }
    std::printf("censor mechanism: %s\n%s\n", scenario_name.c_str(),
                table.to_markdown().c_str());
  }

  std::printf("summary: stealthy techniques accurate AND evasive in "
              "%zu/%zu applicable cells;\n"
              "         overt baselines accurate in %zu/%zu but logged by "
              "the MVR in %zu cells\n",
              stealthy_accurate_evaded, stealthy_cells, overt_accurate,
              overt_cells, overt_logged);
  bool shape = stealthy_accurate_evaded == stealthy_cells &&
               overt_accurate == overt_cells && overt_logged > 0;
  std::printf("paper-shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
