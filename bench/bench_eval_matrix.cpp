// E2 — §3.2.2 IDS evaluation: the accuracy x evasion matrix.
//
// The paper's criterion: "We declared a measurement successful if it can
// detect blocking (as controlled by our modifications to the censorship
// system) without triggering the MVR to log its traffic." We run every
// technique against five censor configurations (keyword RST injection,
// DNS forgery, IP null-route, port block, blockpage) and report, per cell:
//   verdict    — what the technique concluded
//   accurate   — did it detect the mechanism it is designed to detect
//   evaded     — zero targeted alerts stored by the MVR for the client
// Expected shape: stealthy techniques match the overt baselines on
// accuracy for their mechanisms, but only the overt baselines get logged.
//
// Every cell is independent, so the whole matrix runs through the
// campaign runner (one trial per scenario x technique, sharded across
// hardware threads); results come back in trial order, so the tables
// print exactly as the sequential version did.
// The E25 extension (dual-stack asymmetry) appends two more sections:
// the same host probed over v4 and v6 against v4-only address rules
// (the censor's family blindness measured as a verdict gap, closed by a
// dual-stack ruleset), and the v6 extension-header evasion channel (an
// ext-header-blind censor passes keyword traffic it would RST as plain
// v6, until an upstream normalizer strips the chain).
#include <cstdio>

#include "analysis/report.hpp"
#include "bench_util.hpp"
#include "core/ping.hpp"
#include "netsim/topology.hpp"
#include "packet/packet.hpp"

using namespace sm;
using bench::NamedFactory;
using bench::TechniqueRun;

namespace {

/// One (technique, family) probe cell for the asymmetry table.
bench::ProbeFactory family_factory(const std::string& technique, bool v6) {
  if (technique == "ping") {
    return [v6](core::Testbed& tb) -> std::unique_ptr<core::Probe> {
      return std::make_unique<core::PingProbe>(
          tb, core::PingOptions{.target = tb.addr().web_blocked,
                                .ipv6 = v6});
    };
  }
  return [v6](core::Testbed& tb) -> std::unique_ptr<core::Probe> {
    return std::make_unique<core::SynReachabilityProbe>(
        tb, core::SynReachabilityOptions{.target = tb.addr().web_blocked,
                                         .port = 80,
                                         .ipv6 = v6});
  };
}

struct ExtHeaderOutcome {
  uint64_t rsts_injected = 0;
  uint64_t blind_passes = 0;
};

/// Drives one keyword-bearing v6 segment through normalizer-router →
/// censor-router → server and reports what the censor did. The
/// normalizer sits *upstream* of the tap (taps observe before their own
/// router's transformer), which is where a real deployment would put it.
ExtHeaderOutcome ext_header_run(bool with_ext, bool with_normalizer) {
  netsim::Network net;
  net.set_link_seed_root(0x9E25);
  netsim::Router* norm = net.add_router("norm");
  netsim::Router* tapr = net.add_router("tap");
  netsim::Host* client = net.add_host("c", common::Ipv4Address(10, 0, 0, 1));
  netsim::Host* server = net.add_host("s", common::Ipv4Address(10, 9, 0, 1));
  net.connect(client, norm);
  netsim::Link* core = net.connect(norm, tapr);
  net.connect(server, tapr);
  // connect() auto-routes router→attached-host (/32 and /128); the
  // inter-router hop needs explicit routes both ways, both families.
  norm->add_route(common::Cidr(server->address(), 32),
                  core->port_of(norm));
  norm->add_route6(common::Cidr6(server->address6(), 128),
                   core->port_of(norm));
  tapr->add_route(common::Cidr(client->address(), 32),
                  core->port_of(tapr));
  tapr->add_route6(common::Cidr6(client->address6(), 128),
                   core->port_of(tapr));

  censor::CensorPolicy policy;
  policy.rst_keywords = {"falun"};  // v6_ext_header_blind defaults true
  censor::CensorTap censor(policy);
  tapr->add_tap(&censor);
  if (with_normalizer) {
    norm->set_transformer([](packet::Packet& p) {
      packet::strip_ext_headers6(p);
      return true;
    });
  }

  packet::Ipv6Options opt;
  if (with_ext) {
    opt.ext.push_back({static_cast<uint8_t>(packet::IpProto::HopByHop),
                       common::Bytes{}});
  }
  common::Bytes payload =
      common::to_bytes("GET /?q=falun HTTP/1.1\r\nHost: x\r\n\r\n");
  client->send(packet::make_tcp6(client->address6(), server->address6(),
                                 40000, 80,
                                 packet::TcpFlags::kPsh |
                                     packet::TcpFlags::kAck,
                                 1, 1, payload, opt));
  net.engine().run();
  return {censor.stats().rst_packets_injected,
          censor.stats().v6_ext_blind_passes};
}

}  // namespace

int main() {
  std::printf("E2 — accuracy x evasion matrix (paper §3.2.2)\n\n");
  auto techniques = bench::standard_techniques();
  auto scenarios = bench::eval_matrix_configs();
  auto expected_by_scenario = bench::eval_matrix_expectations();

  // One trial per (scenario, technique) cell, all sharded at once.
  std::vector<campaign::Trial> trials;
  for (const auto& [name, config] : scenarios) {
    auto batch = bench::technique_trials(name, config, techniques);
    trials.insert(trials.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  }
  std::vector<TechniqueRun> runs = bench::run_campaign(trials);

  size_t stealthy_cells = 0, stealthy_accurate_evaded = 0;
  size_t overt_cells = 0, overt_accurate = 0, overt_logged = 0;

  for (size_t s = 0; s < scenarios.size(); ++s) {
    const auto& [scenario_name, config] = scenarios[s];
    const auto& expected = expected_by_scenario[scenario_name];
    analysis::Table table(
        {"technique", "verdict", "accurate", "evaded MVR", "noise alerts"});
    for (size_t t = 0; t < techniques.size(); ++t) {
      const NamedFactory& technique = techniques[t];
      const TechniqueRun& run = runs[s * techniques.size() + t];
      auto expected_it = expected.find(technique.name);
      std::string accurate = "n/a";
      bool is_expected_cell = expected_it != expected.end();
      bool hit = false;
      if (is_expected_cell) {
        for (core::Verdict v : expected_it->second)
          if (run.report.verdict == v) hit = true;
        accurate = hit ? "yes" : "NO";
      }
      bool overt = technique.name.rfind("overt", 0) == 0;
      if (is_expected_cell) {
        if (overt) {
          ++overt_cells;
          if (hit) ++overt_accurate;
          if (!run.risk.evaded) ++overt_logged;
        } else {
          ++stealthy_cells;
          if (hit && run.risk.evaded) ++stealthy_accurate_evaded;
        }
      }
      table.add_row({technique.name,
                     std::string(core::to_string(run.report.verdict)),
                     accurate, run.risk.evaded ? "yes" : "NO",
                     analysis::Table::num(run.risk.noise_alerts)});
    }
    std::printf("censor mechanism: %s\n%s\n", scenario_name.c_str(),
                table.to_markdown().c_str());
  }

  std::printf("summary: stealthy techniques accurate AND evasive in "
              "%zu/%zu applicable cells;\n"
              "         overt baselines accurate in %zu/%zu but logged by "
              "the MVR in %zu cells\n",
              stealthy_accurate_evaded, stealthy_cells, overt_accurate,
              overt_cells, overt_logged);

  // ---- E25 part 1: dual-stack family gap --------------------------------
  // The same service, probed over both families, against a censor whose
  // null-route rules only cover v4 — then against the dual-stack ruleset
  // that closes the gap. An "asymmetry" row is a technique whose v4 and
  // v6 verdicts disagree on the identical censor.
  std::printf("\nE25 — dual-stack asymmetry (v4-only rules vs v6 path)\n\n");
  core::TestbedAddresses addr;
  core::TestbedConfig v4only;
  v4only.policy =
      censor::dropping_profile({addr.web_blocked, addr.mail_blocked});
  core::TestbedConfig dual = v4only;
  dual.policy.blocked_ips6 = {common::map_v6(addr.web_blocked),
                              common::map_v6(addr.mail_blocked)};

  const std::vector<std::pair<std::string, core::TestbedConfig>> fam_configs =
      {{"v4-only-rules", v4only}, {"dual-stack-rules", dual}};
  const std::vector<std::string> fam_techniques = {"syn-reach", "ping"};
  std::vector<campaign::Trial> fam_trials;
  for (const auto& [cfg_name, cfg] : fam_configs) {
    for (const std::string& tech : fam_techniques) {
      for (bool v6 : {false, true}) {
        fam_trials.push_back(campaign::Trial{
            .name = cfg_name + "/" + tech + (v6 ? "-v6" : "-v4"),
            .config = cfg,
            .factory = family_factory(tech, v6)});
      }
    }
  }
  std::vector<TechniqueRun> fam_runs = bench::run_campaign(fam_trials);

  size_t v4only_asymmetries = 0, dual_asymmetries = 0;
  size_t dual_blocked_cells = 0;
  size_t cell = 0;
  for (size_t c = 0; c < fam_configs.size(); ++c) {
    analysis::Table table({"technique", "v4 verdict", "v6 verdict",
                           "asymmetry"});
    for (const std::string& tech : fam_techniques) {
      core::Verdict v4 = fam_runs[cell].report.verdict;
      core::Verdict v6 = fam_runs[cell + 1].report.verdict;
      cell += 2;
      bool asym = v4 != v6;
      if (asym) ++(c == 0 ? v4only_asymmetries : dual_asymmetries);
      if (c == 1) {
        if (v4 == core::Verdict::BlockedTimeout) ++dual_blocked_cells;
        if (v6 == core::Verdict::BlockedTimeout) ++dual_blocked_cells;
      }
      table.add_row({tech, std::string(core::to_string(v4)),
                     std::string(core::to_string(v6)),
                     asym ? "YES" : "no"});
    }
    std::printf("ruleset: %s\n%s\n", fam_configs[c].first.c_str(),
                table.to_markdown().c_str());
  }
  std::printf("family gap: %zu/%zu techniques see through the v4-only "
              "censor over v6; dual-stack rules close it (%zu asymmetries, "
              "%zu/%zu cells blocked)\n",
              v4only_asymmetries, fam_techniques.size(), dual_asymmetries,
              dual_blocked_cells, 2 * fam_techniques.size());

  // ---- E25 part 2: the extension-header evasion channel -----------------
  // Same keyword, same censor, three path configurations. The deployed-DPI
  // blindness (v6_ext_header_blind) lets an empty hop-by-hop header carry
  // the keyword past content inspection; the upstream normalizer restores
  // the RST.
  std::printf("\nE25 — v6 extension-header evasion (keyword \"falun\")\n\n");
  ExtHeaderOutcome plain = ext_header_run(false, false);
  ExtHeaderOutcome evading = ext_header_run(true, false);
  ExtHeaderOutcome normalized = ext_header_run(true, true);
  analysis::Table ext_table(
      {"path", "RSTs injected", "blind passes", "keyword caught"});
  auto ext_row = [&](const char* name, const ExtHeaderOutcome& o) {
    ext_table.add_row({name, analysis::Table::num(o.rsts_injected),
                       analysis::Table::num(o.blind_passes),
                       o.rsts_injected > 0 ? "yes" : "NO"});
  };
  ext_row("plain v6", plain);
  ext_row("hop-by-hop ext", evading);
  ext_row("hop-by-hop ext + upstream normalizer", normalized);
  std::printf("%s\n", ext_table.to_markdown().c_str());

  bool shape = stealthy_accurate_evaded == stealthy_cells &&
               overt_accurate == overt_cells && overt_logged > 0;
  bool family_shape = v4only_asymmetries >= 1 && dual_asymmetries == 0 &&
                      dual_blocked_cells == 2 * fam_techniques.size();
  bool ext_shape = plain.rsts_injected > 0 && plain.blind_passes == 0 &&
                   evading.rsts_injected == 0 && evading.blind_passes > 0 &&
                   normalized.rsts_injected > 0;
  std::printf("paper-shape check: %s (matrix %s, family gap %s, "
              "ext-header channel %s)\n",
              shape && family_shape && ext_shape ? "PASS" : "FAIL",
              shape ? "ok" : "FAIL", family_shape ? "ok" : "FAIL",
              ext_shape ? "ok" : "FAIL");
  return shape && family_shape && ext_shape ? 0 : 1;
}
