// E2 — §3.2.2 IDS evaluation: the accuracy x evasion matrix.
//
// The paper's criterion: "We declared a measurement successful if it can
// detect blocking (as controlled by our modifications to the censorship
// system) without triggering the MVR to log its traffic." We run every
// technique against four censor configurations (keyword RST injection,
// DNS forgery, IP null-route, port block) and report, per cell:
//   verdict    — what the technique concluded
//   accurate   — did it detect the mechanism it is designed to detect
//   evaded     — zero targeted alerts stored by the MVR for the client
// Expected shape: stealthy techniques match the overt baselines on
// accuracy for their mechanisms, but only the overt baselines get logged.
#include <cstdio>

#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace sm;
using bench::NamedFactory;
using bench::TechniqueRun;

namespace {

struct Scenario {
  std::string name;
  core::TestbedConfig config;
  /// Which verdicts count as "detected the configured blocking" per
  /// technique (empty list = technique is not expected to detect this
  /// mechanism; its cell is marked n/a).
  std::map<std::string, std::vector<core::Verdict>> expected;
};

std::vector<Scenario> scenarios() {
  using core::Verdict;
  core::TestbedAddresses addr;
  std::vector<Scenario> out;

  {
    Scenario s;
    s.name = "keyword-rst";
    s.config.policy = censor::gfc_profile();
    s.config.policy.dns_forgeries.clear();  // isolate the mechanism
    s.expected = {
        {"overt-http", {Verdict::BlockedRst}},
        {"ddos", {Verdict::BlockedRst}},
        {"mimicry-stateful", {Verdict::BlockedRst}},
    };
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "dns-forgery";
    s.config.policy = censor::gfc_profile();
    s.config.policy.rst_keywords.clear();
    s.expected = {
        {"overt-dns", {Verdict::BlockedDnsForgery}},
        {"mimicry-dns", {Verdict::BlockedDnsForgery}},
    };
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "ip-null-route";
    s.config.policy = censor::dropping_profile(
        {addr.web_blocked, addr.mail_blocked});
    s.expected = {
        {"overt-http", {Verdict::BlockedTimeout}},
        {"scan", {Verdict::BlockedTimeout}},
        {"syn-reach", {Verdict::BlockedTimeout}},
        {"spam", {Verdict::BlockedTimeout}},
        {"ddos", {Verdict::BlockedTimeout}},
    };
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "port-block-80";
    s.config.policy = censor::dropping_profile(
        {}, {{addr.web_blocked, 80}});
    s.expected = {
        {"overt-http", {Verdict::BlockedTimeout}},
        {"scan", {Verdict::BlockedTimeout}},
        {"syn-reach", {Verdict::BlockedTimeout}},
        {"ddos", {Verdict::BlockedTimeout}},
    };
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "blockpage-injection";
    s.config.policy = censor::CensorPolicy{};
    s.config.policy.blockpage_keywords = {"blocked.example"};
    s.expected = {
        {"overt-http", {Verdict::BlockedBlockpage}},
        {"ddos", {Verdict::BlockedBlockpage}},
    };
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

int main() {
  std::printf("E2 — accuracy x evasion matrix (paper §3.2.2)\n\n");
  auto techniques = bench::standard_techniques();

  size_t stealthy_cells = 0, stealthy_accurate_evaded = 0;
  size_t overt_cells = 0, overt_accurate = 0, overt_logged = 0;

  for (const Scenario& scenario : scenarios()) {
    analysis::Table table(
        {"technique", "verdict", "accurate", "evaded MVR", "noise alerts"});
    for (const NamedFactory& technique : techniques) {
      auto expected_it = scenario.expected.find(technique.name);
      TechniqueRun run = bench::run_technique(scenario.config,
                                              technique.factory,
                                              technique.name);
      std::string accurate = "n/a";
      bool is_expected_cell = expected_it != scenario.expected.end();
      bool hit = false;
      if (is_expected_cell) {
        for (core::Verdict v : expected_it->second)
          if (run.report.verdict == v) hit = true;
        accurate = hit ? "yes" : "NO";
      }
      bool overt = technique.name.rfind("overt", 0) == 0;
      if (is_expected_cell) {
        if (overt) {
          ++overt_cells;
          if (hit) ++overt_accurate;
          if (!run.risk.evaded) ++overt_logged;
        } else {
          ++stealthy_cells;
          if (hit && run.risk.evaded) ++stealthy_accurate_evaded;
        }
      }
      table.add_row({technique.name,
                     std::string(core::to_string(run.report.verdict)),
                     accurate, run.risk.evaded ? "yes" : "NO",
                     analysis::Table::num(run.risk.noise_alerts)});
    }
    std::printf("censor mechanism: %s\n%s\n", scenario.name.c_str(),
                table.to_markdown().c_str());
  }

  std::printf("summary: stealthy techniques accurate AND evasive in "
              "%zu/%zu applicable cells;\n"
              "         overt baselines accurate in %zu/%zu but logged by "
              "the MVR in %zu cells\n",
              stealthy_accurate_evaded, stealthy_cells, overt_accurate,
              overt_cells, overt_logged);
  bool shape = stealthy_accurate_evaded == stealthy_cells &&
               overt_accurate == overt_cells && overt_logged > 0;
  std::printf("paper-shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
