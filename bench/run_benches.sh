#!/usr/bin/env bash
# Builds Release and runs the perf-tracked benches, writing their JSON
# reports at the repo root (BENCH_*.json) so the trajectory is visible
# across PRs. Usage: bench/run_benches.sh [build-dir]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-release}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j --target bench_ids_fastpath

"$BUILD/bench/bench_ids_fastpath" "$ROOT/BENCH_ids_fastpath.json"
