#!/usr/bin/env bash
# Builds Release and runs every bench_* target, leaving one BENCH_*.json
# per bench at the repo root so the perf/behaviour trajectory is visible
# across PRs.
#
#   bench/run_benches.sh [build-dir]
#
# Three bench flavours, three JSON paths:
#   - bench_ids_fastpath writes its own timing JSON (perf-tracked);
#   - bench_micro is google-benchmark and uses --benchmark_out;
#   - the report-style benches (E1..E15 experiment drivers) print text,
#     which gets wrapped as {"bench","exit_code","output"} via jq.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-release}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j

failures=0
for exe in "$BUILD"/bench/bench_*; do
  [ -x "$exe" ] || continue
  name="$(basename "$exe")"
  short="${name#bench_}"
  out="$ROOT/BENCH_${short}.json"
  echo "=== $name -> $(basename "$out")"
  case "$name" in
    bench_ids_fastpath)
      "$exe" "$out"
      ;;
    bench_micro)
      "$exe" --benchmark_out="$out" --benchmark_out_format=json \
             --benchmark_min_time=0.05s
      ;;
    *)
      # Report-style bench: capture stdout; non-zero exit is recorded,
      # not fatal, so one broken experiment doesn't hide the others.
      rc=0
      text="$("$exe" 2>&1)" || rc=$?
      printf '%s' "$text" |
        jq -Rs --arg bench "$name" --argjson rc "$rc" \
           '{bench: $bench, exit_code: $rc, output: .}' > "$out"
      if [ "$rc" -ne 0 ]; then
        echo "!!! $name exited $rc" >&2
        failures=$((failures + 1))
      fi
      ;;
  esac
done

echo
echo "wrote $(ls "$ROOT"/BENCH_*.json | wc -l) BENCH_*.json files, $failures failure(s)"
exit "$([ "$failures" -eq 0 ] && echo 0 || echo 1)"
