#!/usr/bin/env bash
# Builds Release and runs every bench_* target, leaving one BENCH_*.json
# per bench at the repo root so the perf/behaviour trajectory is visible
# across PRs.
#
#   bench/run_benches.sh [build-dir]
#
# Three bench flavours, three JSON paths:
#   - bench_ids_fastpath / bench_campaign_scaling write their own timing
#     JSON (perf-tracked);
#   - bench_micro is google-benchmark and uses --benchmark_out;
#   - the report-style benches (E1..E15 experiment drivers) print text,
#     which gets wrapped as {"bench","exit_code","output"} via jq.
#
# On a ≥4-core machine the campaign-scaling numbers are gated: -j4 must
# be ≥2.0x over -j1 for BOTH backends (thread pool and forked process
# shards), so an accidental global lock that serializes the worker pool
# — or a controller pipe bottleneck — fails the bench run instead of
# silently landing.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-release}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j

failures=0
for exe in "$BUILD"/bench/bench_*; do
  [ -x "$exe" ] || continue
  name="$(basename "$exe")"
  short="${name#bench_}"
  out="$ROOT/BENCH_${short}.json"
  [ "$name" = bench_campaign_scaling ] && out="$ROOT/BENCH_campaign.json"
  echo "=== $name -> $(basename "$out")"
  case "$name" in
    bench_ids_fastpath)
      "$exe" "$out"
      # Auto cutover must match or beat the best fixed mode at every
      # ruleset scale (0.95: run-to-run timing noise allowance).
      if ! jq -e 'all(.results[];
                      .auto_pps >= (([.linear_pps, .fastpath_pps] | max)
                                    * 0.95))' "$out" > /dev/null; then
        echo "!!! auto match mode slower than the best fixed mode" >&2
        failures=$((failures + 1))
      fi
      ;;
    bench_event_core)
      rc=0
      "$exe" "$out" || rc=$?
      if [ "$rc" -ne 0 ]; then
        echo "!!! $name exited $rc (event-core gates failed)" >&2
        failures=$((failures + 1))
      fi
      # The wheel must beat (or match) the heap's steady-state
      # schedule-one/run-one cycle at every pending-count scale. The
      # cold-burst contrast (insert everything, then drain) only favors
      # the wheel from ~1e5 pending up — below that the heap's tight
      # push/pop loop wins on constants (see DESIGN §6.2) — so the burst
      # gate applies only at the scales the wheel exists to serve.
      if ! jq -e 'all(.event_queue[]; .hold_speedup >= 1.0)' "$out" \
           > /dev/null; then
        echo "!!! timer wheel steady-state slower than the binary heap" >&2
        failures=$((failures + 1))
      fi
      if ! jq -e 'all(.event_queue[] | select(.pending >= 100000);
                      .burst_speedup >= 1.0)' "$out" > /dev/null; then
        echo "!!! timer wheel burst path slower than the heap at scale" >&2
        failures=$((failures + 1))
      fi
      if ! jq -e '.hop_copies == 0' "$out" > /dev/null; then
        echo "!!! packet forwarding made payload copies" >&2
        failures=$((failures + 1))
      fi
      ;;
    bench_campaign_scaling)
      "$exe" "$out"
      # The bench only emits speedup_4x when the machine really has >=4
      # cores (otherwise it records a skip note instead), so the gate
      # checks for the field's presence rather than re-probing nproc.
      if jq -e 'has("speedup_4x")' "$out" > /dev/null; then
        speedup="$(jq -r '.speedup_4x' "$out")"
        if ! jq -e '.speedup_4x >= 2.0' "$out" > /dev/null; then
          echo "!!! campaign -j4 speedup ${speedup}x < 2.0x on a" \
               "$(nproc)-core machine: worker pool is serialized" >&2
          failures=$((failures + 1))
        fi
      else
        echo "    ($(jq -r '.speedup_skipped | join("; ")' "$out"))"
      fi
      # Same floor for the process-shard backend (the sm-campaignd
      # substrate): forked workers must actually run in parallel, not
      # serialize through the controller pipe.
      if jq -e 'has("proc_speedup_4x")' "$out" > /dev/null; then
        proc_speedup="$(jq -r '.proc_speedup_4x' "$out")"
        if ! jq -e '.proc_speedup_4x >= 2.0' "$out" > /dev/null; then
          echo "!!! campaign process-shard -j4 speedup ${proc_speedup}x" \
               "< 2.0x on a $(nproc)-core machine: shards serialized" >&2
          failures=$((failures + 1))
        fi
      fi
      if ! jq -e '.deterministic == true' "$out" > /dev/null; then
        echo "!!! campaign reports differ across -j/shard/backend" >&2
        failures=$((failures + 1))
      fi
      ;;
    bench_impairment)
      # Writes its own JSON (the false-verdict curve); the exit code is
      # the E19 gate (0% loss matches E2; no false "blocked" up to the
      # documented loss ceiling; null-route still detected at ceiling).
      rc=0
      "$exe" "$out" || rc=$?
      if [ "$rc" -ne 0 ]; then
        echo "!!! $name exited $rc (verdicts degraded under impairment)" >&2
        failures=$((failures + 1))
      fi
      ;;
    bench_population)
      # Writes its own JSON; the exit code carries the E23 gates
      # (hop throughput, probe attribution, population anchors, replica
      # determinism).
      rc=0
      "$exe" "$out" || rc=$?
      if [ "$rc" -ne 0 ]; then
        echo "!!! $name exited $rc (population gates failed)" >&2
        failures=$((failures + 1))
      fi
      ;;
    bench_simcheck)
      # Writes its own JSON (throughput + fault-detection gates); the
      # exit code is the E20 gate (all oracles green, -j1/-j4 byte
      # identity, both sabotages caught, shrunk reproducers <= 6
      # elements).
      rc=0
      "$exe" "$out" || rc=$?
      if [ "$rc" -ne 0 ]; then
        echo "!!! $name exited $rc (simcheck gates failed)" >&2
        failures=$((failures + 1))
      fi
      ;;
    bench_micro)
      # Plain double: the packaged google-benchmark predates the "0.05s"
      # duration syntax and rejects it, aborting the whole bench run.
      "$exe" --benchmark_out="$out" --benchmark_out_format=json \
             --benchmark_min_time=0.05
      ;;
    *)
      # Report-style bench: capture stdout; non-zero exit is recorded,
      # not fatal, so one broken experiment doesn't hide the others.
      rc=0
      text="$("$exe" 2>&1)" || rc=$?
      printf '%s' "$text" |
        jq -Rs --arg bench "$name" --argjson rc "$rc" \
           '{bench: $bench, exit_code: $rc, output: .}' > "$out"
      if [ "$rc" -ne 0 ]; then
        echo "!!! $name exited $rc" >&2
        failures=$((failures + 1))
      fi
      ;;
  esac
done

echo
echo "wrote $(ls "$ROOT"/BENCH_*.json | wc -l) BENCH_*.json files, $failures failure(s)"
exit "$([ "$failures" -eq 0 ] && echo 0 || echo 1)"
