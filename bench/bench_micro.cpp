// E9 — component microbenchmarks (google-benchmark).
//
// These characterize the implementation, not the paper's testbed: packet
// codec throughput, checksums, BMH content matching, DNS wire codec, IDS
// rule evaluation with and without reassembly, flow-table updates, and
// raw event-loop throughput.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "ids/engine.hpp"
#include "netsim/engine.hpp"
#include "netsim/topology.hpp"
#include "packet/checksum.hpp"
#include "packet/fragment.hpp"
#include "packet/packet.hpp"
#include "proto/dns/message.hpp"
#include "spamfilter/corpus.hpp"
#include "spamfilter/scorer.hpp"
#include "surveillance/rules.hpp"

using namespace sm;
using common::Ipv4Address;
using packet::TcpFlags;

namespace {

common::Bytes make_payload(size_t n) {
  common::Rng rng(1);
  common::Bytes out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.bounded(256));
  return out;
}

void BM_PacketEncodeTcp(benchmark::State& state) {
  auto payload = make_payload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto p = packet::make_tcp(Ipv4Address(10, 0, 0, 1),
                              Ipv4Address(192, 0, 2, 1), 1234, 80,
                              TcpFlags::kAck, 1, 2, payload);
    benchmark::DoNotOptimize(p.data().data());
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          (int64_t(payload.size()) + 40));
}
BENCHMARK(BM_PacketEncodeTcp)->Arg(64)->Arg(512)->Arg(1460);

void BM_PacketDecode(benchmark::State& state) {
  auto payload = make_payload(static_cast<size_t>(state.range(0)));
  auto p = packet::make_tcp(Ipv4Address(10, 0, 0, 1),
                            Ipv4Address(192, 0, 2, 1), 1234, 80,
                            TcpFlags::kAck, 1, 2, payload);
  for (auto _ : state) {
    auto d = packet::decode(p.data());
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(p.size()));
}
BENCHMARK(BM_PacketDecode)->Arg(64)->Arg(1460);

void BM_InternetChecksum(benchmark::State& state) {
  auto data = make_payload(static_cast<size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(packet::internet_checksum(data));
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1460)->Arg(65536);

void BM_BmhMatch(benchmark::State& state) {
  auto hay = make_payload(static_cast<size_t>(state.range(0)));
  ids::PatternMatcher matcher("needle-not-present", true);
  for (auto _ : state) benchmark::DoNotOptimize(matcher.find(hay));
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_BmhMatch)->Arg(256)->Arg(1460)->Arg(16384);

void BM_DnsEncodeDecode(benchmark::State& state) {
  using namespace proto::dns;
  Message m = Message::query(1, Name("mail.blocked.example.com"),
                             RecordType::MX);
  m.header.qr = true;
  m.answers.push_back(ResourceRecord::mx(Name("mail.blocked.example.com"),
                                         10, Name("mx1.example.com")));
  m.answers.push_back(
      ResourceRecord::a(Name("mx1.example.com"), Ipv4Address(1, 2, 3, 4)));
  for (auto _ : state) {
    auto wire = encode(m);
    auto back = decode(wire);
    benchmark::DoNotOptimize(back);
  }
}
BENCHMARK(BM_DnsEncodeDecode);

void BM_IdsEngineCleanTraffic(benchmark::State& state) {
  ids::Engine engine(surveillance::community_ruleset());
  auto payload = make_payload(1000);
  auto p = packet::make_tcp(Ipv4Address(10, 0, 0, 1),
                            Ipv4Address(192, 0, 2, 1), 1234, 8080,
                            TcpFlags::kAck, 1, 2, payload);
  auto d = *packet::decode(p.data());
  int64_t t = 0;
  for (auto _ : state) {
    auto v = engine.process(common::SimTime(t += 1000), d);
    benchmark::DoNotOptimize(v);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(p.size()));
}
BENCHMARK(BM_IdsEngineCleanTraffic);

void BM_IdsEngineKeywordHit(benchmark::State& state) {
  ids::Engine engine = ids::Engine::from_text(
      "reject tcp any any -> any any (content:\"falun\"; nocase; sid:1;)");
  common::Bytes payload =
      common::to_bytes("GET /search?q=falun HTTP/1.1\r\n\r\n");
  auto p = packet::make_tcp(Ipv4Address(10, 0, 0, 1),
                            Ipv4Address(192, 0, 2, 1), 1234, 80,
                            TcpFlags::kAck, 1, 2, payload);
  auto d = *packet::decode(p.data());
  int64_t t = 0;
  for (auto _ : state) {
    auto v = engine.process(common::SimTime(t += 1000), d);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_IdsEngineKeywordHit);

void BM_FlowTableUpdate(benchmark::State& state) {
  ids::FlowTable table;
  common::Rng rng(3);
  std::vector<std::pair<common::Bytes, packet::Decoded>> packets;
  for (int i = 0; i < 256; ++i) {
    auto p = packet::make_tcp(
        Ipv4Address(static_cast<uint32_t>(0x0A000000 + rng.bounded(64))),
        Ipv4Address(192, 0, 2, 1),
        static_cast<uint16_t>(1024 + rng.bounded(1024)), 80,
        TcpFlags::kAck, static_cast<uint32_t>(i) * 100, 1,
        make_payload(100));
    auto wire = p.data();
    auto d = *packet::decode(wire);
    packets.emplace_back(std::move(wire), d);
    // Re-decode against the stored buffer so spans stay valid.
    packets.back().second = *packet::decode(packets.back().first);
  }
  int64_t t = 0;
  size_t i = 0;
  for (auto _ : state) {
    auto fc = table.update(common::SimTime(t += 1000),
                           packets[i++ % packets.size()].second);
    benchmark::DoNotOptimize(fc);
  }
}
BENCHMARK(BM_FlowTableUpdate);

// Event-queue scaling: enqueue N uniformly-distributed deadlines, then
// drain. The timer wheel must hold its per-event cost flat as the
// pending count grows (the heap's log N comparisons + std::function
// swaps did not).
void BM_EventQueuePending(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  common::Rng rng(7);
  std::vector<common::Duration> delays;
  delays.reserve(n);
  for (size_t i = 0; i < n; ++i)
    delays.push_back(common::Duration(
        static_cast<int64_t>(rng.bounded(10'000'000'000ull))));
  for (auto _ : state) {
    netsim::Engine engine;
    uint64_t fired = 0;
    for (size_t i = 0; i < n; ++i)
      engine.schedule(delays[i], [&fired] { ++fired; });
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_EventQueuePending)
    ->Arg(1'000)
    ->Arg(10'000)
    ->Arg(100'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

// Per-hop packet delivery through host -> router -> host, with and
// without an observing tap on the router. The zero-copy contract says
// the tap costs one decode-borrowed view, never a payload copy.
void BM_RouterHopDelivery(benchmark::State& state) {
  class ObserveTap : public netsim::Tap {
   public:
    netsim::TapDecision process(const netsim::TapContext& ctx,
                                netsim::Router&) override {
      bytes += ctx.pkt.wire().size();
      return netsim::TapDecision::Pass;
    }
    uint64_t bytes = 0;
  };
  netsim::Network net;
  netsim::Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  netsim::Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  netsim::Router* r = net.add_router("r");
  net.connect(a, r,
              netsim::LinkConfig{common::Duration::micros(10), 0, 0.0});
  net.connect(b, r,
              netsim::LinkConfig{common::Duration::micros(10), 0, 0.0});
  ObserveTap tap;
  if (state.range(0)) r->add_tap(&tap);
  uint64_t delivered = 0;
  b->udp_bind(9000, [&](const packet::Decoded&, std::span<const uint8_t>) {
    ++delivered;
  });
  common::Bytes payload = make_payload(512);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      a->send_udp(b->address(), 1234, 9000, payload);
    net.run_for(common::Duration::millis(1));
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(int64_t(state.iterations()) * 64);
}
BENCHMARK(BM_RouterHopDelivery)->Arg(0)->Arg(1);

void BM_EventLoopThroughput(benchmark::State& state) {
  for (auto _ : state) {
    netsim::Engine engine;
    int counter = 0;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule(common::Duration::micros(i), [&counter] {
        ++counter;
      });
    }
    engine.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * 1000);
}
BENCHMARK(BM_EventLoopThroughput);

void BM_StreamReassembly(benchmark::State& state) {
  for (auto _ : state) {
    ids::StreamBuffer sb(64 * 1024);
    sb.set_base(0);
    auto chunk = make_payload(1460);
    // In-order fill followed by an out-of-order tail merge.
    for (uint32_t seq = 0; seq < 20 * 1460; seq += 1460)
      sb.add_segment(seq + 1460, chunk);  // gap at 0..1460
    sb.add_segment(0, chunk);             // fill the gap, merge all
    benchmark::DoNotOptimize(sb.contiguous().data());
  }
}
BENCHMARK(BM_StreamReassembly);

void BM_FragmentRoundTrip(benchmark::State& state) {
  auto payload = make_payload(static_cast<size_t>(state.range(0)));
  packet::IpOptions opt;
  opt.dont_fragment = false;
  opt.identification = 9;
  packet::Packet p = packet::make_udp(Ipv4Address(10, 0, 0, 1),
                                      Ipv4Address(10, 0, 0, 2), 1, 2,
                                      payload, opt);
  for (auto _ : state) {
    auto frags = packet::fragment(p, 1500);
    packet::Reassembler reassembler;
    std::optional<packet::Packet> whole;
    for (const auto& f : frags)
      whole = reassembler.add(common::SimTime(0), f.data());
    benchmark::DoNotOptimize(whole);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_FragmentRoundTrip)->Arg(4000)->Arg(16000)->Arg(64000);

void BM_SpamScore(benchmark::State& state) {
  spamfilter::Scorer scorer;
  common::Rng rng(5);
  std::string message =
      spamfilter::make_spam_measurement_email(rng, "blocked.example");
  for (auto _ : state) {
    auto report = scorer.score_raw(message);
    benchmark::DoNotOptimize(report.score);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) *
                          int64_t(message.size()));
}
BENCHMARK(BM_SpamScore);

}  // namespace

BENCHMARK_MAIN();
