// E10 — ablation of the surveillance model's selectivity knobs.
//
// §2.2 argues the techniques work because surveillance must be selective.
// This bench turns the selectivity down and watches the safety margin
// erode: (a) sweep the analyst's investigation threshold — at what point
// would each technique's residue get a user investigated? (b) sweep the
// content-retention fraction — how much more attributable content does a
// less-constrained (better-funded) surveillance system accumulate?
#include <cstdio>

#include "analysis/report.hpp"
#include "bench_util.hpp"

using namespace sm;

int main() {
  std::printf("E10 — risk vs. surveillance selectivity (ablation)\n\n");

  // (a) Suspicion left behind by each technique, against descending
  // investigation thresholds.
  std::printf("(a) analyst threshold sweep — 'inv@T' = would the client "
              "be investigated at threshold T\n\n");
  analysis::Table table({"technique", "suspicion", "inv@10 (default)",
                         "inv@1", "inv@0.1", "evaded"});
  core::TestbedConfig config;
  config.policy = censor::gfc_profile();
  config.policy.blocked_ips.push_back(
      core::TestbedAddresses{}.mail_blocked);

  // Every (technique, threshold) cell is independent — run the whole
  // suite through the campaign runner at once.
  auto techniques = bench::standard_techniques();
  std::vector<bench::TechniqueRun> runs =
      bench::run_campaign(bench::technique_trials("", config, techniques));

  bool stealth_survives_default = true;
  bool overt_flagged_somewhere = false;
  for (size_t i = 0; i < techniques.size(); ++i) {
    const auto& technique = techniques[i];
    const bench::TechniqueRun& run = runs[i];
    bool inv10 = run.risk.suspicion >= 10.0;
    bool inv1 = run.risk.suspicion >= 1.0;
    bool inv01 = run.risk.suspicion >= 0.1;
    bool overt = technique.name.rfind("overt", 0) == 0;
    if (!overt && inv10) stealth_survives_default = false;
    if (overt && inv01) overt_flagged_somewhere = true;
    table.add_row({technique.name,
                   analysis::Table::num(run.risk.suspicion),
                   inv10 ? "YES" : "no", inv1 ? "YES" : "no",
                   inv01 ? "YES" : "no",
                   run.risk.evaded ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  // (b) Retention-fraction sweep: a surveillance system that can afford
  // to keep more content attributes more bytes to the client.
  std::printf("(b) content-retention sweep (storage budget ablation)\n\n");
  analysis::Table retention({"retention fraction", "client content bytes "
                             "retained", "client suspicion"});
  const std::vector<double> fractions = {0.075, 0.25, 0.50, 1.00};
  std::vector<campaign::Trial> sweep;
  for (double fraction : fractions) {
    core::TestbedConfig cfg;
    cfg.policy = censor::gfc_profile();
    cfg.mvr.content_retention_fraction = fraction;
    sweep.push_back(campaign::Trial{
        .name = "ddos@" + analysis::Table::pct(fraction),
        .config = cfg,
        .factory = [](core::Testbed& tb) {
          return std::make_unique<core::DdosProbe>(
              tb,
              core::DdosOptions{.domain = "open.example", .requests = 30});
        }});
  }
  std::vector<bench::TechniqueRun> sweep_runs = bench::run_campaign(sweep);
  for (size_t i = 0; i < fractions.size(); ++i) {
    const bench::TechniqueRun& run = sweep_runs[i];
    retention.add_row({analysis::Table::pct(fractions[i]),
                       analysis::Table::num(run.risk.suspicion /
                                            0.5 * 1024 * 1024),
                       analysis::Table::num(run.risk.suspicion)});
  }
  std::printf("%s\n", retention.to_markdown().c_str());

  std::printf("reading: at the paper's constraints (7.5%% retention, "
              "costly analysts) every stealthy technique stays below the "
              "action threshold;\nremove the constraints and residual "
              "suspicion accumulates — the safety is conditional, exactly "
              "as §7 warns.\n");
  bool shape = stealth_survives_default && overt_flagged_somewhere;
  std::printf("\npaper-shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
