// E12 — ablation: IP-fragmentation evasion of the keyword censor
// (Khattak et al. [26], cited by the paper for censorship-monitor
// reassembly limits).
//
// A keyword-bearing request is IP-fragmented at descending MTUs and sent
// through the censor twice: fragment-blind (the historical posture the
// evasion literature exploits) and with virtual defragmentation. The
// table shows exactly when the keyword stops being visible to a
// fragment-blind censor — and that defragmentation closes the hole at
// the cost of per-datagram reassembly state.
#include <cstdio>

#include "analysis/report.hpp"
#include "core/probe.hpp"
#include "core/testbed.hpp"
#include "packet/fragment.hpp"

using namespace sm;

namespace {

struct Outcome {
  size_t fragments = 0;
  bool caught = false;
};

Outcome run(size_t mtu, bool defrag) {
  core::TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.reassemble_ip_fragments = defrag;
  core::Testbed tb(cfg);

  std::string req = "GET /search?q=falun HTTP/1.1\r\nHost: x\r\n\r\n";
  packet::IpOptions opt;
  opt.dont_fragment = false;
  opt.identification = 4242;
  packet::Packet p = packet::make_tcp(
      tb.addr().client, tb.addr().web_blocked, 5555, 80,
      packet::TcpFlags::kAck, 1000, 1, common::to_bytes(req), opt);
  auto frags = packet::fragment(p, mtu);
  Outcome out;
  out.fragments = frags.size();
  for (auto& f : frags) tb.client->send(std::move(f));
  tb.run_for(common::Duration::millis(100));
  out.caught = tb.censor_tap->stats().rst_bursts > 0;
  return out;
}

}  // namespace

int main() {
  std::printf("E12 — keyword visibility under IP fragmentation "
              "(keyword \"falun\" at TCP payload offset 13)\n\n");

  analysis::Table table({"MTU (bytes)", "fragments", "fragment-blind "
                         "censor caught it", "defragmenting censor "
                         "caught it"});
  bool evasion_exists = false, defrag_always_catches = true;
  bool unfragmented_caught = false;
  for (size_t mtu : {1500, 120, 80, 56, 48}) {
    Outcome blind = run(mtu, false);
    Outcome defrag = run(mtu, true);
    if (!blind.caught && blind.fragments > 1) evasion_exists = true;
    if (!defrag.caught) defrag_always_catches = false;
    if (blind.fragments == 1 && blind.caught) unfragmented_caught = true;
    table.add_row({analysis::Table::num(uint64_t(mtu)),
                   analysis::Table::num(uint64_t(blind.fragments)),
                   blind.caught ? "yes" : "NO (evaded)",
                   defrag.caught ? "yes" : "NO"});
  }
  std::printf("%s\n", table.to_markdown().c_str());
  std::printf("reading: once the keyword straddles a fragment boundary, a "
              "fragment-blind censor goes dark;\nvirtual defragmentation "
              "restores detection at every MTU.\n");
  bool shape = evasion_exists && defrag_always_catches &&
               unfragmented_caught;
  std::printf("\npaper-shape check: %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
