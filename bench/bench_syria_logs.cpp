// E5 — §2.2's Syria statistic: "An analysis of two days of leaked
// censorship log files from Syria shows that 1.57% of the population
// accessed at least one censored site, far too many people for the
// surveillance system to pursue" (Chaabane et al. [9]).
//
// We regenerate the statistic from a parameterized population model
// (Zipf site popularity, log-normal user activity) instead of hard-coding
// it: the calibrated row lands near 1.57%, and the sweep shows how the
// fraction scales with censored-content popularity and user activity —
// the knob that makes "alert on every censored query" infeasible.
#include <cstdio>

#include "analysis/population.hpp"
#include "analysis/report.hpp"
#include "analysis/syria.hpp"

using namespace sm;
using namespace sm::analysis;

namespace {

struct Result {
  double censored_user_fraction;
  double censored_request_fraction;
  uint64_t requests;
  size_t users;
  size_t touchers;
};

Result run(size_t users, size_t sites, size_t censored_sites,
           size_t min_rank, double mean_requests) {
  common::Rng rng(2015);
  auto catalog = make_site_catalog(rng, sites, censored_sites, min_rank);
  PopulationConfig cfg;
  cfg.users = users;
  cfg.mean_requests_per_user = mean_requests;
  cfg.window = common::Duration::days(2);
  LogAnalyzer analyzer;
  generate_population_log(cfg, catalog,
                          [&](const LogRecord& r) { analyzer.add(r); });
  return Result{analyzer.censored_user_fraction(),
                analyzer.censored_request_fraction(),
                analyzer.total_requests(), analyzer.unique_users(),
                analyzer.users_touching_censored()};
}

}  // namespace

int main() {
  std::printf("E5 — fraction of population touching censored content in a "
              "2-day log (paper anchor: 1.57%%)\n\n");

  analysis::Table table({"users", "censored sites (of 5000)", "min rank",
                         "req/user", "requests", "touching users",
                         "fraction", "note"});
  struct Row {
    size_t users, censored, min_rank;
    double mean_req;
    const char* note;
  };
  // The middle row is the calibrated reproduction of the paper's number.
  std::vector<Row> rows = {
      {10000, 40, 100, 50, "popular censored content"},
      {10000, 10, 1500, 35, "calibrated ~= paper's 1.57%"},
      {10000, 4, 3000, 35, "deep unpopular censored content"},
      {2000, 10, 1500, 35, "smaller population, same model"},
      {50000, 10, 1500, 35, "larger population, same model"},
      {10000, 10, 1500, 120, "heavier users touch more"},
  };
  double calibrated = 0.0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    Result res = run(r.users, 5000, r.censored, r.min_rank, r.mean_req);
    if (i == 1) calibrated = res.censored_user_fraction;
    table.add_row({Table::num(uint64_t(r.users)),
                   Table::num(uint64_t(r.censored)),
                   Table::num(uint64_t(r.min_rank)),
                   Table::num(r.mean_req), Table::num(res.requests),
                   Table::num(uint64_t(res.touchers)),
                   Table::pct(res.censored_user_fraction), r.note});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  std::printf("calibrated fraction: %.2f%% (paper: 1.57%%)\n",
              calibrated * 100.0);
  std::printf("reading: even at ~1.5%%, that is %d people per 10k users — "
              "no analyst pursues them all,\nwhich is why censored-access "
              "alerts carry near-zero analyst weight in the MVR model.\n",
              int(calibrated * 10000));
  bool shape = calibrated > 0.005 && calibrated < 0.05;
  std::printf("\npaper-shape check (calibrated row within [0.5%%, 5%%] "
              "bracketing 1.57%%): %s\n", shape ? "PASS" : "FAIL");
  return shape ? 0 : 1;
}
