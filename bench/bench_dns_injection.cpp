// E3 — §3.2.3 GFC DNS injection validation.
//
// Paper: "We verified that the Great Firewall of China (GFC) injected bad
// A DNS responses for both A and MX requests for twitter.com and
// youtube.com." We reproduce the exact experiment: A and MX queries for
// both names (plus controls) through the GFC-profile censor, and check
// that the answer is the forged address for censored names and the true
// record for controls.
#include <cstdio>

#include "analysis/report.hpp"
#include "core/overt.hpp"
#include "core/probe.hpp"

using namespace sm;

int main() {
  std::printf("E3 — GFC DNS injection: bad A answers for A and MX "
              "queries (paper §3.2.3)\n\n");

  const common::Ipv4Address forged(8, 7, 198, 45);
  struct Case {
    std::string domain;
    proto::dns::RecordType type;
    bool expect_forged;
  };
  std::vector<Case> cases = {
      {"twitter.com", proto::dns::RecordType::A, true},
      {"twitter.com", proto::dns::RecordType::MX, true},
      {"youtube.com", proto::dns::RecordType::A, true},
      {"youtube.com", proto::dns::RecordType::MX, true},
      {"open.example", proto::dns::RecordType::A, false},
      {"open.example", proto::dns::RecordType::MX, false},
  };

  analysis::Table table({"qname", "qtype", "first A in answer",
                         "forged?", "expected"});
  bool all_ok = true;
  for (const Case& c : cases) {
    core::TestbedConfig config;
    config.policy = censor::gfc_profile(forged);
    core::Testbed tb(config);

    std::optional<proto::dns::QueryResult> result;
    tb.resolver->query(proto::dns::Name(c.domain), c.type,
                       [&](const proto::dns::QueryResult& r) { result = r; });
    tb.run_until([&]() { return result.has_value(); });

    std::string answer = "(none)";
    bool is_forged = false;
    if (result && result->response) {
      if (auto a = result->response->first_a()) {
        answer = a->to_string();
        is_forged = *a == forged;
      }
    }
    bool ok = is_forged == c.expect_forged;
    all_ok = all_ok && ok;
    table.add_row({c.domain, to_string(c.type), answer,
                   is_forged ? "YES" : "no",
                   c.expect_forged ? "forged" : "genuine"});
  }
  std::printf("%s\n", table.to_markdown().c_str());
  std::printf("paper-shape check (forged A for both qtypes of both "
              "censored names): %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
