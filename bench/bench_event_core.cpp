// Event-core bench: the hierarchical timer wheel (netsim::Engine) versus
// the binary heap it replaced, plus the zero-copy packet pipeline.
//
// Part 1 measures the queue at 10^3..10^6 pending events against a
// reference binary-heap engine (the pre-PR6 implementation, inlined
// here so the comparison survives the heap's removal), in two regimes:
//   - burst: enqueue everything, then drain — the bulk-load corner,
//     where a fully cache-resident heap is genuinely hard to beat at
//     small n;
//   - hold: steady-state churn at constant pending count (each fired
//     event schedules a successor), the classic DES queue workload and
//     the one the netsim actually runs — every packet hop pops one
//     event and pushes the next.
// The gates reflect that: hold speedup >= 1 at EVERY scale, burst
// speedup >= 1 from 10^5 pending up (below that the JSON still records
// the delta, it just isn't gated).
// Part 2 pushes UDP datagrams through a host-router-host path with and
// without taps and reads the packet copy counters — the forwarding hop
// must make zero payload copies.
//
// Emits a table on stdout and a JSON report (default
// BENCH_event_core.json, or argv[1]). `--smoke` shrinks the workload
// for ci.sh's perf-smoke stage (fewer scales/reps; same JSON shape, so
// tools/perf_smoke.py can diff it against the checked-in baseline).
// Exit code gates:
//   - wheel events/sec >= heap events/sec at every pending-count scale;
//   - CopySite::Hop == 0 after every pipeline configuration.
#include <chrono>
#include <cstdio>
#include <functional>
#include <queue>
#include <string_view>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "netsim/topology.hpp"
#include "obs/provenance.hpp"
#include "packet/copy_stats.hpp"
#include "packet/packet.hpp"

using namespace sm;
using common::Duration;
using common::Ipv4Address;
using common::Rng;
using common::SimTime;

namespace {

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

/// The engine the timer wheel replaced: a binary heap over (when, seq),
/// kept bit-for-bit faithful to the old dispatch loop so the comparison
/// measures the data structure, not incidental API differences.
class HeapEngine {
 public:
  using Action = std::function<void()>;

  void schedule(Duration delay, Action action) {
    queue_.push(Event{now_ + delay, next_seq_++, std::move(action)});
  }
  size_t run(size_t max_events = SIZE_MAX) {
    size_t n = 0;
    while (!queue_.empty() && n < max_events) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.when;
      ev.action();
      ++n;
    }
    return n;
  }
  SimTime now() const { return now_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_{};
  uint64_t next_seq_ = 0;
};

/// One timed pass: enqueue `n` events with deadlines uniform over a 10s
/// horizon, then drain. Returns {enqueue_s, dispatch_s}.
template <typename Engine>
std::pair<double, double> time_workload(size_t n, uint64_t seed) {
  Engine engine;
  Rng rng(seed);
  // Pre-draw delays so RNG cost stays out of the enqueue timing.
  std::vector<Duration> delays;
  delays.reserve(n);
  for (size_t i = 0; i < n; ++i)
    delays.push_back(Duration(
        static_cast<int64_t>(rng.bounded(10'000'000'000ull))));

  uint64_t fired = 0;
  auto t0 = clock_type::now();
  for (size_t i = 0; i < n; ++i)
    engine.schedule(delays[i], [&fired] { ++fired; });
  double enqueue_s = seconds_since(t0);

  auto t1 = clock_type::now();
  engine.run();
  double dispatch_s = seconds_since(t1);
  if (fired != n) {
    std::fprintf(stderr, "BUG: %llu of %zu events fired\n",
                 static_cast<unsigned long long>(fired), n);
    std::exit(2);
  }
  return {enqueue_s, dispatch_s};
}

/// Steady-state hold: `n` events pending throughout; every fired event
/// schedules its successor at now + Exp(mean 100us) — link-latency
/// scale, like the netsim's own traffic. Times 3n pop+push pairs.
template <typename Engine>
double hold_workload(size_t n, uint64_t seed) {
  Engine engine;
  Rng rng(seed);
  constexpr double kMeanNs = 100'000.0;
  std::function<void()> churn = [&engine, &rng, &churn] {
    engine.schedule(
        Duration(static_cast<int64_t>(rng.exponential(1.0 / kMeanNs))),
        churn);
  };
  for (size_t i = 0; i < n; ++i)
    engine.schedule(
        Duration(static_cast<int64_t>(rng.bounded(200'000))), churn);
  size_t total = 3 * n;
  auto t0 = clock_type::now();
  engine.run(total);
  return static_cast<double>(total) / seconds_since(t0);
}

/// Best-of-`reps` events/sec — min-time repetition suppresses scheduler
/// noise on small machines.
struct QueueTiming {
  double enqueue_eps = 0;
  double dispatch_eps = 0;
  double total_eps = 0;
  double hold_eps = 0;
};

template <typename Engine>
QueueTiming best_of(size_t n, int reps) {
  QueueTiming best;
  for (int r = 0; r < reps; ++r) {
    auto [enq, dis] = time_workload<Engine>(n, 0xbe7c0 + r);
    double total = static_cast<double>(n) / (enq + dis);
    if (total > best.total_eps) {
      best.total_eps = total;
      best.enqueue_eps = static_cast<double>(n) / enq;
      best.dispatch_eps = static_cast<double>(n) / dis;
    }
  }
  int hold_reps = n >= 1'000'000 ? (reps > 2 ? 2 : reps) : reps;
  for (int r = 0; r < hold_reps; ++r) {
    double eps = hold_workload<Engine>(n, 0x401d + r);
    if (eps > best.hold_eps) best.hold_eps = eps;
  }
  return best;
}

struct PipelineResult {
  const char* config;
  double pps = 0;
  uint64_t hop_copies = 0;
  uint64_t total_copies = 0;
};

/// Pass-through tap (an MVR-shaped observer that keeps nothing).
class CountTap : public netsim::Tap {
 public:
  netsim::TapDecision process(const netsim::TapContext& ctx,
                              netsim::Router&) override {
    seen += ctx.pkt.wire().size();
    return netsim::TapDecision::Pass;
  }
  uint64_t seen = 0;
};

/// Retaining tap (a pcap-shaped sink): copies every packet, on purpose.
class RetainTap : public netsim::Tap {
 public:
  netsim::TapDecision process(const netsim::TapContext& ctx,
                              netsim::Router&) override {
    kept.push_back(ctx.pkt.retain(packet::CopySite::Pcap));
    return netsim::TapDecision::Pass;
  }
  std::vector<common::Bytes> kept;
};

PipelineResult run_pipeline_once(const char* config, size_t packets,
                                 netsim::Tap* tap,
                                 obs::ProvenanceGraph* provenance) {
  packet::reset_copy_counters();
  netsim::Network net;
  if (provenance) net.engine().set_provenance(provenance);
  netsim::Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  netsim::Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  netsim::Router* r = net.add_router("r");
  net.connect(a, r, netsim::LinkConfig{Duration::micros(10), 0, 0.0});
  net.connect(b, r, netsim::LinkConfig{Duration::micros(10), 0, 0.0});
  if (tap) r->add_tap(tap);

  uint64_t delivered = 0;
  b->udp_bind(9000, [&](const packet::Decoded&, std::span<const uint8_t>) {
    ++delivered;
  });
  common::Bytes payload(512, 0xab);

  auto t0 = clock_type::now();
  // Batched sends: keep a bounded number in flight so the event queue
  // stays realistic (a handful of packets per link, not a million).
  const size_t batch = 64;
  for (size_t sent = 0; sent < packets; sent += batch) {
    for (size_t i = 0; i < batch && sent + i < packets; ++i)
      a->send_udp(b->address(), 1234, 9000, payload);
    net.run_for(Duration::millis(1));
  }
  net.run_for(Duration::millis(10));
  double elapsed = seconds_since(t0);

  if (delivered != packets) {
    std::fprintf(stderr, "BUG: pipeline delivered %llu of %zu packets\n",
                 static_cast<unsigned long long>(delivered), packets);
    std::exit(2);
  }
  PipelineResult out;
  out.config = config;
  out.pps = static_cast<double>(packets) / elapsed;
  out.hop_copies = packet::copies(packet::CopySite::Hop);
  out.total_copies = 0;
  for (auto site :
       {packet::CopySite::Hop, packet::CopySite::Impairment,
        packet::CopySite::Pcap, packet::CopySite::Defrag,
        packet::CopySite::Stream})
    out.total_copies += packet::copies(site);
  return out;
}

/// Best-of-`reps` pipeline throughput: same min-time repetition the queue
/// benches use, because a single pass is at the mercy of one scheduler
/// hiccup and the gated tapped/untapped *ratios* amplify that noise.
/// Copy counters come from the last rep (they are identical every rep).
PipelineResult run_pipeline(const char* config, size_t packets, int reps,
                            netsim::Tap* tap,
                            obs::ProvenanceGraph* provenance = nullptr,
                            std::function<void()> reset_tap = {}) {
  PipelineResult best;
  for (int r = 0; r < reps; ++r) {
    if (provenance) provenance->clear();
    if (reset_tap) reset_tap();
    PipelineResult one = run_pipeline_once(config, packets, tap, provenance);
    if (one.pps > best.pps) best = one;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_event_core.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke")
      smoke = true;
    else
      out_path = argv[i];
  }
  std::vector<size_t> scales = {1'000, 10'000, 100'000, 1'000'000};
  if (smoke) scales = {1'000, 10'000, 100'000};
  const int reps = 3;

  std::printf("event-core bench: binary heap vs hierarchical timer wheel\n\n");
  std::printf("%10s %13s %13s %8s %13s %13s %8s\n", "pending",
              "burst heap", "burst wheel", "burst x", "hold heap",
              "hold wheel", "hold x");

  struct ScaleRow {
    size_t pending;
    QueueTiming heap, wheel;
    double burst_speedup;
    double hold_speedup;
  };
  std::vector<ScaleRow> rows;
  bool queue_pass = true;
  for (size_t n : scales) {
    ScaleRow row;
    row.pending = n;
    row.heap = best_of<HeapEngine>(n, reps);
    row.wheel = best_of<netsim::Engine>(n, reps);
    row.burst_speedup = row.wheel.total_eps / row.heap.total_eps;
    row.hold_speedup = row.wheel.hold_eps / row.heap.hold_eps;
    if (row.hold_speedup < 1.0) queue_pass = false;
    if (n >= 100'000 && row.burst_speedup < 1.0) queue_pass = false;
    std::printf("%10zu %13.0f %13.0f %7.2fx %13.0f %13.0f %7.2fx\n", n,
                row.heap.total_eps, row.wheel.total_eps, row.burst_speedup,
                row.heap.hold_eps, row.wheel.hold_eps, row.hold_speedup);
    rows.push_back(row);
  }

  std::printf("\npacket pipeline: host -> router -> host, 512B UDP\n\n");
  std::printf("%12s %14s %12s %14s\n", "taps", "pkts/s", "hop copies",
              "total copies");
  const size_t pipeline_packets = smoke ? 5'000 : 20'000;
  CountTap count_tap;
  RetainTap retain_tap;
  // Provenance enabled on a tapless path: every hop records PacketSent/
  // Forward events into the ring, the worst case for the graph itself.
  // The "none" config doubles as the disabled-path measurement — no
  // graph attached is exactly how every non-provenance run executes.
  obs::ProvenanceGraph prov_graph(1 << 16);
  std::vector<PipelineResult> pipe;
  pipe.push_back(run_pipeline("none", pipeline_packets, reps, nullptr));
  pipe.push_back(run_pipeline("observe", pipeline_packets, reps, &count_tap,
                              nullptr, [&] { count_tap.seen = 0; }));
  pipe.push_back(run_pipeline("retain", pipeline_packets, reps, &retain_tap,
                              nullptr, [&] { retain_tap.kept.clear(); }));
  pipe.push_back(
      run_pipeline("prov", pipeline_packets, reps, nullptr, &prov_graph));
  bool copies_pass = true;
  for (const auto& p : pipe) {
    if (p.hop_copies != 0) copies_pass = false;
    std::printf("%12s %14.0f %12llu %14llu\n", p.config, p.pps,
                static_cast<unsigned long long>(p.hop_copies),
                static_cast<unsigned long long>(p.total_copies));
  }
  // The retain config must have counted exactly one Pcap copy per packet
  // — the counter is live, not decorative.
  if (pipe[2].total_copies != pipeline_packets) copies_pass = false;

  bool pass = queue_pass && copies_pass;
  std::printf("\nwheel >= heap (hold at every scale, burst from 1e5): %s\n",
              queue_pass ? "PASS" : "FAIL");
  std::printf("zero hop copies in every config: %s\n",
              copies_pass ? "PASS" : "FAIL");

  FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\"bench\":\"event_core\",\"event_queue\":[");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "%s{\"pending\":%zu,\"burst_heap_eps\":%.0f,"
                 "\"burst_wheel_eps\":%.0f,\"burst_speedup\":%.3f,"
                 "\"hold_heap_eps\":%.0f,\"hold_wheel_eps\":%.0f,"
                 "\"hold_speedup\":%.3f,\"wheel_enqueue_eps\":%.0f,"
                 "\"wheel_dispatch_eps\":%.0f}",
                 i ? "," : "", r.pending, r.heap.total_eps,
                 r.wheel.total_eps, r.burst_speedup, r.heap.hold_eps,
                 r.wheel.hold_eps, r.hold_speedup, r.wheel.enqueue_eps,
                 r.wheel.dispatch_eps);
  }
  std::fprintf(f, "],\"pipeline\":[");
  for (size_t i = 0; i < pipe.size(); ++i) {
    std::fprintf(f,
                 "%s{\"taps\":\"%s\",\"pps\":%.0f,\"hop_copies\":%llu,"
                 "\"total_copies\":%llu}",
                 i ? "," : "", pipe[i].config, pipe[i].pps,
                 static_cast<unsigned long long>(pipe[i].hop_copies),
                 static_cast<unsigned long long>(pipe[i].total_copies));
  }
  std::fprintf(f, "],\"hop_copies\":%llu,\"pass\":%s}\n",
               static_cast<unsigned long long>(
                   pipe[0].hop_copies + pipe[1].hop_copies +
                   pipe[2].hop_copies),
               pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return pass ? 0 : 1;
}
