#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "proto/dns/client.hpp"
#include "proto/dns/message.hpp"
#include "proto/dns/server.hpp"

namespace sm::proto::dns {
namespace {

using common::Duration;
using common::Ipv4Address;

TEST(Name, NormalizesCaseAndTrailingDot) {
  EXPECT_EQ(Name("WWW.Example.COM").str(), "www.example.com");
  EXPECT_EQ(Name("example.com.").str(), "example.com");
  EXPECT_TRUE(Name("A.B") == Name("a.b"));
}

TEST(Name, Labels) {
  auto labels = Name("www.example.com").labels();
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "www");
  EXPECT_EQ(labels[2], "com");
  EXPECT_TRUE(Name("").labels().empty());
}

TEST(Name, Subdomain) {
  EXPECT_TRUE(Name("mail.example.com").is_subdomain_of(Name("example.com")));
  EXPECT_TRUE(Name("example.com").is_subdomain_of(Name("example.com")));
  EXPECT_FALSE(Name("example.com").is_subdomain_of(Name("mail.example.com")));
  EXPECT_FALSE(Name("badexample.com").is_subdomain_of(Name("example.com")));
  EXPECT_TRUE(Name("anything.net").is_subdomain_of(Name("")));
}

TEST(Codec, QueryRoundTrip) {
  Message q = Message::query(0x1234, Name("www.example.com"), RecordType::A);
  auto wire = encode(q);
  auto decoded = decode(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->header.id, 0x1234);
  EXPECT_FALSE(decoded->header.qr);
  EXPECT_TRUE(decoded->header.rd);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name.str(), "www.example.com");
  EXPECT_EQ(decoded->questions[0].type, RecordType::A);
}

TEST(Codec, ResponseWithAllRecordTypes) {
  Message q = Message::query(7, Name("example.com"), RecordType::ANY);
  Message r = Message::response_to(q, Rcode::NoError);
  r.answers.push_back(
      ResourceRecord::a(Name("example.com"), Ipv4Address(1, 2, 3, 4), 60));
  r.answers.push_back(
      ResourceRecord::mx(Name("example.com"), 10, Name("mail.example.com")));
  r.answers.push_back(
      ResourceRecord::cname(Name("www.example.com"), Name("example.com")));
  r.answers.push_back(
      ResourceRecord::ns(Name("example.com"), Name("ns1.example.com")));
  r.answers.push_back(
      ResourceRecord::txt(Name("example.com"), "v=spf1 -all"));
  auto wire = encode(r);
  auto d = decode(wire);
  ASSERT_TRUE(d);
  ASSERT_EQ(d->answers.size(), 5u);
  EXPECT_EQ(std::get<Ipv4Address>(d->answers[0].rdata),
            Ipv4Address(1, 2, 3, 4));
  EXPECT_EQ(d->answers[0].ttl, 60u);
  auto mx = std::get<MxData>(d->answers[1].rdata);
  EXPECT_EQ(mx.preference, 10);
  EXPECT_EQ(mx.exchange.str(), "mail.example.com");
  EXPECT_EQ(std::get<Name>(d->answers[2].rdata).str(), "example.com");
  EXPECT_EQ(std::get<Name>(d->answers[3].rdata).str(), "ns1.example.com");
  EXPECT_EQ(std::get<std::string>(d->answers[4].rdata), "v=spf1 -all");
}

TEST(Codec, CompressionShrinksRepeatedNames) {
  Message r;
  r.header.qr = true;
  r.questions.push_back(Question{Name("mail.example.com"), RecordType::A, 1});
  for (int i = 0; i < 4; ++i) {
    r.answers.push_back(ResourceRecord::a(Name("mail.example.com"),
                                          Ipv4Address(1, 2, 3, 4)));
  }
  auto wire = encode(r);
  // With compression, repeats cost 2 bytes (pointer) instead of 18.
  // 12 header + question (18+4) + 4 * (2 + 10 + 4) = ~98.
  EXPECT_LT(wire.size(), 110u);
  auto d = decode(wire);
  ASSERT_TRUE(d);
  ASSERT_EQ(d->answers.size(), 4u);
  for (const auto& rr : d->answers)
    EXPECT_EQ(rr.name.str(), "mail.example.com");
}

TEST(Codec, CompressionSharedSuffix) {
  Message r;
  r.header.qr = true;
  r.answers.push_back(
      ResourceRecord::a(Name("a.example.com"), Ipv4Address(1, 1, 1, 1)));
  r.answers.push_back(
      ResourceRecord::a(Name("b.example.com"), Ipv4Address(2, 2, 2, 2)));
  auto wire = encode(r);
  auto d = decode(wire);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->answers[0].name.str(), "a.example.com");
  EXPECT_EQ(d->answers[1].name.str(), "b.example.com");
}

TEST(Codec, RejectsPointerLoop) {
  // Hand-craft a message whose name is a self-pointing pointer.
  common::ByteWriter w;
  w.u16(1);      // id
  w.u16(0);      // flags
  w.u16(1);      // qdcount
  w.u16(0);
  w.u16(0);
  w.u16(0);
  w.u16(0xC00C);  // name: pointer to itself (offset 12)
  w.u16(1);       // qtype
  w.u16(1);       // qclass
  EXPECT_FALSE(decode(w.data()));
}

TEST(Codec, RejectsTruncated) {
  Message q = Message::query(1, Name("example.com"), RecordType::A);
  auto wire = encode(q);
  wire.resize(wire.size() - 4);
  EXPECT_FALSE(decode(wire));
}

TEST(Codec, RejectsTxtLengthByteOverrunningBuffer) {
  // A TXT record at the tail of the packet whose character-string length
  // byte claims more bytes than the buffer holds. The failed read must
  // terminate decoding, not spin on a frozen reader position.
  common::ByteWriter w;
  w.u16(1);  // id
  w.u16(0x8000);  // flags: response
  w.u16(0);  // qdcount
  w.u16(1);  // ancount
  w.u16(0);
  w.u16(0);
  w.u8(1); w.text("t"); w.u8(0);  // name: "t."
  w.u16(static_cast<uint16_t>(RecordType::TXT));
  w.u16(1);    // class
  w.u32(60);   // ttl
  w.u16(3);    // rdlength: 3 bytes follow
  w.u8(0xFF);  // character-string length 255 >> remaining 2 bytes
  w.u8('a');
  w.u8('b');
  EXPECT_FALSE(decode(w.data()));
}

TEST(Codec, TxtChunking) {
  std::string long_text(300, 'x');
  Message r;
  r.header.qr = true;
  r.answers.push_back(ResourceRecord::txt(Name("t.example"), long_text));
  auto d = decode(encode(r));
  ASSERT_TRUE(d);
  EXPECT_EQ(std::get<std::string>(d->answers[0].rdata), long_text);
}

TEST(MessageHelpers, FirstAAndMxSort) {
  Message m;
  m.answers.push_back(
      ResourceRecord::mx(Name("e.com"), 20, Name("mx2.e.com")));
  m.answers.push_back(
      ResourceRecord::mx(Name("e.com"), 10, Name("mx1.e.com")));
  m.answers.push_back(
      ResourceRecord::a(Name("e.com"), Ipv4Address(9, 9, 9, 9)));
  EXPECT_EQ(m.first_a(), Ipv4Address(9, 9, 9, 9));
  auto mx = m.mx_records();
  ASSERT_EQ(mx.size(), 2u);
  EXPECT_EQ(mx[0].exchange.str(), "mx1.e.com");
}

TEST(Zone, LookupAndTypes) {
  Zone z;
  z.add_site_with_mail("example.com", Ipv4Address(1, 1, 1, 1),
                       Ipv4Address(2, 2, 2, 2));
  EXPECT_TRUE(z.has_name(Name("example.com")));
  EXPECT_TRUE(z.has_name(Name("mail.example.com")));
  EXPECT_FALSE(z.has_name(Name("other.com")));
  EXPECT_EQ(z.lookup(Name("example.com"), RecordType::A).size(), 1u);
  EXPECT_EQ(z.lookup(Name("example.com"), RecordType::MX).size(), 1u);
  EXPECT_EQ(z.lookup(Name("example.com"), RecordType::TXT).size(), 0u);
  EXPECT_EQ(z.lookup(Name("example.com"), RecordType::ANY).size(), 2u);
}

// --- Client/server over the simulated network ---

class DnsNetTest : public ::testing::Test {
 protected:
  DnsNetTest() {
    client_host_ = net_.add_host("c", Ipv4Address(10, 0, 0, 1));
    server_host_ = net_.add_host("s", Ipv4Address(10, 0, 0, 53));
    router_ = net_.add_router("r");
    net_.connect(client_host_, router_);
    net_.connect(server_host_, router_);
    Zone zone;
    zone.add_site_with_mail("example.com", Ipv4Address(93, 184, 216, 34),
                            Ipv4Address(93, 184, 216, 35));
    server_ = std::make_unique<Server>(*server_host_, std::move(zone));
    client_ = std::make_unique<Client>(*client_host_,
                                       server_host_->address(),
                                       Duration::millis(500));
  }
  netsim::Network net_;
  netsim::Host* client_host_;
  netsim::Host* server_host_;
  netsim::Router* router_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<Client> client_;
};

TEST_F(DnsNetTest, ResolvesA) {
  std::optional<QueryResult> result;
  client_->query(Name("example.com"), RecordType::A,
                 [&](const QueryResult& r) { result = r; });
  net_.run_for(Duration::millis(100));
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->answered());
  EXPECT_EQ(result->address(), Ipv4Address(93, 184, 216, 34));
}

TEST_F(DnsNetTest, ResolvesMxThenA) {
  std::optional<QueryResult> result;
  client_->query(Name("example.com"), RecordType::MX,
                 [&](const QueryResult& r) { result = r; });
  net_.run_for(Duration::millis(100));
  ASSERT_TRUE(result);
  auto mx = result->response->mx_records();
  ASSERT_EQ(mx.size(), 1u);
  EXPECT_EQ(mx[0].exchange.str(), "mail.example.com");
}

TEST_F(DnsNetTest, NxDomain) {
  std::optional<QueryResult> result;
  client_->query(Name("missing.com"), RecordType::A,
                 [&](const QueryResult& r) { result = r; });
  net_.run_for(Duration::millis(100));
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->answered());
  EXPECT_EQ(result->response->header.rcode, Rcode::NxDomain);
  EXPECT_FALSE(result->address());
}

TEST_F(DnsNetTest, TimeoutWhenServerUnreachable) {
  Client lost(*client_host_, Ipv4Address(203, 0, 113, 9),
              Duration::millis(200));
  std::optional<QueryResult> result;
  lost.query(Name("example.com"), RecordType::A,
             [&](const QueryResult& r) { result = r; });
  net_.run_for(Duration::seconds(1));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->outcome, QueryOutcome::TimedOut);
}

TEST_F(DnsNetTest, ConcurrentQueriesMatchedById) {
  std::optional<QueryResult> r1, r2;
  client_->query(Name("example.com"), RecordType::A,
                 [&](const QueryResult& r) { r1 = r; });
  client_->query(Name("mail.example.com"), RecordType::A,
                 [&](const QueryResult& r) { r2 = r; });
  net_.run_for(Duration::millis(200));
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->address(), Ipv4Address(93, 184, 216, 34));
  EXPECT_EQ(r2->address(), Ipv4Address(93, 184, 216, 35));
}

TEST_F(DnsNetTest, SpoofedQueryGetsNoCallback) {
  // Spoofed cover queries are fire-and-forget; the response goes to the
  // spoofed host. The server must still see and answer the query.
  client_->query_spoofed(Ipv4Address(10, 0, 0, 200), Name("example.com"),
                         RecordType::A);
  net_.run_for(Duration::millis(100));
  EXPECT_EQ(server_->queries_served(), 1u);
}

TEST_F(DnsNetTest, CallbackFiresExactlyOnceOnLateResponse) {
  int calls = 0;
  client_->query(Name("example.com"), RecordType::A,
                 [&](const QueryResult&) { ++calls; });
  net_.run_for(Duration::seconds(2));  // past the timeout too
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace sm::proto::dns
