#include <gtest/gtest.h>

#include <cstdio>

#include "packet/packet.hpp"
#include "packet/pcap.hpp"

namespace sm::packet {
namespace {

using common::Ipv4Address;
using common::SimTime;

std::vector<PcapRecord> sample_records() {
  std::vector<PcapRecord> records;
  for (int i = 0; i < 5; ++i) {
    Packet p = make_tcp(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                        1000 + i, 80, TcpFlags::kSyn, i, 0);
    records.push_back(PcapRecord{
        SimTime(static_cast<int64_t>(i) * 1'000'000'000), p.data()});
  }
  return records;
}

TEST(Pcap, RoundTrip) {
  auto records = sample_records();
  auto bytes = write_pcap(records);
  auto loaded = read_pcap(bytes);
  ASSERT_TRUE(loaded);
  ASSERT_EQ(loaded->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*loaded)[i].data, records[i].data) << i;
    // Timestamps survive at microsecond resolution.
    EXPECT_EQ((*loaded)[i].timestamp.count() / 1000,
              records[i].timestamp.count() / 1000);
  }
}

TEST(Pcap, HeaderMagicAndLinktype) {
  auto bytes = write_pcap({}, 101);
  ASSERT_GE(bytes.size(), 24u);
  EXPECT_EQ(bytes[0], 0xD4);  // little-endian magic
  EXPECT_EQ(bytes[3], 0xA1);
  EXPECT_EQ(bytes[20], 101);  // linktype LSB
}

TEST(Pcap, RejectsBadMagic) {
  common::Bytes junk(32, 0x42);
  EXPECT_FALSE(read_pcap(junk));
}

TEST(Pcap, RejectsTruncatedRecord) {
  auto bytes = write_pcap(sample_records());
  bytes.resize(bytes.size() - 3);
  EXPECT_FALSE(read_pcap(bytes));
}

TEST(Pcap, EmptyCapture) {
  auto bytes = write_pcap({});
  auto loaded = read_pcap(bytes);
  ASSERT_TRUE(loaded);
  EXPECT_TRUE(loaded->empty());
}

TEST(Pcap, FileRoundTrip) {
  std::string path = testing::TempDir() + "/sm_test.pcap";
  auto records = sample_records();
  ASSERT_TRUE(save_pcap(path, records));
  auto loaded = load_pcap(path);
  ASSERT_TRUE(loaded);
  EXPECT_EQ(loaded->size(), records.size());
  std::remove(path.c_str());
}

TEST(Pcap, LoadMissingFile) {
  EXPECT_FALSE(load_pcap("/nonexistent/definitely/missing.pcap"));
}

TEST(Pcap, DecodableAfterRoundTrip) {
  auto bytes = write_pcap(sample_records());
  auto loaded = read_pcap(bytes);
  ASSERT_TRUE(loaded);
  for (const auto& rec : *loaded) {
    auto d = decode(rec.data);
    ASSERT_TRUE(d);
    EXPECT_TRUE(d->tcp);
  }
}

}  // namespace
}  // namespace sm::packet
