#include <gtest/gtest.h>

#include <limits>

#include "common/stats.hpp"

namespace sm::common {
namespace {

TEST(OnlineStats, Empty) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 42.0);
  EXPECT_EQ(s.max(), 42.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, StddevMatchesVariance) {
  OnlineStats s;
  for (double x : {1.0, 3.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.stddev() * s.stddev(), s.variance());
  // One sample -> no spread, not NaN.
  OnlineStats single;
  single.add(7.0);
  EXPECT_EQ(single.stddev(), 0.0);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -5.0);
}

TEST(EmpiricalCdf, AtAndQuantile) {
  EmpiricalCdf cdf;
  for (double x : {1.0, 2.0, 3.0, 4.0}) cdf.add(x);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.5);
}

TEST(EmpiricalCdf, EmptySafe) {
  EmpiricalCdf cdf;
  EXPECT_EQ(cdf.at(1.0), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.points().empty());
}

TEST(EmpiricalCdf, DuplicatesCollapseInPoints) {
  EmpiricalCdf cdf;
  cdf.add_all({5.0, 5.0, 5.0, 7.0});
  auto pts = cdf.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0].first, 5.0);
  EXPECT_DOUBLE_EQ(pts[0].second, 0.75);
  EXPECT_EQ(pts[1].first, 7.0);
  EXPECT_DOUBLE_EQ(pts[1].second, 1.0);
}

TEST(EmpiricalCdf, PointsMonotonic) {
  EmpiricalCdf cdf;
  for (int i = 100; i > 0; --i) cdf.add(static_cast<double>(i % 17));
  auto pts = cdf.points();
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].first, pts[i].first);
    EXPECT_LT(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(EmpiricalCdf, QuantileClampsOutsideUnitInterval) {
  EmpiricalCdf cdf;
  cdf.add_all({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(2.0), 3.0);
}

TEST(EmpiricalCdf, TableRespectsMaxRows) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 100; ++i) cdf.add(static_cast<double>(i));
  std::string table = cdf.to_table(5);
  size_t rows = 0;
  for (char c : table) rows += c == '\n';
  EXPECT_LE(rows, 1 + 5u);  // header plus at most max_rows data lines
}

TEST(EmpiricalCdf, TableRendering) {
  EmpiricalCdf cdf;
  cdf.add(1.0);
  cdf.add(2.0);
  std::string table = cdf.to_table();
  EXPECT_NE(table.find("value\tcdf"), std::string::npos);
  EXPECT_NE(table.find("0.5"), std::string::npos);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[5], 1u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(Histogram, BinLow) {
  Histogram h(0.0, 100.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 50.0);
}

TEST(Histogram, DegenerateRangeCollectsEverythingInBinZero) {
  // hi == lo makes the bin expression NaN; samples must land in bin 0
  // instead of invoking undefined float->int behaviour.
  Histogram h(5.0, 5.0, 4);
  h.add(5.0);
  h.add(-1e9);
  h.add(1e9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bins()[0], 3u);
  // Inverted range (hi < lo) is equally degenerate.
  Histogram inv(10.0, 0.0, 4);
  inv.add(5.0);
  EXPECT_EQ(inv.bins()[0], 1u);
}

TEST(Histogram, NonFiniteSamplesAreClamped) {
  Histogram h(0.0, 10.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());  // bin 0
  h.add(std::numeric_limits<double>::infinity());   // last bin
  h.add(-std::numeric_limits<double>::infinity());  // bin 0
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[3], 1u);
}

TEST(Histogram, ExactUpperEdgeGoesToLastBin) {
  Histogram h(0.0, 10.0, 5);
  h.add(10.0);  // pos == n exactly
  EXPECT_EQ(h.bins()[4], 1u);
}

TEST(Histogram, AsciiRendering) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(1.0);
  h.add(6.0);
  std::string art = h.to_ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(EntropyBits, Uniform) {
  EXPECT_NEAR(entropy_bits({1, 1, 1, 1}), 2.0, 1e-9);
  EXPECT_NEAR(entropy_bits({5, 5}), 1.0, 1e-9);
}

TEST(EntropyBits, Degenerate) {
  EXPECT_EQ(entropy_bits({}), 0.0);
  EXPECT_EQ(entropy_bits({0, 0}), 0.0);
  EXPECT_EQ(entropy_bits({7}), 0.0);
  EXPECT_EQ(entropy_bits({7, 0, 0}), 0.0);
}

TEST(EntropyBits, SkewLowersEntropy) {
  EXPECT_LT(entropy_bits({9, 1}), entropy_bits({5, 5}));
}

// --- merge() (campaign workers accumulate privately, runner combines) --

TEST(OnlineStatsMerge, MatchesSingleStream) {
  OnlineStats a, b, whole;
  for (double x : {1.0, 2.0, 3.0}) {
    a.add(x);
    whole.add(x);
  }
  for (double x : {10.0, -4.0, 7.5, 0.25}) {
    b.add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(OnlineStatsMerge, EmptySidesAreIdentity) {
  OnlineStats a, empty;
  a.add(3.0);
  a.add(5.0);
  OnlineStats before = a;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), before.mean());

  OnlineStats target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.mean(), a.mean());
  EXPECT_EQ(target.min(), 3.0);
  EXPECT_EQ(target.max(), 5.0);
}

TEST(HistogramMerge, AddsBinsAndCounts) {
  Histogram a(0.0, 10.0, 5), b(0.0, 10.0, 5);
  a.add(1.0);
  a.add(9.0);
  b.add(1.5);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.bins()[0], 2u);  // 1.0 and 1.5
  EXPECT_EQ(a.bins()[2], 1u);  // 5.0
  EXPECT_EQ(a.bins()[4], 1u);  // 9.0
}

TEST(HistogramMerge, ShapeMismatchThrows) {
  Histogram a(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 4)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(0.0, 20.0, 5)), std::invalid_argument);
  EXPECT_THROW(a.merge(Histogram(1.0, 10.0, 5)), std::invalid_argument);
}

TEST(HistogramMerge, ClampedSamplesMergeInEdgeBins) {
  // Non-finite samples clamp into bin 0 at add() time; merging histograms
  // that hold such samples just adds the edge bins — nothing is lost or
  // double-clamped.
  Histogram a(0.0, 10.0, 4), b(0.0, 10.0, 4);
  a.add(std::numeric_limits<double>::quiet_NaN());
  b.add(-std::numeric_limits<double>::infinity());
  b.add(std::numeric_limits<double>::infinity());  // clamps to last bin
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.bins()[0], 2u);
  EXPECT_EQ(a.bins()[3], 1u);
}

TEST(HistogramMerge, DegenerateRangeMergesIfShapesMatch) {
  Histogram a(5.0, 5.0, 3), b(5.0, 5.0, 3);
  a.add(123.0);
  b.add(-7.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.bins()[0], 2u);  // degenerate range collects in bin 0
}

}  // namespace
}  // namespace sm::common
