// Equivalence proof for the IDS fast path: the rule-group index +
// Aho-Corasick prefilter must produce byte-identical verdicts, alerts,
// and stats (minus the prefilter instrumentation counters) versus the
// legacy linear scan, across randomized rulesets and packet streams.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ids/engine.hpp"
#include "ids/fastpattern.hpp"
#include "packet/packet.hpp"

namespace sm::ids {
namespace {

using common::Ipv4Address;
using common::Rng;
using common::SimTime;
using packet::TcpFlags;

struct PacketBox {
  common::Bytes storage;
  packet::Decoded decoded;
};

PacketBox tcp_pkt(Ipv4Address src, Ipv4Address dst, uint16_t sp, uint16_t dp,
                  uint8_t flags, uint32_t seq, uint32_t ack,
                  std::string_view payload) {
  PacketBox box;
  packet::Packet p = packet::make_tcp(src, dst, sp, dp, flags, seq, ack,
                                      common::to_bytes(payload));
  box.storage = p.data();
  box.decoded = *packet::decode(box.storage);
  return box;
}

PacketBox udp_pkt(Ipv4Address src, Ipv4Address dst, uint16_t sp, uint16_t dp,
                  std::string_view payload) {
  PacketBox box;
  packet::Packet p =
      packet::make_udp(src, dst, sp, dp, common::to_bytes(payload));
  box.storage = p.data();
  box.decoded = *packet::decode(box.storage);
  return box;
}

void expect_same_alert(const Alert& a, const Alert& b, size_t packet_no) {
  EXPECT_EQ(a.sid, b.sid) << "packet " << packet_no;
  EXPECT_EQ(a.time, b.time) << "packet " << packet_no;
  EXPECT_EQ(a.msg, b.msg) << "packet " << packet_no;
  EXPECT_EQ(a.action, b.action) << "packet " << packet_no;
  EXPECT_EQ(a.src, b.src) << "packet " << packet_no;
  EXPECT_EQ(a.dst, b.dst) << "packet " << packet_no;
  EXPECT_EQ(a.src_port, b.src_port) << "packet " << packet_no;
  EXPECT_EQ(a.dst_port, b.dst_port) << "packet " << packet_no;
}

void expect_same_verdict(const Verdict& vl, const Verdict& vf,
                         size_t packet_no) {
  ASSERT_EQ(vl.drop, vf.drop) << "packet " << packet_no;
  ASSERT_EQ(vl.reject, vf.reject) << "packet " << packet_no;
  ASSERT_EQ(vl.alerts.size(), vf.alerts.size()) << "packet " << packet_no;
  for (size_t i = 0; i < vl.alerts.size(); ++i)
    expect_same_alert(vl.alerts[i], vf.alerts[i], packet_no);
}

/// Runs the same packet through both engines and compares outcomes.
void expect_equivalent(Engine& linear, Engine& fast, SimTime now,
                       const packet::Decoded& d, size_t packet_no) {
  Verdict vl = linear.process(now, d);
  Verdict vf = fast.process(now, d);
  expect_same_verdict(vl, vf, packet_no);
}

void expect_same_core_stats(const Engine& linear, const Engine& fast) {
  EXPECT_EQ(linear.stats().packets, fast.stats().packets);
  EXPECT_EQ(linear.stats().alerts, fast.stats().alerts);
  EXPECT_EQ(linear.stats().drops, fast.stats().drops);
}

// ---------------------------------------------------------------------------
// Directed cases for the tricky index paths.

TEST(FastPatternIndex, MarksOnlyPresentPatterns) {
  FastPatternIndex idx;
  uint32_t a = idx.add("falun");
  uint32_t b = idx.add("TOR");    // folded to "tor"
  uint32_t c = idx.add("falun");  // deduplicated
  EXPECT_EQ(a, c);
  EXPECT_EQ(idx.pattern_count(), 2u);
  idx.build();

  auto hay = common::to_bytes("connect via ToR bridge");
  idx.begin_scan();
  idx.scan(hay);
  EXPECT_FALSE(idx.hit(a));
  EXPECT_TRUE(idx.hit(b));

  // Marks accumulate across scans of the same epoch (payload + stream).
  auto hay2 = common::to_bytes("FALUN gong");
  idx.scan(hay2);
  EXPECT_TRUE(idx.hit(a));

  // ...and reset at the next epoch.
  idx.begin_scan();
  EXPECT_FALSE(idx.hit(a));
  EXPECT_FALSE(idx.hit(b));
}

TEST(FastPatternIndex, OverlappingPatternsAllHit) {
  FastPatternIndex idx;
  uint32_t a = idx.add("he");
  uint32_t b = idx.add("she");
  uint32_t c = idx.add("hers");
  idx.build();
  auto hay = common::to_bytes("ushers");
  idx.begin_scan();
  idx.scan(hay);
  EXPECT_TRUE(idx.hit(a));
  EXPECT_TRUE(idx.hit(b));
  EXPECT_TRUE(idx.hit(c));
}

const char* kDirectedRules =
    "pass tcp any any -> any 22 (msg:\"ssh ok\"; sid:1;)\n"
    "drop tcp any any -> any 22 (msg:\"never fires\"; sid:2;)\n"
    "alert tcp any any -> any 80 (msg:\"kw\"; content:\"falun\"; nocase; "
    "sid:3;)\n"
    "alert tcp any 6667 <> any any (msg:\"irc either way\"; sid:4;)\n"
    "reject tcp any any -> any [1000:2000] (msg:\"range\"; "
    "content:\"probe\"; sid:5;)\n"
    "alert udp any any -> any 53 (msg:\"dns kw\"; content:\"blocked\"; "
    "sid:6;)\n"
    "alert ip any any -> any any (msg:\"catchall\"; content:\"beacon\"; "
    "sid:7;)\n"
    "alert tcp any any -> any 80 (msg:\"neg\"; content:!\"safe\"; "
    "dsize:>4; sid:8;)\n";

TEST(FastpathEquivalence, DirectedRuleShapes) {
  Engine linear =
      Engine::from_text(kDirectedRules, {}, EngineOptions{.use_fastpath = false});
  // prefilter_min_candidates = 0 forces the Aho-Corasick scan even for
  // this small ruleset, so the directed cases exercise the prefilter.
  Engine fast = Engine::from_text(
      kDirectedRules, {},
      EngineOptions{.use_fastpath = true, .prefilter_min_candidates = 0,
                      .mode = MatchMode::Fastpath});

  Ipv4Address c1(10, 0, 0, 1), s1(192, 0, 2, 80);
  std::vector<PacketBox> packets;
  // pass rule shields sid:2 on port 22.
  packets.push_back(tcp_pkt(c1, s1, 4000, 22, TcpFlags::kSyn, 1, 0, ""));
  // keyword alert, case-insensitive.
  packets.push_back(
      tcp_pkt(c1, s1, 4001, 80, TcpFlags::kAck, 1, 1, "GET /FaLuN"));
  // bidirectional rule: src port in forward direction...
  packets.push_back(tcp_pkt(c1, s1, 6667, 9999, TcpFlags::kAck, 1, 1, "x"));
  // ...and in the reverse direction (packet's dst port matches rule src).
  packets.push_back(tcp_pkt(s1, c1, 9999, 6667, TcpFlags::kAck, 1, 1, "x"));
  // port-range reject rule (fallback bucket).
  packets.push_back(
      tcp_pkt(c1, s1, 4002, 1500, TcpFlags::kAck, 1, 1, "probe payload"));
  // udp content rule.
  packets.push_back(udp_pkt(c1, s1, 5353, 53, "blocked.example"));
  // ip-proto catchall sees tcp and udp alike.
  packets.push_back(tcp_pkt(c1, s1, 4003, 8080, TcpFlags::kAck, 1, 1,
                            "beacon here"));
  packets.push_back(udp_pkt(c1, s1, 4004, 9, "beacon there"));
  // negated content with dsize.
  packets.push_back(
      tcp_pkt(c1, s1, 4005, 80, TcpFlags::kAck, 1, 1, "unsafe data"));
  packets.push_back(
      tcp_pkt(c1, s1, 4006, 80, TcpFlags::kAck, 1, 1, "safe data"));

  for (size_t i = 0; i < packets.size(); ++i)
    expect_equivalent(linear, fast, SimTime(static_cast<int64_t>(i) * 1000),
                      packets[i].decoded, i);
  expect_same_core_stats(linear, fast);
  // The directed stream actually exercised the prefilter.
  EXPECT_GT(fast.stats().fastpath_candidates, 0u);
  EXPECT_GT(fast.stats().prefilter_hits, 0u);
}

TEST(FastpathEquivalence, StreamSplitKeywordStillFires) {
  // Keyword split across two TCP segments: only the reassembled stream
  // contains it, so the fast path must take the lazy stream-scan branch.
  const char* rules =
      "alert tcp any any -> any 80 (msg:\"split\"; content:\"falun\"; "
      "flow:established; sid:9;)\n";
  Engine linear =
      Engine::from_text(rules, {}, EngineOptions{.use_fastpath = false});
  Engine fast = Engine::from_text(
      rules, {},
      EngineOptions{.use_fastpath = true, .prefilter_min_candidates = 0,
                      .mode = MatchMode::Fastpath});

  Ipv4Address c(10, 0, 0, 7), s(192, 0, 2, 80);
  std::vector<PacketBox> stream;
  stream.push_back(tcp_pkt(c, s, 5000, 80, TcpFlags::kSyn, 100, 0, ""));
  stream.push_back(
      tcp_pkt(s, c, 80, 5000, TcpFlags::kSyn | TcpFlags::kAck, 500, 101, ""));
  stream.push_back(tcp_pkt(c, s, 5000, 80, TcpFlags::kAck, 101, 501, ""));
  stream.push_back(
      tcp_pkt(c, s, 5000, 80, TcpFlags::kAck, 101, 501, "GET /?q=fal"));
  stream.push_back(
      tcp_pkt(c, s, 5000, 80, TcpFlags::kAck, 112, 501, "un HTTP/1.1"));

  size_t total_alerts = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    Verdict vl = linear.process(SimTime(static_cast<int64_t>(i) * 1000),
                                stream[i].decoded);
    Verdict vf = fast.process(SimTime(static_cast<int64_t>(i) * 1000),
                              stream[i].decoded);
    ASSERT_EQ(vl.alerts.size(), vf.alerts.size()) << "packet " << i;
    total_alerts += vf.alerts.size();
  }
  EXPECT_EQ(total_alerts, 1u);  // fires exactly once, on reassembled data
  EXPECT_GT(fast.stats().stream_scans, 0u);
  expect_same_core_stats(linear, fast);
}

// ---------------------------------------------------------------------------
// Randomized equivalence sweep.

const std::vector<std::string>& word_pool() {
  static const std::vector<std::string> pool = {
      "falun",  "tor",     "VPN",      "proxy",  "beacon", "probe",
      "Gong",   "blocked", "freedom",  "xyzzy",  "GET /",  "HTTP/1.1",
      "ultras", "urfing",  "tunnel0",  "qqmail", "dns",    "censor",
  };
  return pool;
}

std::string random_rules(Rng& rng, size_t n) {
  std::string text;
  const auto& pool = word_pool();
  for (size_t i = 0; i < n; ++i) {
    double a = rng.uniform();
    const char* action = a < 0.55   ? "alert"
                         : a < 0.70 ? "drop"
                         : a < 0.80 ? "reject"
                         : a < 0.92 ? "pass"
                                    : "log";
    double pr = rng.uniform();
    const char* proto = pr < 0.55   ? "tcp"
                        : pr < 0.80 ? "udp"
                        : pr < 0.92 ? "ip"
                                    : "icmp";
    auto port_spec = [&]() -> std::string {
      double p = rng.uniform();
      if (p < 0.35) return "any";
      uint16_t base = static_cast<uint16_t>(20 + rng.bounded(120));
      if (p < 0.80) return std::to_string(base);
      if (p < 0.92)
        return "[" + std::to_string(base) + ":" +
               std::to_string(base + 30) + "]";
      return "!" + std::to_string(base);
    };
    std::string src_ports = port_spec();
    std::string dst_ports = port_spec();
    const char* dir = rng.chance(0.18) ? "<>" : "->";

    std::string options;
    size_t contents = rng.bounded(3);  // 0..2 content options
    for (size_t c = 0; c < contents; ++c) {
      const std::string& w = pool[rng.bounded(pool.size())];
      bool negated = rng.chance(0.15);
      options += " content:" + std::string(negated ? "!" : "") + "\"" + w +
                 "\";";
      if (rng.chance(0.5)) options += " nocase;";
      if (rng.chance(0.2))
        options += " offset:" + std::to_string(rng.bounded(6)) + ";";
      if (rng.chance(0.2))
        options += " depth:" + std::to_string(40 + rng.bounded(200)) + ";";
    }
    if (std::string(proto) == "tcp" && rng.chance(0.15)) options += " flags:A+;";
    if (rng.chance(0.15))
      options += " dsize:>" + std::to_string(rng.bounded(30)) + ";";
    if (std::string(proto) == "tcp" && rng.chance(0.1))
      options += " flow:established;";
    if (rng.chance(0.1))
      options += " threshold: type limit, track by_src, count 3, seconds 60;";

    text += std::string(action) + " " + proto + " any " + src_ports + " " +
            dir + " any " + dst_ports + " (msg:\"r" + std::to_string(i) +
            "\"; sid:" + std::to_string(1000 + i) + ";" + options + ")\n";
  }
  return text;
}

std::string random_payload(Rng& rng) {
  const auto& pool = word_pool();
  std::string payload;
  size_t words = rng.bounded(5);
  for (size_t i = 0; i < words; ++i) {
    payload += pool[rng.bounded(pool.size())];
    payload += ' ';
  }
  size_t filler = rng.bounded(120);
  for (size_t i = 0; i < filler; ++i)
    payload += static_cast<char>('a' + rng.bounded(26));
  return payload;
}

TEST(FastpathEquivalence, RandomizedSweep) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng(seed);
    std::string rules = random_rules(rng, 60);
    SCOPED_TRACE("seed " + std::to_string(seed));
    Engine linear =
        Engine::from_text(rules, {}, EngineOptions{.use_fastpath = false});
    // Default crossover heuristic and always-on prefilter must both be
    // equivalent to the linear scan.
    Engine fast =
        Engine::from_text(rules, {}, EngineOptions{.use_fastpath = true, .mode = MatchMode::Fastpath});
    Engine forced = Engine::from_text(
        rules, {},
        EngineOptions{.use_fastpath = true, .prefilter_min_candidates = 0,
                      .mode = MatchMode::Fastpath});
    ASSERT_EQ(linear.rule_count(), fast.rule_count());

    // A small endpoint population so flows repeat and establish.
    std::vector<Ipv4Address> hosts;
    for (int i = 0; i < 6; ++i)
      hosts.push_back(Ipv4Address(10, 0, 0, static_cast<uint8_t>(i + 1)));

    for (size_t i = 0; i < 2500; ++i) {
      Ipv4Address src = hosts[rng.bounded(hosts.size())];
      Ipv4Address dst = hosts[rng.bounded(hosts.size())];
      uint16_t sp = static_cast<uint16_t>(20 + rng.bounded(140));
      uint16_t dp = static_cast<uint16_t>(20 + rng.bounded(140));
      SimTime now(static_cast<int64_t>(i) * 2000);
      std::string payload = random_payload(rng);
      PacketBox box;
      double kind = rng.uniform();
      if (kind < 0.55) {
        uint8_t flags = TcpFlags::kAck;
        double f = rng.uniform();
        if (f < 0.15)
          flags = TcpFlags::kSyn;
        else if (f < 0.3)
          flags = TcpFlags::kSyn | TcpFlags::kAck;
        else if (f < 0.35)
          flags = TcpFlags::kFin | TcpFlags::kAck;
        box = tcp_pkt(src, dst, sp, dp, flags,
                      static_cast<uint32_t>(rng.bounded(100000)),
                      flags & TcpFlags::kAck ? 1 : 0, payload);
      } else {
        box = udp_pkt(src, dst, sp, dp, payload);
      }
      Verdict vl = linear.process(now, box.decoded);
      Verdict vf = fast.process(now, box.decoded);
      Verdict vo = forced.process(now, box.decoded);
      expect_same_verdict(vl, vf, i);
      expect_same_verdict(vl, vo, i);
      if (::testing::Test::HasFatalFailure()) return;
    }
    expect_same_core_stats(linear, fast);
    expect_same_core_stats(linear, forced);
    // Sanity: the sweep must actually exercise the fast path machinery.
    EXPECT_GT(fast.stats().fastpath_candidates, 0u);
    EXPECT_GT(forced.stats().prefilter_skips, 0u);
  }
}

// ---------------------------------------------------------------------------
// Differential sweep over impaired traffic: the packets an impaired link
// delivers — payload-corrupted (slipped past checksums) and reordered
// segments — must still yield identical verdicts from both engines.

TEST(FastpathEquivalence, CorruptedTrafficMatchesLegacy) {
  for (uint64_t seed : {21ULL, 22ULL}) {
    Rng rng(seed);
    std::string rules = random_rules(rng, 40);
    SCOPED_TRACE("seed " + std::to_string(seed));
    Engine linear =
        Engine::from_text(rules, {}, EngineOptions{.use_fastpath = false});
    Engine fast = Engine::from_text(
        rules, {},
        EngineOptions{.use_fastpath = true, .prefilter_min_candidates = 0,
                      .mode = MatchMode::Fastpath});

    std::vector<Ipv4Address> hosts;
    for (int i = 0; i < 4; ++i)
      hosts.push_back(Ipv4Address(10, 0, 1, static_cast<uint8_t>(i + 1)));

    size_t processed = 0, corrupted = 0;
    for (size_t i = 0; i < 1200; ++i) {
      Ipv4Address src = hosts[rng.bounded(hosts.size())];
      Ipv4Address dst = hosts[rng.bounded(hosts.size())];
      uint16_t sp = static_cast<uint16_t>(20 + rng.bounded(140));
      uint16_t dp = static_cast<uint16_t>(20 + rng.bounded(140));
      std::string payload = random_payload(rng);
      PacketBox box = rng.chance(0.6)
                          ? tcp_pkt(src, dst, sp, dp, TcpFlags::kAck,
                                    static_cast<uint32_t>(rng.bounded(100000)),
                                    1, payload)
                          : udp_pkt(src, dst, sp, dp, payload);
      // Flip a few bytes the way a lossy link would, then take whatever
      // still parses — exactly what a tap behind an impaired link sees.
      if (rng.chance(0.5) && !box.storage.empty()) {
        size_t flips = 1 + rng.bounded(3);
        for (size_t f = 0; f < flips; ++f)
          box.storage[rng.bounded(box.storage.size())] ^=
              static_cast<uint8_t>(1 + rng.bounded(255));
        auto d = packet::decode(std::span<const uint8_t>(box.storage));
        if (!d) continue;
        box.decoded = *d;
        ++corrupted;
      }
      Verdict vl = linear.process(SimTime(static_cast<int64_t>(i) * 2000),
                                  box.decoded);
      Verdict vf = fast.process(SimTime(static_cast<int64_t>(i) * 2000),
                                box.decoded);
      expect_same_verdict(vl, vf, i);
      if (::testing::Test::HasFatalFailure()) return;
      ++processed;
    }
    expect_same_core_stats(linear, fast);
    EXPECT_GT(processed, 600u);
    EXPECT_GT(corrupted, 100u);  // the sweep really fed mangled packets
  }
}

TEST(FastpathEquivalence, ReorderedStreamsMatchLegacy) {
  // TCP streams carrying keywords split across segments, delivered out of
  // order (as reorder jitter produces). Both engines see the identical
  // scrambled sequence and must agree packet-for-packet — including on
  // whether the out-of-order reassembly still surfaces the keyword.
  const char* rules =
      "alert tcp any any -> any 80 (msg:\"kw\"; content:\"falun\"; "
      "sid:11;)\n"
      "drop tcp any any -> any 80 (msg:\"kw2\"; content:\"beacon\"; "
      "flow:established; sid:12;)\n"
      "alert udp any any -> any 53 (msg:\"dns\"; content:\"tor\"; sid:13;)\n";
  for (uint64_t seed : {31ULL, 32ULL, 33ULL}) {
    Rng rng(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    Engine linear =
        Engine::from_text(rules, {}, EngineOptions{.use_fastpath = false});
    Engine fast = Engine::from_text(
        rules, {},
        EngineOptions{.use_fastpath = true, .prefilter_min_candidates = 0,
                      .mode = MatchMode::Fastpath});

    // A batch of handshake + split-keyword streams from distinct ports.
    std::vector<PacketBox> packets;
    for (int f = 0; f < 12; ++f) {
      Ipv4Address c(10, 0, 2, static_cast<uint8_t>(f + 1));
      Ipv4Address s(192, 0, 2, 80);
      uint16_t sp = static_cast<uint16_t>(6000 + f);
      uint32_t iss = 1000 * static_cast<uint32_t>(f + 1);
      std::string kw = f % 2 ? "falun" : "beacon";
      std::string a = "GET /?q=" + kw.substr(0, 3);
      std::string b = kw.substr(3) + " HTTP/1.1";
      packets.push_back(tcp_pkt(c, s, sp, 80, TcpFlags::kSyn, iss, 0, ""));
      packets.push_back(tcp_pkt(s, c, 80, sp, TcpFlags::kSyn | TcpFlags::kAck,
                                500, iss + 1, ""));
      packets.push_back(
          tcp_pkt(c, s, sp, 80, TcpFlags::kAck, iss + 1, 501, ""));
      packets.push_back(
          tcp_pkt(c, s, sp, 80, TcpFlags::kAck, iss + 1, 501, a));
      packets.push_back(tcp_pkt(c, s, sp, 80, TcpFlags::kAck,
                                iss + 1 + static_cast<uint32_t>(a.size()),
                                501, b));
      packets.push_back(udp_pkt(c, s, sp, 53, "query tor bridge"));
    }
    // Seeded local scramble: swap each packet a bounded distance back,
    // mirroring bounded reorder jitter rather than a full shuffle.
    for (size_t i = packets.size(); i-- > 1;) {
      if (rng.chance(0.4)) {
        size_t back = 1 + rng.bounded(std::min<size_t>(i, 3));
        std::swap(packets[i], packets[i - back]);
      }
    }
    size_t alerts = 0;
    for (size_t i = 0; i < packets.size(); ++i) {
      Verdict vl = linear.process(SimTime(static_cast<int64_t>(i) * 1000),
                                  packets[i].decoded);
      Verdict vf = fast.process(SimTime(static_cast<int64_t>(i) * 1000),
                                packets[i].decoded);
      expect_same_verdict(vl, vf, i);
      if (::testing::Test::HasFatalFailure()) return;
      alerts += vf.alerts.size();
    }
    expect_same_core_stats(linear, fast);
    EXPECT_GT(alerts, 0u);  // scrambling must not silence every rule
  }
}

// ---------------------------------------------------------------------------
// Dual-stack equivalence: v6 traffic, with and without extension-header
// chains, must flow through both engines verdict-for-verdict. The engine
// normalizes the chain away (payload offsets come from the decoded
// header's ext_length), so a HBH/DestOpts detour must change nothing.

PacketBox tcp6_pkt(common::Ipv6Address src, common::Ipv6Address dst,
                   uint16_t sp, uint16_t dp, uint8_t flags, uint32_t seq,
                   uint32_t ack, std::string_view payload,
                   packet::Ipv6Options ip = {}) {
  PacketBox box;
  packet::Packet p = packet::make_tcp6(src, dst, sp, dp, flags, seq, ack,
                                       common::to_bytes(payload), ip);
  box.storage = p.data();
  box.decoded = *packet::decode(box.storage);
  return box;
}

PacketBox udp6_pkt(common::Ipv6Address src, common::Ipv6Address dst,
                   uint16_t sp, uint16_t dp, std::string_view payload,
                   packet::Ipv6Options ip = {}) {
  PacketBox box;
  packet::Packet p =
      packet::make_udp6(src, dst, sp, dp, common::to_bytes(payload), ip);
  box.storage = p.data();
  box.decoded = *packet::decode(box.storage);
  return box;
}

packet::Ipv6Options random_ext_chain(Rng& rng) {
  packet::Ipv6Options ip;
  size_t chain = rng.bounded(3);
  for (size_t i = 0; i < chain; ++i) {
    packet::Ipv6ExtSpec ext;
    if (i == 0 && rng.chance(0.4)) {
      ext.type = static_cast<uint8_t>(packet::IpProto::HopByHop);
    } else {
      ext.type = rng.chance(0.5)
                     ? static_cast<uint8_t>(packet::IpProto::Routing)
                     : static_cast<uint8_t>(packet::IpProto::DestOpts);
    }
    common::Bytes body(rng.bounded(16));
    for (auto& byte : body) byte = static_cast<uint8_t>(rng.bounded(256));
    ext.body = std::move(body);
    ip.ext.push_back(std::move(ext));
  }
  return ip;
}

TEST(FastpathEquivalence, DirectedV6RuleShapesWithExtHeaders) {
  Engine linear = Engine::from_text(kDirectedRules, {},
                                    EngineOptions{.use_fastpath = false});
  Engine fast = Engine::from_text(
      kDirectedRules, {},
      EngineOptions{.use_fastpath = true, .prefilter_min_candidates = 0,
                    .mode = MatchMode::Fastpath});

  common::Ipv6Address c1 = common::map_v6(Ipv4Address(10, 0, 0, 1));
  common::Ipv6Address s1 = common::map_v6(Ipv4Address(192, 0, 2, 80));
  packet::Ipv6Options hbh;
  hbh.ext.push_back(
      {static_cast<uint8_t>(packet::IpProto::HopByHop), common::Bytes{}});
  packet::Ipv6Options chain;
  chain.ext.push_back({static_cast<uint8_t>(packet::IpProto::Routing),
                       common::Bytes(8, 0)});
  chain.ext.push_back({static_cast<uint8_t>(packet::IpProto::DestOpts),
                       common::Bytes{1, 2, 3}});

  std::vector<PacketBox> packets;
  // Keyword alert with no chain, behind HBH, and behind a two-header
  // chain — the content offset must survive normalization in all three.
  packets.push_back(
      tcp6_pkt(c1, s1, 4001, 80, TcpFlags::kAck, 1, 1, "GET /FaLuN"));
  packets.push_back(
      tcp6_pkt(c1, s1, 4002, 80, TcpFlags::kAck, 1, 1, "GET /FaLuN", hbh));
  packets.push_back(
      tcp6_pkt(c1, s1, 4003, 80, TcpFlags::kAck, 1, 1, "GET /FaLuN", chain));
  // pass-shielded port, range reject, udp content, catchall — over v6.
  packets.push_back(tcp6_pkt(c1, s1, 4000, 22, TcpFlags::kSyn, 1, 0, ""));
  packets.push_back(tcp6_pkt(c1, s1, 4004, 1500, TcpFlags::kAck, 1, 1,
                             "probe payload", hbh));
  packets.push_back(udp6_pkt(c1, s1, 5353, 53, "blocked.example", chain));
  packets.push_back(
      udp6_pkt(c1, s1, 4005, 9, "beacon there", hbh));
  packets.push_back(
      tcp6_pkt(c1, s1, 4006, 80, TcpFlags::kAck, 1, 1, "unsafe data"));

  size_t alerts = 0;
  for (size_t i = 0; i < packets.size(); ++i) {
    Verdict vl = linear.process(SimTime(static_cast<int64_t>(i) * 1000),
                                packets[i].decoded);
    Verdict vf = fast.process(SimTime(static_cast<int64_t>(i) * 1000),
                              packets[i].decoded);
    expect_same_verdict(vl, vf, i);
    if (::testing::Test::HasFatalFailure()) return;
    alerts += vf.alerts.size();
  }
  expect_same_core_stats(linear, fast);
  EXPECT_GE(alerts, 5u);  // the v6 cells really fired, ext chain included
}

TEST(FastpathEquivalence, RandomizedDualStackSweep) {
  for (uint64_t seed : {41ULL, 42ULL}) {
    Rng rng(seed);
    std::string rules = random_rules(rng, 60);
    SCOPED_TRACE("seed " + std::to_string(seed));
    Engine linear =
        Engine::from_text(rules, {}, EngineOptions{.use_fastpath = false});
    Engine fast = Engine::from_text(
        rules, {},
        EngineOptions{.use_fastpath = true, .prefilter_min_candidates = 0,
                      .mode = MatchMode::Fastpath});

    std::vector<Ipv4Address> hosts;
    for (int i = 0; i < 6; ++i)
      hosts.push_back(Ipv4Address(10, 0, 0, static_cast<uint8_t>(i + 1)));

    size_t v6_packets = 0, with_ext = 0;
    for (size_t i = 0; i < 2500; ++i) {
      Ipv4Address src = hosts[rng.bounded(hosts.size())];
      Ipv4Address dst = hosts[rng.bounded(hosts.size())];
      uint16_t sp = static_cast<uint16_t>(20 + rng.bounded(140));
      uint16_t dp = static_cast<uint16_t>(20 + rng.bounded(140));
      SimTime now(static_cast<int64_t>(i) * 2000);
      std::string payload = random_payload(rng);
      bool v6 = rng.chance(0.5);
      bool tcp = rng.chance(0.6);
      PacketBox box;
      if (v6) {
        ++v6_packets;
        packet::Ipv6Options ip = random_ext_chain(rng);
        if (!ip.ext.empty()) ++with_ext;
        box = tcp ? tcp6_pkt(common::map_v6(src), common::map_v6(dst), sp,
                             dp, TcpFlags::kAck,
                             static_cast<uint32_t>(rng.bounded(100000)), 1,
                             payload, ip)
                  : udp6_pkt(common::map_v6(src), common::map_v6(dst), sp,
                             dp, payload, ip);
      } else {
        box = tcp ? tcp_pkt(src, dst, sp, dp, TcpFlags::kAck,
                            static_cast<uint32_t>(rng.bounded(100000)), 1,
                            payload)
                  : udp_pkt(src, dst, sp, dp, payload);
      }
      Verdict vl = linear.process(now, box.decoded);
      Verdict vf = fast.process(now, box.decoded);
      expect_same_verdict(vl, vf, i);
      if (::testing::Test::HasFatalFailure()) return;
    }
    expect_same_core_stats(linear, fast);
    EXPECT_GT(v6_packets, 1000u);
    EXPECT_GT(with_ext, 300u);  // ext chains really mixed into the sweep
  }
}

}  // namespace
}  // namespace sm::ids
