// Last-mile coverage: router transformer drop semantics, customized
// blockpage bodies, background-traffic determinism, and analyst ledger
// consistency between flow records and byte attribution.
#include <gtest/gtest.h>

#include "core/background.hpp"
#include "core/overt.hpp"
#include "core/probe.hpp"
#include "netsim/topology.hpp"

namespace sm::core {
namespace {

using common::Duration;
using common::Ipv4Address;

TEST(Transformer, ReturningFalseDropsPacket) {
  netsim::Network net;
  auto* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  auto* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  auto* r = net.add_router("r");
  net.connect(a, r);
  net.connect(b, r);
  r->set_transformer([](packet::Packet& p) {
    auto d = packet::decode(p);
    return !(d && d->udp && d->udp->dst_port == 9999);  // drop port 9999
  });
  bool got_9999 = false, got_1000 = false;
  b->udp_bind(9999, [&](const packet::Decoded&, std::span<const uint8_t>) {
    got_9999 = true;
  });
  b->udp_bind(1000, [&](const packet::Decoded&, std::span<const uint8_t>) {
    got_1000 = true;
  });
  a->send_udp(b->address(), 1, 9999, common::to_bytes("x"));
  a->send_udp(b->address(), 1, 1000, common::to_bytes("y"));
  net.run_for(Duration::millis(10));
  EXPECT_FALSE(got_9999);
  EXPECT_TRUE(got_1000);
  EXPECT_EQ(r->counters().dropped_by_tap, 1u);
}

TEST(Transformer, CanRewriteInFlight) {
  netsim::Network net;
  auto* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  auto* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  auto* r = net.add_router("r");
  net.connect(a, r);
  net.connect(b, r);
  r->set_transformer([](packet::Packet& p) {
    packet::set_ttl(p.data(), 99);
    return true;
  });
  uint8_t seen_ttl = 0;
  b->udp_bind(7, [&](const packet::Decoded& d, std::span<const uint8_t>) {
    seen_ttl = d.ip.ttl;
  });
  a->send_udp(b->address(), 1, 7, common::to_bytes("x"));
  net.run_for(Duration::millis(10));
  EXPECT_EQ(seen_ttl, 98);  // rewritten to 99, then decremented once
}

TEST(Blockpage, CustomBodyIsServed) {
  TestbedConfig cfg;
  cfg.policy = censor::CensorPolicy{};
  cfg.policy.blockpage_keywords = {"blocked.example"};
  cfg.policy.blockpage_html =
      "<html>This page has been blocked per regulation 42.</html>";
  Testbed tb(cfg);
  proto::http::Client http(*tb.client_stack);
  std::optional<proto::http::FetchResult> result;
  http.fetch(tb.addr().web_blocked, 80,
             proto::http::Request::get("blocked.example", "/"),
             [&](const proto::http::FetchResult& r) { result = r; });
  tb.run_for(Duration::seconds(3));
  ASSERT_TRUE(result && result->ok());
  EXPECT_EQ(result->response->status, 403);
  EXPECT_NE(result->response->body.find("regulation 42"),
            std::string::npos);
}

TEST(Background, DeterministicAcrossRuns) {
  auto run_once = []() {
    Testbed tb;
    BackgroundTraffic bg(tb);
    bg.schedule(Duration::seconds(5));
    tb.run_for(Duration::seconds(6));
    return std::make_pair(tb.mvr->stats().packets_seen,
                          tb.mvr->stats().bytes_seen);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Background, EventCountScalesWithNeighbors) {
  TestbedConfig small_cfg;
  small_cfg.neighbor_count = 5;
  Testbed small(small_cfg);
  BackgroundTraffic bg_small(small);
  bg_small.schedule(Duration::seconds(5));

  TestbedConfig big_cfg;
  big_cfg.neighbor_count = 25;
  Testbed big(big_cfg);
  BackgroundTraffic bg_big(big);
  bg_big.schedule(Duration::seconds(5));

  EXPECT_GT(bg_big.events_scheduled(), bg_small.events_scheduled());
}

TEST(FlowLedger, MatchesMvrByteAccounting) {
  Testbed tb;
  OvertHttpProbe probe(tb, {.domain = "open.example"});
  run_probe(tb, probe);
  // Every byte the MVR saw is attributed to some source in the ledger.
  auto& agg = tb.mvr->flow_records();
  uint64_t ledger_total = 0;
  std::set<uint32_t> sources;
  agg.flush_all();
  for (const auto& rec : agg.finished()) {
    ledger_total += rec.bytes;
    sources.insert(rec.src.value());
  }
  EXPECT_EQ(ledger_total, tb.mvr->stats().bytes_seen);
  EXPECT_GE(sources.size(), 3u);  // client, dns, web at least
}

}  // namespace
}  // namespace sm::core
