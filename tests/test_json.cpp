#include <gtest/gtest.h>

#include "core/report_json.hpp"

namespace sm::core {
namespace {

TEST(JsonEscape, PassesPlainText) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonEscape, PreservesUtf8Bytes) {
  std::string s = "六四";  // multibyte UTF-8 passes through
  EXPECT_EQ(json_escape(s), s);
}

TEST(ToJson, ProbeReportFields) {
  ProbeReport r;
  r.technique = "scan";
  r.target = "198.18.0.90:80";
  r.verdict = Verdict::BlockedTimeout;
  r.detail = "said \"nothing\"";
  r.packets_sent = 100;
  r.samples = 100;
  r.samples_blocked = 1;
  r.attempts = 3;
  r.confidence = conclude(0, 0, 3, 3);
  std::string json = to_json(r);
  EXPECT_NE(json.find("\"technique\":\"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"blocked-timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"blocked\":true"), std::string::npos);
  EXPECT_NE(json.find("said \\\"nothing\\\""), std::string::npos);
  EXPECT_NE(json.find("\"packets_sent\":100"), std::string::npos);
  EXPECT_NE(json.find("\"attempts\":3"), std::string::npos);
  EXPECT_NE(json.find("\"confidence\":{\"conclusion\":\"blocked\""),
            std::string::npos);
  EXPECT_NE(json.find("\"silent\":3"), std::string::npos);
}

TEST(ToJson, RiskReportFields) {
  RiskReport r;
  r.technique = "spam";
  r.evaded = true;
  r.noise_alerts = 2;
  r.suspicion = 0.25;
  r.attribution_probability = 0.05;
  std::string json = to_json(r);
  EXPECT_NE(json.find("\"evaded\":true"), std::string::npos);
  EXPECT_NE(json.find("\"noise_alerts\":2"), std::string::npos);
  EXPECT_NE(json.find("\"suspicion\":0.25"), std::string::npos);
}

TEST(ToJsonl, OneObjectPerLine) {
  ProbeReport p;
  p.technique = "x";
  RiskReport r;
  r.technique = "x";
  auto jsonl = to_jsonl({{p, r}, {p, r}});
  size_t newlines = 0;
  for (char c : jsonl)
    if (c == '\n') ++newlines;
  EXPECT_EQ(newlines, 2u);
  EXPECT_NE(jsonl.find("{\"measurement\":{"), std::string::npos);
  EXPECT_NE(jsonl.find(",\"risk\":{"), std::string::npos);
}

TEST(ToJson, BalancedBracesAndQuotes) {
  // Structural sanity: every emitted object has balanced braces and an
  // even number of unescaped quotes.
  ProbeReport p;
  p.technique = "q\"uo\\te";
  p.detail = "newline\nhere";
  std::string json = to_json(p);
  int depth = 0;
  size_t quotes = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    bool escaped = i > 0 && json[i - 1] == '\\' &&
                   (i < 2 || json[i - 2] != '\\');
    if (c == '{' && !escaped) ++depth;
    if (c == '}' && !escaped) --depth;
    if (c == '"' && !escaped) ++quotes;
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(quotes % 2, 0u);
}

}  // namespace
}  // namespace sm::core
