#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "netsim/trace.hpp"
#include "proto/http/server.hpp"
#include "spoof/cover.hpp"
#include "spoof/sav.hpp"
#include "spoof/ttl.hpp"

namespace sm::spoof {
namespace {

using common::Cidr;
using common::Duration;
using common::Ipv4Address;

TEST(SavModel, ScopeIsDeterministicPerClient) {
  SavModel model({}, 7);
  Ipv4Address client(10, 1, 1, 50);
  EXPECT_EQ(model.scope_for(client), model.scope_for(client));
}

TEST(SavModel, FractionsMatchBeverly) {
  // §4.2: 77% can spoof within their /24, 11% within their /16.
  SavModel model({}, 99);
  size_t at_least_24 = 0, at_least_16 = 0, total = 0;
  for (uint32_t net = 0; net < 40; ++net) {
    for (uint32_t h = 1; h < 250; ++h) {
      Ipv4Address client(10, 0, static_cast<uint8_t>(net),
                         static_cast<uint8_t>(h));
      SpoofScope s = model.scope_for(client);
      if (s != SpoofScope::None) ++at_least_24;
      if (s == SpoofScope::Slash16 || s == SpoofScope::Any) ++at_least_16;
      ++total;
    }
  }
  double f24 = static_cast<double>(at_least_24) / total;
  double f16 = static_cast<double>(at_least_16) / total;
  EXPECT_NEAR(f24, 0.77, 0.02);
  EXPECT_NEAR(f16, 0.11, 0.02);
}

TEST(SavModel, AllowsOwnAddressAlways) {
  SavModel model(SavDistribution{0.0, 0.0, 0.0}, 1);  // strict SAV for all
  Ipv4Address client(10, 1, 1, 50);
  EXPECT_TRUE(model.allows(client, client));
  EXPECT_FALSE(model.allows(client, Ipv4Address(10, 1, 1, 51)));
}

TEST(SavModel, ScopeBoundsEnforced) {
  // Force /24 scope for everyone.
  SavModel model(SavDistribution{1.0, 0.0, 0.0}, 1);
  Ipv4Address client(10, 1, 1, 50);
  EXPECT_EQ(model.scope_for(client), SpoofScope::Slash24);
  EXPECT_TRUE(model.allows(client, Ipv4Address(10, 1, 1, 99)));
  EXPECT_FALSE(model.allows(client, Ipv4Address(10, 1, 2, 99)));

  SavModel wide(SavDistribution{1.0, 1.0, 0.0}, 1);
  EXPECT_EQ(wide.scope_for(client), SpoofScope::Slash16);
  EXPECT_TRUE(wide.allows(client, Ipv4Address(10, 1, 2, 99)));
  EXPECT_FALSE(wide.allows(client, Ipv4Address(10, 2, 0, 1)));
}

TEST(SavModel, FilterForIntegratesWithRouter) {
  netsim::Network net;
  auto* a = net.add_host("a", Ipv4Address(10, 1, 1, 50));
  auto* b = net.add_host("b", Ipv4Address(198, 18, 0, 1));
  auto* r = net.add_router("r");
  net.connect(a, r);
  net.connect(b, r);
  SavModel strict(SavDistribution{0.0, 0.0, 0.0}, 1);
  r->set_ingress_filter(0, strict.filter_for(a->address()));
  a->send(packet::make_udp(Ipv4Address(10, 1, 1, 51), b->address(), 1, 2,
                           common::to_bytes("spoofed")));
  a->send_udp(b->address(), 1, 2, common::to_bytes("legit"));
  net.run_for(Duration::millis(10));
  EXPECT_EQ(r->counters().dropped_ingress, 1u);
  EXPECT_EQ(r->counters().forwarded, 1u);
}

TEST(TtlPlanning, EstimateHops) {
  EXPECT_EQ(estimate_hops(64), 0);
  EXPECT_EQ(estimate_hops(60), 4);
  EXPECT_EQ(estimate_hops(128), 0);
  EXPECT_EQ(estimate_hops(120), 8);
  EXPECT_EQ(estimate_hops(250), 5);
  EXPECT_FALSE(estimate_hops(0));
}

TEST(TtlPlanning, PlanReplyTtlWindow) {
  // Tap at router 1, client behind 3 routers: any TTL in [1,3].
  auto ttl = plan_reply_ttl(1, 3);
  ASSERT_TRUE(ttl);
  EXPECT_GE(*ttl, 1);
  EXPECT_LE(*ttl, 3);
  // Single router serving both roles: TTL 1 works.
  EXPECT_EQ(plan_reply_ttl(1, 1), uint8_t{1});
  // Impossible: tap beyond the client.
  EXPECT_FALSE(plan_reply_ttl(3, 2));
}

TEST(TtlPlanning, MarginPrefersMidpoint) {
  auto ttl = plan_reply_ttl_with_margin(2, 10, 2);
  ASSERT_TRUE(ttl);
  EXPECT_GE(*ttl, 4);
  EXPECT_LE(*ttl, 8);
  // Margin infeasible -> falls back to the tight window.
  auto tight = plan_reply_ttl_with_margin(2, 3, 5);
  ASSERT_TRUE(tight);
  EXPECT_EQ(*tight, 2);
}

TEST(PredictableIsn, DeterministicAndSpread) {
  uint32_t a = predictable_isn(1, Ipv4Address(10, 0, 0, 1), 1000,
                               Ipv4Address(203, 0, 113, 50), 80);
  uint32_t b = predictable_isn(1, Ipv4Address(10, 0, 0, 1), 1000,
                               Ipv4Address(203, 0, 113, 50), 80);
  EXPECT_EQ(a, b);
  uint32_t c = predictable_isn(1, Ipv4Address(10, 0, 0, 1), 1001,
                               Ipv4Address(203, 0, 113, 50), 80);
  uint32_t d = predictable_isn(2, Ipv4Address(10, 0, 0, 1), 1000,
                               Ipv4Address(203, 0, 113, 50), 80);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

// --- Cover traffic over a network ---

class CoverNetTest : public ::testing::Test {
 protected:
  CoverNetTest() {
    client_ = net_.add_host("client", Ipv4Address(10, 1, 1, 10));
    spoofee_ = net_.add_host("spoofee", Ipv4Address(10, 1, 1, 11));
    server_ = net_.add_host("server", Ipv4Address(203, 0, 113, 50));
    router_ = net_.add_router("r");
    net_.connect(client_, router_);
    net_.connect(spoofee_, router_);
    net_.connect(server_, router_);
    server_stack_ = std::make_unique<proto::tcp::Stack>(*server_);
    spoofee_stack_ = std::make_unique<proto::tcp::Stack>(*spoofee_);
    http_ = std::make_unique<proto::http::Server>(*server_stack_, 80);
  }
  netsim::Network net_;
  netsim::Host* client_;
  netsim::Host* spoofee_;
  netsim::Host* server_;
  netsim::Router* router_;
  std::unique_ptr<proto::tcp::Stack> server_stack_;
  std::unique_ptr<proto::tcp::Stack> spoofee_stack_;
  std::unique_ptr<proto::http::Server> http_;
};

TEST_F(CoverNetTest, StatelessDnsCoverSendsFromAllSources) {
  StatelessDnsCover cover(*client_, Ipv4Address(198, 18, 0, 53));
  size_t sent = cover.emit({Ipv4Address(10, 1, 1, 11),
                            Ipv4Address(10, 1, 1, 12)},
                           proto::dns::Name("blocked.example"));
  EXPECT_EQ(sent, 2u);
}

TEST_F(CoverNetTest, WithoutTtlLimitingSpoofeeRstsKillCoverFlow) {
  // The §4.1 replay problem: the spoofed host's real stack answers the
  // unexpected SYN/ACK with a RST, tearing down the server-side state.
  MimicryServer mimicry(*server_stack_, 0x5EC7E7, 80);
  // NOTE: no register_cover_client -> replies use default TTL and reach
  // the spoofed host.
  StatefulMimicryClient mimic(*client_, server_->address(), 80, 0x5EC7E7,
                              Duration::millis(5));
  mimic.run_flow(spoofee_->address(), "GET / HTTP/1.1\r\n\r\n");
  net_.run_for(Duration::seconds(2));
  EXPECT_GT(spoofee_stack_->stats().rst_out, 0u);
}

TEST_F(CoverNetTest, TtlLimitedRepliesNeverReachSpoofee) {
  MimicryServer mimicry(*server_stack_, 0x5EC7E7, 80);
  mimicry.register_cover_client(spoofee_->address(), /*reply_ttl=*/1);
  StatefulMimicryClient mimic(*client_, server_->address(), 80, 0x5EC7E7,
                              Duration::millis(5));
  mimic.run_flow(spoofee_->address(), "GET / HTTP/1.1\r\n\r\n");
  net_.run_for(Duration::seconds(2));
  // The spoofed host never saw the SYN/ACK, so it never RSTed.
  EXPECT_EQ(spoofee_stack_->stats().rst_out, 0u);
  EXPECT_EQ(spoofee_stack_->stats().segments_in, 0u);
  // The replies died at the router.
  EXPECT_GT(router_->counters().dropped_ttl, 0u);
}

TEST_F(CoverNetTest, ForgedHandshakeEstablishesOnServer) {
  // With the predictable ISN, the forged ACK is exactly right and the
  // server-side connection reaches Established and serves the request.
  MimicryServer mimicry(*server_stack_, 0x5EC7E7, 80);
  mimicry.register_cover_client(spoofee_->address(), 1);
  StatefulMimicryClient mimic(*client_, server_->address(), 80, 0x5EC7E7,
                              Duration::millis(5));
  mimic.run_flow(spoofee_->address(),
                 "GET /cover HTTP/1.1\r\nHost: measure.example\r\n\r\n");
  net_.run_for(Duration::seconds(2));
  EXPECT_EQ(server_stack_->stats().connections_accepted, 1u);
  EXPECT_EQ(http_->requests_served(), 1u);
}

TEST_F(CoverNetTest, CoverFlowVisibleAtTapAsCompleteFlow) {
  // The surveillance tap must see SYN, SYN/ACK, ACK, and data — a
  // plausible complete flow attributed to the spoofed host.
  netsim::TraceTap trace;
  router_->add_tap(&trace);
  MimicryServer mimicry(*server_stack_, 0x5EC7E7, 80);
  mimicry.register_cover_client(spoofee_->address(), 1);
  StatefulMimicryClient mimic(*client_, server_->address(), 80, 0x5EC7E7,
                              Duration::millis(5));
  mimic.run_flow(spoofee_->address(),
                 "GET /x HTTP/1.1\r\nHost: m\r\n\r\n");
  net_.run_for(Duration::seconds(2));

  bool saw_syn = false, saw_synack = false, saw_ack_data = false;
  for (const auto& rec : trace.records()) {
    auto d = packet::decode(rec.data);
    if (!d || !d->tcp) continue;
    if (d->ip.src == spoofee_->address() && d->tcp->syn() &&
        !d->tcp->ack_flag())
      saw_syn = true;
    if (d->ip.dst == spoofee_->address() && d->tcp->syn() &&
        d->tcp->ack_flag())
      saw_synack = true;
    if (d->ip.src == spoofee_->address() && !d->l4_payload.empty())
      saw_ack_data = true;
  }
  EXPECT_TRUE(saw_syn);
  EXPECT_TRUE(saw_synack);  // crossed the tap despite TTL 1
  EXPECT_TRUE(saw_ack_data);
}

TEST_F(CoverNetTest, StatelessSynCoverElicitsRepliesToSpoofee) {
  StatelessSynCover cover(*client_);
  cover.emit({spoofee_->address()}, server_->address(), 80);
  net_.run_for(Duration::seconds(1));
  // The server's SYN/ACK went to the spoofed host, which RSTed it:
  // exactly the cover shape the paper describes for stateless probes.
  EXPECT_GT(spoofee_stack_->stats().segments_in, 0u);
  EXPECT_GT(spoofee_stack_->stats().rst_out, 0u);
}

}  // namespace
}  // namespace sm::spoof
