#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "netsim/trace.hpp"
#include "proto/http/server.hpp"
#include "spoof/cover.hpp"
#include "spoof/sav.hpp"
#include "spoof/ttl.hpp"

namespace sm::spoof {
namespace {

using common::Cidr;
using common::Duration;
using common::Ipv4Address;

TEST(SavModel, ScopeIsDeterministicPerClient) {
  SavModel model({}, 7);
  Ipv4Address client(10, 1, 1, 50);
  EXPECT_EQ(model.scope_for(client), model.scope_for(client));
}

TEST(SavModel, FractionsMatchBeverly) {
  // §4.2: 77% can spoof within their /24, 11% within their /16.
  SavModel model({}, 99);
  size_t at_least_24 = 0, at_least_16 = 0, total = 0;
  for (uint32_t net = 0; net < 40; ++net) {
    for (uint32_t h = 1; h < 250; ++h) {
      Ipv4Address client(10, 0, static_cast<uint8_t>(net),
                         static_cast<uint8_t>(h));
      SpoofScope s = model.scope_for(client);
      if (s != SpoofScope::None) ++at_least_24;
      if (s == SpoofScope::Slash16 || s == SpoofScope::Any) ++at_least_16;
      ++total;
    }
  }
  double f24 = static_cast<double>(at_least_24) / total;
  double f16 = static_cast<double>(at_least_16) / total;
  EXPECT_NEAR(f24, 0.77, 0.02);
  EXPECT_NEAR(f16, 0.11, 0.02);
}

TEST(SavModel, AllowsOwnAddressAlways) {
  SavModel model(SavDistribution{0.0, 0.0, 0.0}, 1);  // strict SAV for all
  Ipv4Address client(10, 1, 1, 50);
  EXPECT_TRUE(model.allows(client, client));
  EXPECT_FALSE(model.allows(client, Ipv4Address(10, 1, 1, 51)));
}

TEST(SavModel, ScopeBoundsEnforced) {
  // Force /24 scope for everyone.
  SavModel model(SavDistribution{1.0, 0.0, 0.0}, 1);
  Ipv4Address client(10, 1, 1, 50);
  EXPECT_EQ(model.scope_for(client), SpoofScope::Slash24);
  EXPECT_TRUE(model.allows(client, Ipv4Address(10, 1, 1, 99)));
  EXPECT_FALSE(model.allows(client, Ipv4Address(10, 1, 2, 99)));

  SavModel wide(SavDistribution{1.0, 1.0, 0.0}, 1);
  EXPECT_EQ(wide.scope_for(client), SpoofScope::Slash16);
  EXPECT_TRUE(wide.allows(client, Ipv4Address(10, 1, 2, 99)));
  EXPECT_FALSE(wide.allows(client, Ipv4Address(10, 2, 0, 1)));
}

TEST(SavModel, FilterForIntegratesWithRouter) {
  netsim::Network net;
  auto* a = net.add_host("a", Ipv4Address(10, 1, 1, 50));
  auto* b = net.add_host("b", Ipv4Address(198, 18, 0, 1));
  auto* r = net.add_router("r");
  net.connect(a, r);
  net.connect(b, r);
  SavModel strict(SavDistribution{0.0, 0.0, 0.0}, 1);
  r->set_ingress_filter(0, strict.filter_for(a->address()));
  a->send(packet::make_udp(Ipv4Address(10, 1, 1, 51), b->address(), 1, 2,
                           common::to_bytes("spoofed")));
  a->send_udp(b->address(), 1, 2, common::to_bytes("legit"));
  net.run_for(Duration::millis(10));
  EXPECT_EQ(r->counters().dropped_ingress, 1u);
  EXPECT_EQ(r->counters().forwarded, 1u);
}

TEST(TtlPlanning, EstimateHops) {
  EXPECT_EQ(estimate_hops(64), 0);
  EXPECT_EQ(estimate_hops(60), 4);
  EXPECT_EQ(estimate_hops(128), 0);
  EXPECT_EQ(estimate_hops(120), 8);
  EXPECT_EQ(estimate_hops(250), 5);
  EXPECT_FALSE(estimate_hops(0));
}

TEST(TtlPlanning, PlanReplyTtlWindow) {
  // Tap at router 1, client behind 3 routers: any TTL in [1,3].
  auto ttl = plan_reply_ttl(1, 3);
  ASSERT_TRUE(ttl);
  EXPECT_GE(*ttl, 1);
  EXPECT_LE(*ttl, 3);
  // Single router serving both roles: TTL 1 works.
  EXPECT_EQ(plan_reply_ttl(1, 1), uint8_t{1});
  // Impossible: tap beyond the client.
  EXPECT_FALSE(plan_reply_ttl(3, 2));
}

TEST(TtlPlanning, MarginPrefersMidpoint) {
  auto ttl = plan_reply_ttl_with_margin(2, 10, 2);
  ASSERT_TRUE(ttl);
  EXPECT_GE(*ttl, 4);
  EXPECT_LE(*ttl, 8);
  // Margin infeasible -> falls back to the tight window.
  auto tight = plan_reply_ttl_with_margin(2, 3, 5);
  ASSERT_TRUE(tight);
  EXPECT_EQ(*tight, 2);
}

TEST(PredictableIsn, DeterministicAndSpread) {
  uint32_t a = predictable_isn(1, Ipv4Address(10, 0, 0, 1), 1000,
                               Ipv4Address(203, 0, 113, 50), 80);
  uint32_t b = predictable_isn(1, Ipv4Address(10, 0, 0, 1), 1000,
                               Ipv4Address(203, 0, 113, 50), 80);
  EXPECT_EQ(a, b);
  uint32_t c = predictable_isn(1, Ipv4Address(10, 0, 0, 1), 1001,
                               Ipv4Address(203, 0, 113, 50), 80);
  uint32_t d = predictable_isn(2, Ipv4Address(10, 0, 0, 1), 1000,
                               Ipv4Address(203, 0, 113, 50), 80);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

// --- Cover traffic over a network ---

class CoverNetTest : public ::testing::Test {
 protected:
  CoverNetTest() {
    client_ = net_.add_host("client", Ipv4Address(10, 1, 1, 10));
    spoofee_ = net_.add_host("spoofee", Ipv4Address(10, 1, 1, 11));
    server_ = net_.add_host("server", Ipv4Address(203, 0, 113, 50));
    router_ = net_.add_router("r");
    net_.connect(client_, router_);
    net_.connect(spoofee_, router_);
    net_.connect(server_, router_);
    server_stack_ = std::make_unique<proto::tcp::Stack>(*server_);
    spoofee_stack_ = std::make_unique<proto::tcp::Stack>(*spoofee_);
    http_ = std::make_unique<proto::http::Server>(*server_stack_, 80);
  }
  netsim::Network net_;
  netsim::Host* client_;
  netsim::Host* spoofee_;
  netsim::Host* server_;
  netsim::Router* router_;
  std::unique_ptr<proto::tcp::Stack> server_stack_;
  std::unique_ptr<proto::tcp::Stack> spoofee_stack_;
  std::unique_ptr<proto::http::Server> http_;
};

TEST_F(CoverNetTest, StatelessDnsCoverSendsFromAllSources) {
  StatelessDnsCover cover(*client_, Ipv4Address(198, 18, 0, 53));
  size_t sent = cover.emit({Ipv4Address(10, 1, 1, 11),
                            Ipv4Address(10, 1, 1, 12)},
                           proto::dns::Name("blocked.example"));
  EXPECT_EQ(sent, 2u);
}

TEST_F(CoverNetTest, WithoutTtlLimitingSpoofeeRstsKillCoverFlow) {
  // The §4.1 replay problem: the spoofed host's real stack answers the
  // unexpected SYN/ACK with a RST, tearing down the server-side state.
  MimicryServer mimicry(*server_stack_, 0x5EC7E7, 80);
  // NOTE: no register_cover_client -> replies use default TTL and reach
  // the spoofed host.
  StatefulMimicryClient mimic(*client_, server_->address(), 80, 0x5EC7E7,
                              Duration::millis(5));
  mimic.run_flow(spoofee_->address(), "GET / HTTP/1.1\r\n\r\n");
  net_.run_for(Duration::seconds(2));
  EXPECT_GT(spoofee_stack_->stats().rst_out, 0u);
}

TEST_F(CoverNetTest, TtlLimitedRepliesNeverReachSpoofee) {
  MimicryServer mimicry(*server_stack_, 0x5EC7E7, 80);
  mimicry.register_cover_client(spoofee_->address(), /*reply_ttl=*/1);
  StatefulMimicryClient mimic(*client_, server_->address(), 80, 0x5EC7E7,
                              Duration::millis(5));
  mimic.run_flow(spoofee_->address(), "GET / HTTP/1.1\r\n\r\n");
  net_.run_for(Duration::seconds(2));
  // The spoofed host never saw the SYN/ACK, so it never RSTed.
  EXPECT_EQ(spoofee_stack_->stats().rst_out, 0u);
  EXPECT_EQ(spoofee_stack_->stats().segments_in, 0u);
  // The replies died at the router.
  EXPECT_GT(router_->counters().dropped_ttl, 0u);
}

TEST_F(CoverNetTest, ForgedHandshakeEstablishesOnServer) {
  // With the predictable ISN, the forged ACK is exactly right and the
  // server-side connection reaches Established and serves the request.
  MimicryServer mimicry(*server_stack_, 0x5EC7E7, 80);
  mimicry.register_cover_client(spoofee_->address(), 1);
  StatefulMimicryClient mimic(*client_, server_->address(), 80, 0x5EC7E7,
                              Duration::millis(5));
  mimic.run_flow(spoofee_->address(),
                 "GET /cover HTTP/1.1\r\nHost: measure.example\r\n\r\n");
  net_.run_for(Duration::seconds(2));
  EXPECT_EQ(server_stack_->stats().connections_accepted, 1u);
  EXPECT_EQ(http_->requests_served(), 1u);
}

TEST_F(CoverNetTest, CoverFlowVisibleAtTapAsCompleteFlow) {
  // The surveillance tap must see SYN, SYN/ACK, ACK, and data — a
  // plausible complete flow attributed to the spoofed host.
  netsim::TraceTap trace;
  router_->add_tap(&trace);
  MimicryServer mimicry(*server_stack_, 0x5EC7E7, 80);
  mimicry.register_cover_client(spoofee_->address(), 1);
  StatefulMimicryClient mimic(*client_, server_->address(), 80, 0x5EC7E7,
                              Duration::millis(5));
  mimic.run_flow(spoofee_->address(),
                 "GET /x HTTP/1.1\r\nHost: m\r\n\r\n");
  net_.run_for(Duration::seconds(2));

  bool saw_syn = false, saw_synack = false, saw_ack_data = false;
  for (const auto& rec : trace.records()) {
    auto d = packet::decode(rec.data);
    if (!d || !d->tcp) continue;
    if (d->ip.src == spoofee_->address() && d->tcp->syn() &&
        !d->tcp->ack_flag())
      saw_syn = true;
    if (d->ip.dst == spoofee_->address() && d->tcp->syn() &&
        d->tcp->ack_flag())
      saw_synack = true;
    if (d->ip.src == spoofee_->address() && !d->l4_payload.empty())
      saw_ack_data = true;
  }
  EXPECT_TRUE(saw_syn);
  EXPECT_TRUE(saw_synack);  // crossed the tap despite TTL 1
  EXPECT_TRUE(saw_ack_data);
}

TEST_F(CoverNetTest, StatelessSynCoverElicitsRepliesToSpoofee) {
  StatelessSynCover cover(*client_);
  cover.emit({spoofee_->address()}, server_->address(), 80);
  net_.run_for(Duration::seconds(1));
  // The server's SYN/ACK went to the spoofed host, which RSTed it:
  // exactly the cover shape the paper describes for stateless probes.
  EXPECT_GT(spoofee_stack_->stats().segments_in, 0u);
  EXPECT_GT(spoofee_stack_->stats().rst_out, 0u);
}

// --- TTL boundary cases ---
//
// The stateful-mimicry safety claim rests on three off-by-one cases for
// the reply TTL. On a server — r1(tap) — r2 — r3 — spoofee chain
// (hops_to_tap=1, hops_to_client=3), a reply sent with TTL=t reaches
// routers 1..t and is delivered only when t > 3:
//
//   t=1  expires exactly at the tap hop (seen there, dropped there)
//   t=2  one hop past the tap
//   t=3  expires at the spoofed client's first-hop router — last safe TTL
//   t=4  one past the window: delivered, the real stack RSTs (the hazard
//        simcheck's ttl-plus-one fault injects)

struct TtlChainRun {
  uint64_t tap_synacks = 0;  // server->spoofee SYN/ACKs seen at the tap
  uint64_t spoofee_segments = 0;
  uint64_t spoofee_rsts = 0;
  uint64_t ttl_drops[3] = {0, 0, 0};  // r1, r2, r3
  uint64_t server_accepted = 0;
};

TtlChainRun run_ttl_chain(uint8_t reply_ttl) {
  netsim::Network net;
  auto* server = net.add_host("server", Ipv4Address(203, 0, 113, 50));
  auto* client = net.add_host("client", Ipv4Address(10, 1, 1, 10));
  auto* spoofee = net.add_host("spoofee", Ipv4Address(10, 1, 1, 11));
  auto* r1 = net.add_router("r1");
  auto* r2 = net.add_router("r2");
  auto* r3 = net.add_router("r3");
  net.connect(server, r1);   // r1 port 0 (host route auto)
  net.connect(r1, r2);       // r1 port 1 / r2 port 0
  net.connect(r2, r3);       // r2 port 1 / r3 port 0
  net.connect(spoofee, r3);  // r3 port 1 (host route auto)
  net.connect(client, r3);   // r3 port 2 (host route auto)
  r1->set_default_route(1);  // toward the client side
  r2->add_route(Cidr(Ipv4Address(10, 1, 1, 0), 24), 1);
  r2->set_default_route(0);
  r3->set_default_route(0);  // toward the server side

  netsim::TraceTap trace;
  r1->add_tap(&trace);

  proto::tcp::Stack server_stack(*server);
  proto::tcp::Stack spoofee_stack(*spoofee);
  proto::http::Server http(server_stack, 80);
  MimicryServer mimicry(server_stack, 0x5EC7E7, 80);
  mimicry.register_cover_client(spoofee->address(), reply_ttl);
  StatefulMimicryClient mimic(*client, server->address(), 80, 0x5EC7E7,
                              Duration::millis(5));
  mimic.run_flow(spoofee->address(),
                 "GET /cover HTTP/1.1\r\nHost: measure.example\r\n\r\n");
  net.run_for(Duration::seconds(2));

  TtlChainRun run;
  for (const auto& rec : trace.records()) {
    auto d = packet::decode(rec.data);
    if (d && d->tcp && d->ip.dst == spoofee->address() && d->tcp->syn() &&
        d->tcp->ack_flag())
      ++run.tap_synacks;
  }
  run.spoofee_segments = spoofee_stack.stats().segments_in;
  run.spoofee_rsts = spoofee_stack.stats().rst_out;
  run.ttl_drops[0] = r1->counters().dropped_ttl;
  run.ttl_drops[1] = r2->counters().dropped_ttl;
  run.ttl_drops[2] = r3->counters().dropped_ttl;
  run.server_accepted = server_stack.stats().connections_accepted;
  return run;
}

TEST(TtlBoundary, ExpiresExactlyAtTapHop) {
  TtlChainRun run = run_ttl_chain(1);
  // The tap still records the SYN/ACK (taps see ingress, before the
  // decrement), then the reply dies on that very router.
  EXPECT_GT(run.tap_synacks, 0u);
  EXPECT_GT(run.ttl_drops[0], 0u);
  EXPECT_EQ(run.ttl_drops[1], 0u);
  EXPECT_EQ(run.spoofee_segments, 0u);
  EXPECT_EQ(run.spoofee_rsts, 0u);
  EXPECT_EQ(run.server_accepted, 1u);  // forged ACK still lands
}

TEST(TtlBoundary, OneHopPastTheTapStillSafe) {
  TtlChainRun run = run_ttl_chain(2);
  EXPECT_GT(run.tap_synacks, 0u);
  EXPECT_EQ(run.ttl_drops[0], 0u);
  EXPECT_GT(run.ttl_drops[1], 0u);  // dies at r2
  EXPECT_EQ(run.spoofee_segments, 0u);
  EXPECT_EQ(run.spoofee_rsts, 0u);
  EXPECT_EQ(run.server_accepted, 1u);
}

TEST(TtlBoundary, ExpiresAtSpoofedClientsFirstHopRouter) {
  // TTL == hops_to_client is the last safe value: it expires at the
  // spoofed client's own first-hop router, one decrement short of the
  // host. This is exactly plan_reply_ttl's upper bound.
  TtlChainRun run = run_ttl_chain(3);
  EXPECT_GT(run.tap_synacks, 0u);
  EXPECT_GT(run.ttl_drops[2], 0u);  // dies at r3
  EXPECT_EQ(run.spoofee_segments, 0u);
  EXPECT_EQ(run.spoofee_rsts, 0u);
  EXPECT_EQ(run.server_accepted, 1u);
}

TEST(TtlBoundary, OnePastTheWindowReachesTheSpoofedClient) {
  // TTL == hops_to_client + 1 is the off-by-one that unravels the cover:
  // the reply is delivered, the spoofed host's real stack RSTs it.
  TtlChainRun run = run_ttl_chain(4);
  EXPECT_GT(run.spoofee_segments, 0u);
  EXPECT_GT(run.spoofee_rsts, 0u);
}

TEST(TtlBoundary, PlannerPinsTheWindowEndpoints) {
  // For the chain above: any of {1,2,3} is safe, 4 is not. The planner
  // returns the low end (maximal distance from the delivery boundary).
  EXPECT_EQ(plan_reply_ttl(1, 3), uint8_t{1});
  // Tap *is* the spoofed client's first-hop router: the window is a
  // single value.
  EXPECT_EQ(plan_reply_ttl(3, 3), uint8_t{3});
  // Tap one hop past the client's first-hop router: no safe TTL.
  EXPECT_FALSE(plan_reply_ttl(4, 3));
}

}  // namespace
}  // namespace sm::spoof
