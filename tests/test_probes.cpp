// Unit-level probe behaviour (finer grained than test_integration's
// accuracy/evasion matrix): port-state bookkeeping, sample accounting,
// verdict classification details, risk arithmetic.
#include <gtest/gtest.h>

#include "core/ddos.hpp"
#include "core/mimicry.hpp"
#include "core/overt.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"
#include "core/spam.hpp"
#include "core/top_ports.hpp"

namespace sm::core {
namespace {

TEST(Verdicts, StringsAndBlockedPredicate) {
  EXPECT_EQ(to_string(Verdict::Reachable), "reachable");
  EXPECT_EQ(to_string(Verdict::BlockedRst), "blocked-rst");
  EXPECT_TRUE(is_blocked(Verdict::BlockedRst));
  EXPECT_TRUE(is_blocked(Verdict::BlockedDnsForgery));
  EXPECT_TRUE(is_blocked(Verdict::BlockedTimeout));
  EXPECT_FALSE(is_blocked(Verdict::Reachable));
  EXPECT_FALSE(is_blocked(Verdict::Inconclusive));
}

TEST(ProbeReportTest, ToStringIncludesEverything) {
  ProbeReport r;
  r.technique = "scan";
  r.target = "x";
  r.verdict = Verdict::Reachable;
  r.detail = "d";
  r.samples = 3;
  std::string s = r.to_string();
  EXPECT_NE(s.find("scan(x)"), std::string::npos);
  EXPECT_NE(s.find("reachable"), std::string::npos);
}

TEST(TopPorts, HeadMatchesNmapOrder) {
  auto ports = top_tcp_ports(5);
  ASSERT_EQ(ports.size(), 5u);
  EXPECT_EQ(ports[0], 80);
  EXPECT_EQ(ports[1], 23);
  EXPECT_EQ(ports[2], 443);
}

TEST(TopPorts, FullThousandUniquePorts) {
  auto ports = top_tcp_ports(1000);
  EXPECT_EQ(ports.size(), 1000u);
  std::set<uint16_t> unique(ports.begin(), ports.end());
  EXPECT_EQ(unique.size(), 1000u);
}

TEST(TopPorts, RequestBeyondSupportedStillUnique) {
  auto ports = top_tcp_ports(4000);
  std::set<uint16_t> unique(ports.begin(), ports.end());
  EXPECT_EQ(unique.size(), ports.size());
}

TEST(ClassifyDns, ForgedSetDetection) {
  proto::dns::QueryResult result;
  result.outcome = proto::dns::QueryOutcome::Answered;
  proto::dns::Message resp;
  resp.header.qr = true;
  resp.answers.push_back(proto::dns::ResourceRecord::a(
      proto::dns::Name("x.com"), common::Ipv4Address(8, 7, 198, 45)));
  result.response = resp;
  std::set<uint32_t> forged{common::Ipv4Address(8, 7, 198, 45).value()};
  auto verdict = classify_dns(result, forged, nullptr);
  ASSERT_TRUE(verdict);
  EXPECT_EQ(verdict->first, Verdict::BlockedDnsForgery);
}

TEST(ClassifyDns, PrivateAddressIsForgery) {
  proto::dns::QueryResult result;
  result.outcome = proto::dns::QueryOutcome::Answered;
  proto::dns::Message resp;
  resp.answers.push_back(proto::dns::ResourceRecord::a(
      proto::dns::Name("x.com"), common::Ipv4Address(192, 168, 1, 1)));
  result.response = resp;
  auto verdict = classify_dns(result, {}, nullptr);
  ASSERT_TRUE(verdict);
  EXPECT_EQ(verdict->first, Verdict::BlockedDnsForgery);
}

TEST(ClassifyDns, TimeoutAndNxdomain) {
  proto::dns::QueryResult timeout;
  auto v1 = classify_dns(timeout, {}, nullptr);
  ASSERT_TRUE(v1);
  EXPECT_EQ(v1->first, Verdict::BlockedTimeout);

  proto::dns::QueryResult nx;
  nx.outcome = proto::dns::QueryOutcome::Answered;
  proto::dns::Message resp;
  resp.header.rcode = proto::dns::Rcode::NxDomain;
  nx.response = resp;
  auto v2 = classify_dns(nx, {}, nullptr);
  ASSERT_TRUE(v2);
  EXPECT_EQ(v2->first, Verdict::Inconclusive);
}

TEST(ClassifyDns, CleanAnswerPassesAddressOut) {
  proto::dns::QueryResult ok;
  ok.outcome = proto::dns::QueryOutcome::Answered;
  proto::dns::Message resp;
  resp.answers.push_back(proto::dns::ResourceRecord::a(
      proto::dns::Name("x.com"), common::Ipv4Address(198, 18, 0, 80)));
  ok.response = resp;
  common::Ipv4Address addr;
  EXPECT_FALSE(classify_dns(ok, {}, &addr));
  EXPECT_EQ(addr, common::Ipv4Address(198, 18, 0, 80));
}

TEST(ScanProbeDetail, PortStatesTracked) {
  Testbed tb;
  ScanOptions opts;
  opts.target = tb.addr().web_open;
  opts.ports = {80, 81, 82};
  opts.expected_open = {80};
  ScanProbe probe(tb, opts);
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable);
  EXPECT_EQ(probe.port_states().at(80), PortState::Open);
  // 81/82: RST from the host's stack (closed, not filtered).
  EXPECT_EQ(probe.port_states().at(81), PortState::Closed);
  EXPECT_EQ(probe.port_states().at(82), PortState::Closed);
  EXPECT_EQ(report.packets_sent, 3u);
}

TEST(ScanProbeDetail, FilteredVsClosedDistinguished) {
  TestbedConfig cfg;
  cfg.policy.blocked_ports.push_back({TestbedAddresses{}.web_blocked, 80});
  Testbed tb(cfg);
  ScanOptions opts;
  opts.target = tb.addr().web_blocked;
  opts.ports = {80, 81};
  opts.expected_open = {80};
  ScanProbe probe(tb, opts);
  run_probe(tb, probe);
  EXPECT_EQ(probe.port_states().at(80), PortState::Filtered);  // censored
  EXPECT_EQ(probe.port_states().at(81), PortState::Closed);    // host RST
}

TEST(DdosProbeDetail, PerSampleAccounting) {
  Testbed tb;
  DdosProbe probe(tb, {.domain = "open.example", .requests = 6});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.samples, 6u);
  EXPECT_EQ(probe.sample_verdicts().size(), 6u);
  EXPECT_EQ(report.samples_blocked, 0u);
}

TEST(SpamProbeDetail, MessageIsSpamScorable) {
  Testbed tb;
  SpamProbe probe(tb, {.domain = "open.example"});
  EXPECT_FALSE(probe.message().empty());
  EXPECT_NE(probe.message().find("postmaster@open.example"),
            std::string::npos);
}

TEST(RiskModel, UniformAttributionWithoutSignal) {
  Testbed tb;  // nothing ran: no alerts at all
  RiskReport r = assess_risk(tb, "idle");
  EXPECT_TRUE(r.evaded);
  EXPECT_FALSE(r.investigated);
  size_t as_size = tb.client_as_addresses().size();
  EXPECT_DOUBLE_EQ(r.attribution_probability,
                   1.0 / static_cast<double>(as_size));
}

TEST(RiskModel, OvertSignalConcentratesAttribution) {
  Testbed tb;
  OvertHttpProbe probe(tb, {.domain = "open.example",
                            .user_agent = "OONI-Probe/2.0"});
  run_probe(tb, probe);
  RiskReport r = assess_risk(tb, "overt");
  EXPECT_FALSE(r.evaded);
  // All suspicion in the AS belongs to the client.
  EXPECT_NEAR(r.attribution_probability, 1.0, 1e-9);
}

TEST(RiskModel, ReportRendering) {
  RiskReport r;
  r.technique = "scan";
  r.evaded = true;
  std::string s = r.to_string();
  EXPECT_NE(s.find("scan"), std::string::npos);
  EXPECT_NE(s.find("evaded=yes"), std::string::npos);
}

TEST(TestbedConfigTest, SavBlocksOutOfScopeSpoofs) {
  TestbedConfig cfg;
  cfg.enable_sav = true;
  cfg.sav_distribution = spoof::SavDistribution{0.0, 0.0, 0.0};  // strict
  Testbed tb(cfg);
  // Spoof a neighbor from the client: strict SAV drops it at ingress.
  tb.client->send(packet::make_udp(tb.neighbors[0]->address(),
                                   tb.addr().dns, 1000, 53,
                                   common::to_bytes("x")));
  tb.run_for(common::Duration::millis(10));
  EXPECT_EQ(tb.router->counters().dropped_ingress, 1u);
}

TEST(TestbedConfigTest, RunUntilTimesOut) {
  Testbed tb;
  bool never = false;
  EXPECT_FALSE(tb.run_until([&]() { return never; },
                            common::Duration::millis(100)));
}

TEST(TestbedConfigTest, AddressHelpers) {
  Testbed tb;
  auto all = tb.client_as_addresses();
  auto neighbors = tb.neighbor_addresses();
  EXPECT_EQ(all.size(), neighbors.size() + 1);
  EXPECT_EQ(all.front(), tb.addr().client);
}

}  // namespace
}  // namespace sm::core
