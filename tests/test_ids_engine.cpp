#include <gtest/gtest.h>

#include "ids/engine.hpp"
#include "packet/packet.hpp"

namespace sm::ids {
namespace {

using common::Duration;
using common::Ipv4Address;
using common::SimTime;
using packet::TcpFlags;

const Ipv4Address kSrc(10, 0, 0, 1);
const Ipv4Address kDst(192, 0, 2, 80);

struct PacketBox {
  common::Bytes storage;
  packet::Decoded decoded;
};

PacketBox tcp(uint16_t sp, uint16_t dp, uint8_t flags, uint32_t seq,
              std::string_view payload, Ipv4Address src = kSrc,
              Ipv4Address dst = kDst) {
  PacketBox box;
  packet::Packet p = packet::make_tcp(
      src, dst, sp, dp, flags, seq, flags & TcpFlags::kAck ? 1 : 0,
      common::to_bytes(payload));
  box.storage = p.data();
  box.decoded = *packet::decode(box.storage);
  return box;
}

PacketBox udp(uint16_t sp, uint16_t dp, std::string_view payload) {
  PacketBox box;
  packet::Packet p = packet::make_udp(kSrc, kDst, sp, dp,
                                      common::to_bytes(payload));
  box.storage = p.data();
  box.decoded = *packet::decode(box.storage);
  return box;
}

TEST(Engine, ContentAlertFires) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (msg:\"kw\"; content:\"falun\"; "
      "nocase; sid:1;)");
  auto box = tcp(1000, 80, TcpFlags::kAck, 10, "about FALUN gong");
  auto v = e.process(SimTime(0), box.decoded);
  ASSERT_EQ(v.alerts.size(), 1u);
  EXPECT_EQ(v.alerts[0].sid, 1u);
  EXPECT_FALSE(v.drop);
}

TEST(Engine, NoMatchNoAlert) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (content:\"falun\"; sid:1;)");
  auto box = tcp(1000, 80, TcpFlags::kAck, 10, "innocuous");
  EXPECT_TRUE(e.process(SimTime(0), box.decoded).alerts.empty());
}

TEST(Engine, ProtoMismatchSkipsRule) {
  Engine e = Engine::from_text(
      "alert udp any any -> any any (content:\"x\"; sid:1;)");
  auto box = tcp(1000, 80, TcpFlags::kAck, 10, "x");
  EXPECT_TRUE(e.process(SimTime(0), box.decoded).alerts.empty());
}

TEST(Engine, PortFilterApplies) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any 80 (content:\"x\"; sid:1;)");
  auto hit = tcp(1000, 80, TcpFlags::kAck, 10, "x");
  auto miss = tcp(1000, 443, TcpFlags::kAck, 10, "x");
  EXPECT_EQ(e.process(SimTime(0), hit.decoded).alerts.size(), 1u);
  EXPECT_TRUE(e.process(SimTime(0), miss.decoded).alerts.empty());
}

TEST(Engine, BidirectionalMatchesBothWays) {
  Engine e = Engine::from_text(
      "alert tcp 10.0.0.1 any <> any 80 (content:\"x\"; sid:1;)");
  auto fwd = tcp(1000, 80, TcpFlags::kAck, 10, "x");
  auto rev = tcp(80, 1000, TcpFlags::kAck, 10, "x", kDst, kSrc);
  EXPECT_EQ(e.process(SimTime(0), fwd.decoded).alerts.size(), 1u);
  EXPECT_EQ(e.process(SimTime(0), rev.decoded).alerts.size(), 1u);
}

TEST(Engine, DropRuleSetsDropVerdict) {
  Engine e = Engine::from_text(
      "drop ip any any -> 192.0.2.80 any (msg:\"null-route\"; sid:1;)");
  auto box = tcp(1000, 80, TcpFlags::kSyn, 0, "");
  auto v = e.process(SimTime(0), box.decoded);
  EXPECT_TRUE(v.drop);
  EXPECT_FALSE(v.reject);
  ASSERT_EQ(v.alerts.size(), 1u);
}

TEST(Engine, RejectRuleSetsRejectVerdict) {
  Engine e = Engine::from_text(
      "reject tcp any any -> any any (content:\"falun\"; sid:1;)");
  auto box = tcp(1000, 80, TcpFlags::kAck, 10, "falun");
  auto v = e.process(SimTime(0), box.decoded);
  EXPECT_TRUE(v.drop);
  EXPECT_TRUE(v.reject);
}

TEST(Engine, PassRuleShortCircuits) {
  Engine e = Engine::from_text(
      "pass tcp 10.0.0.1 any -> any any (sid:1;)\n"
      "alert tcp any any -> any any (content:\"falun\"; sid:2;)\n");
  auto box = tcp(1000, 80, TcpFlags::kAck, 10, "falun");
  EXPECT_TRUE(e.process(SimTime(0), box.decoded).alerts.empty());
}

TEST(Engine, FlagsExactMatch) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (flags:S; sid:1;)");
  auto syn = tcp(1, 80, TcpFlags::kSyn, 0, "");
  auto synack = tcp(1, 80, TcpFlags::kSyn | TcpFlags::kAck, 0, "");
  EXPECT_EQ(e.process(SimTime(0), syn.decoded).alerts.size(), 1u);
  EXPECT_TRUE(e.process(SimTime(0), synack.decoded).alerts.empty());
}

TEST(Engine, FlagsPlusAllowsOthers) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (flags:S+; sid:1;)");
  auto synack = tcp(1, 80, TcpFlags::kSyn | TcpFlags::kAck, 0, "");
  EXPECT_EQ(e.process(SimTime(0), synack.decoded).alerts.size(), 1u);
}

TEST(Engine, DsizeFilters) {
  Engine e = Engine::from_text(
      "alert udp any any -> any any (dsize:>5; sid:1;)");
  auto small = udp(1, 2, "abc");
  auto large = udp(1, 2, "abcdefgh");
  EXPECT_TRUE(e.process(SimTime(0), small.decoded).alerts.empty());
  EXPECT_EQ(e.process(SimTime(0), large.decoded).alerts.size(), 1u);
}

TEST(Engine, FlowEstablishedRequiresHandshake) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (flow:established; content:\"x\"; "
      "sid:1;)");
  // Payload before handshake completes: no alert.
  auto data1 = tcp(1000, 80, TcpFlags::kAck, 1, "x");
  EXPECT_TRUE(e.process(SimTime(0), data1.decoded).alerts.empty());

  // Full handshake, then payload: alert.
  Engine e2 = Engine::from_text(
      "alert tcp any any -> any any (flow:established; content:\"x\"; "
      "sid:1;)");
  auto syn = tcp(1000, 80, TcpFlags::kSyn, 100, "");
  auto synack = tcp(80, 1000, TcpFlags::kSyn | TcpFlags::kAck, 500, "",
                    kDst, kSrc);
  auto ack = tcp(1000, 80, TcpFlags::kAck, 101, "");
  e2.process(SimTime(0), syn.decoded);
  e2.process(SimTime(1), synack.decoded);
  e2.process(SimTime(2), ack.decoded);
  auto data2 = tcp(1000, 80, TcpFlags::kAck, 101, "x");
  EXPECT_EQ(e2.process(SimTime(3), data2.decoded).alerts.size(), 1u);
}

TEST(Engine, FlowDirectionFilters) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (flow:to_client; content:\"srv\"; "
      "sid:1;)");
  auto syn = tcp(1000, 80, TcpFlags::kSyn, 100, "");
  e.process(SimTime(0), syn.decoded);
  // to_server payload should not match a to_client rule.
  auto req = tcp(1000, 80, TcpFlags::kAck, 101, "srv");
  EXPECT_TRUE(e.process(SimTime(1), req.decoded).alerts.empty());
  // Server->client payload matches.
  auto resp = tcp(80, 1000, TcpFlags::kAck, 500, "srv", kDst, kSrc);
  EXPECT_EQ(e.process(SimTime(2), resp.decoded).alerts.size(), 1u);
}

TEST(Engine, CrossPacketKeywordViaReassembly) {
  // The keyword is split across two segments; only stream matching
  // catches it. This is the GFC reassembly behaviour [10, 26].
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (content:\"falun\"; sid:1;)");
  auto syn = tcp(1000, 80, TcpFlags::kSyn, 100, "");
  e.process(SimTime(0), syn.decoded);
  auto part1 = tcp(1000, 80, TcpFlags::kAck, 101, "GET /fal");
  auto v1 = e.process(SimTime(1), part1.decoded);
  EXPECT_TRUE(v1.alerts.empty());
  auto part2 = tcp(1000, 80, TcpFlags::kAck, 109, "un HTTP/1.1");
  auto v2 = e.process(SimTime(2), part2.decoded);
  ASSERT_EQ(v2.alerts.size(), 1u);
}

TEST(Engine, StreamMatchFiresOncePerFlow) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (content:\"falun\"; sid:1;)");
  auto syn = tcp(1000, 80, TcpFlags::kSyn, 100, "");
  e.process(SimTime(0), syn.decoded);
  auto part1 = tcp(1000, 80, TcpFlags::kAck, 101, "fal");
  auto part2 = tcp(1000, 80, TcpFlags::kAck, 104, "un");
  e.process(SimTime(1), part1.decoded);
  auto v = e.process(SimTime(2), part2.decoded);
  EXPECT_EQ(v.alerts.size(), 1u);
  // Later small segments that still "contain" the keyword via the buffer
  // do not re-fire.
  auto part3 = tcp(1000, 80, TcpFlags::kAck, 106, "!");
  auto v3 = e.process(SimTime(3), part3.decoded);
  EXPECT_TRUE(v3.alerts.empty());
}

TEST(Engine, ThresholdLimitCapsAlertsPerWindow) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (flags:S; threshold:type limit, track "
      "by_src, count 2, seconds 10; sid:1;)");
  int alerts = 0;
  for (int i = 0; i < 5; ++i) {
    auto box = tcp(static_cast<uint16_t>(1000 + i), 80, TcpFlags::kSyn, 0,
                   "");
    alerts += static_cast<int>(
        e.process(SimTime(i), box.decoded).alerts.size());
  }
  EXPECT_EQ(alerts, 2);
}

TEST(Engine, ThresholdBothFiresOnceAtCount) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (flags:S; threshold:type both, track "
      "by_src, count 3, seconds 10; sid:1;)");
  std::vector<size_t> per_packet;
  for (int i = 0; i < 5; ++i) {
    auto box = tcp(static_cast<uint16_t>(1000 + i), 80, TcpFlags::kSyn, 0,
                   "");
    per_packet.push_back(e.process(SimTime(i), box.decoded).alerts.size());
  }
  EXPECT_EQ(per_packet, (std::vector<size_t>{0, 0, 1, 0, 0}));
}

TEST(Engine, ThresholdWindowResets) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (flags:S; threshold:type both, track "
      "by_src, count 2, seconds 1; sid:1;)");
  auto mk = [&](int i) {
    return tcp(static_cast<uint16_t>(1000 + i), 80, TcpFlags::kSyn, 0, "");
  };
  auto b0 = mk(0);
  auto b1 = mk(1);
  EXPECT_EQ(e.process(SimTime(0), b0.decoded).alerts.size(), 0u);
  EXPECT_EQ(e.process(SimTime(1), b1.decoded).alerts.size(), 1u);
  // A new window far in the future starts the count over.
  auto b2 = mk(2);
  auto b3 = mk(3);
  SimTime later(Duration::seconds(100).count());
  EXPECT_EQ(e.process(later, b2.decoded).alerts.size(), 0u);
  EXPECT_EQ(e.process(later + Duration::millis(10), b3.decoded)
                .alerts.size(),
            1u);
}

TEST(Engine, ThresholdTracksPerSource) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (flags:S; threshold:type both, track "
      "by_src, count 2, seconds 10; sid:1;)");
  // Source A sends one SYN, source B sends one SYN: neither reaches 2.
  auto a = tcp(1000, 80, TcpFlags::kSyn, 0, "", Ipv4Address(10, 0, 0, 1));
  auto b = tcp(1000, 80, TcpFlags::kSyn, 0, "", Ipv4Address(10, 0, 0, 2));
  EXPECT_TRUE(e.process(SimTime(0), a.decoded).alerts.empty());
  EXPECT_TRUE(e.process(SimTime(1), b.decoded).alerts.empty());
}

TEST(Engine, MultipleRulesAllEvaluated) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (content:\"aaa\"; sid:1;)\n"
      "alert tcp any any -> any any (content:\"bbb\"; sid:2;)\n");
  auto box = tcp(1, 80, TcpFlags::kAck, 10, "aaa bbb");
  auto v = e.process(SimTime(0), box.decoded);
  ASSERT_EQ(v.alerts.size(), 2u);
  EXPECT_EQ(v.alerts[0].sid, 1u);
  EXPECT_EQ(v.alerts[1].sid, 2u);
}

TEST(Engine, DropStopsLaterRules) {
  Engine e = Engine::from_text(
      "drop tcp any any -> any any (content:\"x\"; sid:1;)\n"
      "alert tcp any any -> any any (content:\"x\"; sid:2;)\n");
  auto box = tcp(1, 80, TcpFlags::kAck, 10, "x");
  auto v = e.process(SimTime(0), box.decoded);
  ASSERT_EQ(v.alerts.size(), 1u);
  EXPECT_EQ(v.alerts[0].sid, 1u);
}

TEST(Engine, NegatedContentRule) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any 25 (content:\"MAIL FROM\"; "
      "content:!\"legit\"; sid:1;)");
  // Distinct source ports: distinct flows (stream buffers are per flow).
  auto spam = tcp(1, 25, TcpFlags::kAck, 10, "MAIL FROM:<x@spam>");
  auto ham = tcp(2, 25, TcpFlags::kAck, 10, "MAIL FROM:<x@legit>");
  EXPECT_EQ(e.process(SimTime(0), spam.decoded).alerts.size(), 1u);
  EXPECT_TRUE(e.process(SimTime(0), ham.decoded).alerts.empty());
}

TEST(Engine, FromTextThrowsOnBadRuleset) {
  EXPECT_THROW(Engine::from_text("garbage here"), std::invalid_argument);
}

TEST(Engine, StatsAccumulate) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (content:\"x\"; sid:1;)");
  auto hit = tcp(1, 80, TcpFlags::kAck, 10, "x");
  auto miss = tcp(2, 80, TcpFlags::kAck, 10, "y");  // separate flow
  e.process(SimTime(0), hit.decoded);
  e.process(SimTime(1), miss.decoded);
  EXPECT_EQ(e.stats().packets, 2u);
  EXPECT_EQ(e.stats().alerts, 1u);
}

TEST(Engine, AlertCarriesEndpoints) {
  Engine e = Engine::from_text(
      "alert tcp any any -> any any (content:\"x\"; sid:7;)");
  auto box = tcp(1234, 80, TcpFlags::kAck, 10, "x");
  auto v = e.process(SimTime(0), box.decoded);
  ASSERT_EQ(v.alerts.size(), 1u);
  EXPECT_EQ(v.alerts[0].src, kSrc);
  EXPECT_EQ(v.alerts[0].dst, kDst);
  EXPECT_EQ(v.alerts[0].src_port, 1234);
  EXPECT_EQ(v.alerts[0].dst_port, 80);
  EXPECT_FALSE(v.alerts[0].to_string().empty());
}

}  // namespace
}  // namespace sm::ids
