#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "ids/matcher.hpp"

namespace sm::ids {
namespace {

using common::Bytes;
using common::to_bytes;

TEST(PatternMatcher, FindsSubstring) {
  PatternMatcher m("needle", false);
  Bytes hay = to_bytes("hay needle stack");
  EXPECT_EQ(m.find(hay), 4u);
}

TEST(PatternMatcher, MissReturnsNpos) {
  PatternMatcher m("needle", false);
  Bytes hay = to_bytes("hay stack only");
  EXPECT_EQ(m.find(hay), PatternMatcher::npos);
}

TEST(PatternMatcher, CaseSensitivityRespected) {
  PatternMatcher cs("Falun", false);
  PatternMatcher ci("Falun", true);
  Bytes hay = to_bytes("about FALUN gong");
  EXPECT_EQ(cs.find(hay), PatternMatcher::npos);
  EXPECT_EQ(ci.find(hay), 6u);
}

TEST(PatternMatcher, MatchAtStartAndEnd) {
  PatternMatcher m("ab", false);
  EXPECT_EQ(m.find(to_bytes("abxx")), 0u);
  EXPECT_EQ(m.find(to_bytes("xxab")), 2u);
  EXPECT_EQ(m.find(to_bytes("ab")), 0u);
}

TEST(PatternMatcher, SingleByte) {
  PatternMatcher m("x", false);
  EXPECT_EQ(m.find(to_bytes("aaxa")), 2u);
  EXPECT_EQ(m.find(to_bytes("aaaa")), PatternMatcher::npos);
}

TEST(PatternMatcher, EmptyPatternMatchesAtZero) {
  PatternMatcher m("", false);
  EXPECT_EQ(m.find(to_bytes("anything")), 0u);
}

TEST(PatternMatcher, HaystackShorterThanPattern) {
  PatternMatcher m("longpattern", false);
  EXPECT_EQ(m.find(to_bytes("short")), PatternMatcher::npos);
}

TEST(PatternMatcher, BinaryBytes) {
  std::string pattern("\x00\xFF\x7F", 3);
  PatternMatcher m(pattern, false);
  Bytes hay{0x01, 0x00, 0xFF, 0x7F, 0x02};
  EXPECT_EQ(m.find(hay), 1u);
}

TEST(PatternMatcher, RepeatedPrefixPattern) {
  PatternMatcher m("aaab", false);
  EXPECT_EQ(m.find(to_bytes("aaaaaab")), 3u);
}

TEST(ContentMatches, OffsetRestrictsStart) {
  ContentMatch cm;
  cm.pattern = "abc";
  cm.offset = 5;
  PatternMatcher m(cm.pattern, false);
  EXPECT_FALSE(content_matches(cm, m, to_bytes("abcxxxxx")));
  EXPECT_TRUE(content_matches(cm, m, to_bytes("xxxxxabc")));
}

TEST(ContentMatches, DepthRestrictsWindow) {
  ContentMatch cm;
  cm.pattern = "abc";
  cm.depth = 5;
  PatternMatcher m(cm.pattern, false);
  EXPECT_TRUE(content_matches(cm, m, to_bytes("xxabczz")));
  EXPECT_FALSE(content_matches(cm, m, to_bytes("xxxxxabc")));
}

TEST(ContentMatches, OffsetPlusDepth) {
  ContentMatch cm;
  cm.pattern = "abc";
  cm.offset = 2;
  cm.depth = 3;
  PatternMatcher m(cm.pattern, false);
  EXPECT_TRUE(content_matches(cm, m, to_bytes("xxabcyy")));
  EXPECT_FALSE(content_matches(cm, m, to_bytes("abcxxyy")));
  EXPECT_FALSE(content_matches(cm, m, to_bytes("xxxabcy")));
}

TEST(ContentMatches, NegationInverts) {
  ContentMatch cm;
  cm.pattern = "bad";
  cm.negated = true;
  PatternMatcher m(cm.pattern, false);
  EXPECT_TRUE(content_matches(cm, m, to_bytes("all good")));
  EXPECT_FALSE(content_matches(cm, m, to_bytes("bad stuff")));
}

TEST(ContentMatches, OffsetBeyondPayload) {
  ContentMatch cm;
  cm.pattern = "x";
  cm.offset = 100;
  PatternMatcher m(cm.pattern, false);
  EXPECT_FALSE(content_matches(cm, m, to_bytes("short")));
  // Negated: no match found => true.
  cm.negated = true;
  EXPECT_TRUE(content_matches(cm, m, to_bytes("short")));
}

// Property sweep: BMH agrees with std::string::find on random inputs.
class BmhVsStdFind : public ::testing::TestWithParam<int> {};

TEST_P(BmhVsStdFind, AgreesOnRandomInputs) {
  common::Rng rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 200; ++iter) {
    size_t hay_len = 1 + rng.bounded(64);
    size_t pat_len = 1 + rng.bounded(6);
    std::string hay, pat;
    for (size_t i = 0; i < hay_len; ++i)
      hay.push_back(static_cast<char>('a' + rng.bounded(3)));
    for (size_t i = 0; i < pat_len; ++i)
      pat.push_back(static_cast<char>('a' + rng.bounded(3)));
    PatternMatcher m(pat, false);
    size_t expected = hay.find(pat);
    size_t actual = m.find(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t*>(hay.data()), hay.size()));
    if (expected == std::string::npos) {
      EXPECT_EQ(actual, PatternMatcher::npos) << hay << " / " << pat;
    } else {
      EXPECT_EQ(actual, expected) << hay << " / " << pat;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BmhVsStdFind, ::testing::Range(1, 6));

}  // namespace
}  // namespace sm::ids
