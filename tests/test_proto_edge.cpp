// Protocol edge cases: HTTP POST round trips, keep-alive reuse, DNS
// CNAME chasing and multi-record answers, SMTP size/ordering corners.
#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "proto/dns/client.hpp"
#include "proto/dns/server.hpp"
#include "proto/http/client.hpp"
#include "proto/http/server.hpp"
#include "proto/smtp/client.hpp"
#include "proto/smtp/server.hpp"

namespace sm::proto {
namespace {

using common::Duration;
using common::Ipv4Address;

class ProtoEdgeTest : public ::testing::Test {
 protected:
  ProtoEdgeTest() {
    client_host_ = net_.add_host("c", Ipv4Address(10, 0, 0, 1));
    server_host_ = net_.add_host("s", Ipv4Address(10, 0, 0, 2));
    router_ = net_.add_router("r");
    net_.connect(client_host_, router_);
    net_.connect(server_host_, router_);
    client_stack_ = std::make_unique<tcp::Stack>(*client_host_);
    server_stack_ = std::make_unique<tcp::Stack>(*server_host_);
  }
  netsim::Network net_;
  netsim::Host* client_host_;
  netsim::Host* server_host_;
  netsim::Router* router_;
  std::unique_ptr<tcp::Stack> client_stack_;
  std::unique_ptr<tcp::Stack> server_stack_;
};

TEST_F(ProtoEdgeTest, HttpPostBodyReachesHandler) {
  http::Server server(*server_stack_, 80);
  std::string seen_body;
  server.route("/submit", [&](const http::Request& req) {
    seen_body = req.body;
    return http::Response::ok("accepted");
  });
  http::Client client(*client_stack_);
  http::Request req;
  req.method = "POST";
  req.target = "/submit";
  req.headers.emplace_back("Host", "s");
  req.headers.emplace_back("Connection", "close");
  req.body = "key=value&other=1";
  std::optional<http::FetchResult> result;
  client.fetch(server_host_->address(), 80, req,
               [&](const http::FetchResult& r) { result = r; });
  net_.run_for(Duration::seconds(2));
  ASSERT_TRUE(result && result->ok());
  EXPECT_EQ(seen_body, "key=value&other=1");
  EXPECT_EQ(result->response->body, "accepted");
}

TEST_F(ProtoEdgeTest, HttpKeepAliveServesSecondRequestOnSameConnection) {
  http::Server server(*server_stack_, 80);
  server.route("/a", [](const http::Request&) {
    return http::Response::ok("first");
  });
  server.route("/b", [](const http::Request&) {
    return http::Response::ok("second");
  });
  // Drive the connection by hand: two pipelined keep-alive requests.
  std::string received;
  tcp::Connection* c = client_stack_->connect(server_host_->address(), 80);
  c->on_connect = [](tcp::Connection& conn) {
    conn.send_text("GET /a HTTP/1.1\r\nHost: s\r\n\r\n"
                   "GET /b HTTP/1.1\r\nHost: s\r\nConnection: close\r\n"
                   "\r\n");
  };
  c->on_data = [&](tcp::Connection&, std::span<const uint8_t> d) {
    received += common::to_string(d);
  };
  net_.run_for(Duration::seconds(2));
  EXPECT_NE(received.find("first"), std::string::npos);
  EXPECT_NE(received.find("second"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST_F(ProtoEdgeTest, DnsCnameChaseReturnsARecord) {
  dns::Zone zone;
  zone.add(dns::ResourceRecord::cname(dns::Name("www.example.com"),
                                      dns::Name("example.com")));
  zone.add(dns::ResourceRecord::a(dns::Name("example.com"),
                                  Ipv4Address(93, 184, 216, 34)));
  dns::Server server(*server_host_, std::move(zone));
  dns::Client client(*client_host_, server_host_->address());
  std::optional<dns::QueryResult> result;
  client.query(dns::Name("www.example.com"), dns::RecordType::A,
               [&](const dns::QueryResult& r) { result = r; });
  net_.run_for(Duration::millis(200));
  ASSERT_TRUE(result && result->answered());
  // The chased A record is present alongside the CNAME.
  EXPECT_EQ(result->response->first_a(), Ipv4Address(93, 184, 216, 34));
  EXPECT_EQ(result->response->answers.size(), 2u);
}

TEST_F(ProtoEdgeTest, DnsMultipleARecordsAllReturned) {
  dns::Zone zone;
  zone.add(dns::ResourceRecord::a(dns::Name("multi.example"),
                                  Ipv4Address(1, 1, 1, 1)));
  zone.add(dns::ResourceRecord::a(dns::Name("multi.example"),
                                  Ipv4Address(2, 2, 2, 2)));
  dns::Server server(*server_host_, std::move(zone));
  dns::Client client(*client_host_, server_host_->address());
  std::optional<dns::QueryResult> result;
  client.query(dns::Name("multi.example"), dns::RecordType::A,
               [&](const dns::QueryResult& r) { result = r; });
  net_.run_for(Duration::millis(200));
  ASSERT_TRUE(result && result->answered());
  EXPECT_EQ(result->response->answers.size(), 2u);
}

TEST_F(ProtoEdgeTest, DnsEmptyAnswerForExistingNameWrongType) {
  dns::Zone zone;
  zone.add(dns::ResourceRecord::a(dns::Name("a-only.example"),
                                  Ipv4Address(1, 1, 1, 1)));
  dns::Server server(*server_host_, std::move(zone));
  dns::Client client(*client_host_, server_host_->address());
  std::optional<dns::QueryResult> result;
  client.query(dns::Name("a-only.example"), dns::RecordType::MX,
               [&](const dns::QueryResult& r) { result = r; });
  net_.run_for(Duration::millis(200));
  ASSERT_TRUE(result && result->answered());
  // NOERROR with zero answers — distinct from NXDOMAIN.
  EXPECT_EQ(result->response->header.rcode, dns::Rcode::NoError);
  EXPECT_TRUE(result->response->answers.empty());
}

TEST_F(ProtoEdgeTest, SmtpLargeMessageBody) {
  smtp::Server server(*server_stack_, "mx.example");
  smtp::Client client(*client_stack_);
  std::string body = "Subject: big\r\n\r\n";
  for (int i = 0; i < 500; ++i)
    body += "line " + std::to_string(i) + " of a long message\r\n";
  smtp::Envelope env;
  env.mail_from = "<a@b>";
  env.rcpt_to = "<c@d>";
  env.data = body;
  std::optional<smtp::DeliveryResult> result;
  client.deliver(server_host_->address(), env,
                 [&](const smtp::DeliveryResult& r) { result = r; });
  net_.run_for(Duration::seconds(10));
  ASSERT_TRUE(result && result->delivered());
  ASSERT_EQ(server.message_count(), 1u);
  EXPECT_NE(server.messages()[0].data.find("line 499"), std::string::npos);
}

TEST_F(ProtoEdgeTest, SmtpMultipleRecipients) {
  smtp::Server server(*server_stack_, "mx.example");
  // Manual session: two RCPT TO commands.
  std::vector<std::string> script{
      "HELO x\r\n", "MAIL FROM:<a@b>\r\n", "RCPT TO:<one@d>\r\n",
      "RCPT TO:<two@d>\r\n", "DATA\r\n", "Subject: hi\r\n\r\nbody\r\n.\r\n",
      "QUIT\r\n"};
  size_t next = 0;
  tcp::Connection* c = client_stack_->connect(server_host_->address(), 25);
  c->on_data = [&](tcp::Connection& conn, std::span<const uint8_t>) {
    if (next < script.size()) conn.send_text(script[next++]);
  };
  net_.run_for(Duration::seconds(3));
  ASSERT_EQ(server.message_count(), 1u);
  EXPECT_EQ(server.messages()[0].rcpt_to.size(), 2u);
}

TEST_F(ProtoEdgeTest, HttpParserHeaderCaseAndWhitespace) {
  http::Parser p;
  p.feed("GET / HTTP/1.1\r\ncOnTeNt-LeNgTh:   3  \r\n\r\nabc");
  auto req = p.next_request();
  ASSERT_TRUE(req);
  EXPECT_EQ(req->body, "abc");
  EXPECT_EQ(http::find_header(req->headers, "Content-Length"), "3");
}

TEST_F(ProtoEdgeTest, HttpZeroLengthBody) {
  http::Parser p;
  p.feed("HTTP/1.1 204 No-Content\r\nContent-Length: 0\r\n\r\n");
  auto resp = p.next_response();
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp->status, 204);
  EXPECT_TRUE(resp->body.empty());
}

}  // namespace
}  // namespace sm::proto
