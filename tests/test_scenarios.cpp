// Cross-cutting scenarios: blackout expiry, censor mechanism interplay,
// MVR behaviour under background load, scheduler platform runs, and
// verdict coverage for blockpage censors across probes.
#include <gtest/gtest.h>

#include "core/background.hpp"
#include "core/ddos.hpp"
#include "core/overt.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scheduler.hpp"
#include "core/synprobe.hpp"

namespace sm::core {
namespace {

using common::Duration;

TEST(Blackout, ExpiresAfterConfiguredWindow) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.flow_blackout = Duration::seconds(5);
  Testbed tb(cfg);

  // Trigger the keyword censor on a raw flow.
  auto send_keyword = [&]() {
    tb.client->send(packet::make_tcp(
        tb.addr().client, tb.addr().web_blocked, 6000, 80,
        packet::TcpFlags::kAck, 1000, 1,
        common::to_bytes("GET /?q=falun HTTP/1.1\r\n\r\n")));
  };
  send_keyword();
  tb.run_for(Duration::millis(50));
  ASSERT_EQ(tb.censor_tap->stats().rst_bursts, 1u);

  // Within the blackout, packets on the tuple are eaten silently.
  tb.client->send(packet::make_tcp(tb.addr().client, tb.addr().web_blocked,
                                   6000, 80, packet::TcpFlags::kAck, 1040,
                                   1, common::to_bytes("innocent")));
  tb.run_for(Duration::millis(50));
  EXPECT_GT(tb.censor_tap->stats().dropped_blackout, 0u);

  // After expiry the same tuple flows (and can trigger) again.
  tb.run_for(Duration::seconds(6));
  send_keyword();
  tb.run_for(Duration::millis(50));
  EXPECT_EQ(tb.censor_tap->stats().rst_bursts, 2u);
}

TEST(BlockpageProbes, DdosProbeIdentifiesBlockpage) {
  TestbedConfig cfg;
  cfg.policy = censor::CensorPolicy{};
  cfg.policy.blockpage_keywords = {"blocked.example"};
  Testbed tb(cfg);
  DdosProbe probe(tb, {.domain = "blocked.example", .requests = 8});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedBlockpage) << report.to_string();
  EXPECT_EQ(report.samples_blocked, 8u);
}

TEST(BlockpageProbes, RstCensorStillReportsRst) {
  // Both mechanisms configured: the RST keyword fires on the response
  // body path while the request path carries no blockpage keyword.
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.blockpage_keywords = {"not-in-this-request"};
  Testbed tb(cfg);
  OvertHttpProbe probe(tb, {.domain = "blocked.example"});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedRst) << report.to_string();
}

TEST(MvrUnderLoad, MeasurementSignalSurvivesBackgroundNoise) {
  // The overt probe's fingerprint is still flagged with 30 neighbors of
  // background traffic in the mix, and background users are not.
  TestbedConfig cfg;
  cfg.neighbor_count = 30;
  Testbed tb(cfg);
  BackgroundTraffic bg(tb);
  bg.schedule(Duration::seconds(10));
  OvertHttpProbe probe(tb, {.domain = "open.example",
                            .user_agent = "OONI-Probe/2.0"});
  run_probe(tb, probe);
  tb.run_for(Duration::seconds(12));
  EXPECT_GT(tb.mvr->targeted_alerts_for(tb.addr().client), 0u);
  for (const auto* n : tb.neighbors)
    EXPECT_EQ(tb.mvr->targeted_alerts_for(n->address()), 0u)
        << n->name();
}

TEST(MvrUnderLoad, AnalystRanksOvertClientFirst) {
  TestbedConfig cfg;
  cfg.neighbor_count = 10;
  Testbed tb(cfg);
  BackgroundTraffic bg(tb);
  bg.schedule(Duration::seconds(5));
  OvertHttpProbe probe(tb, {.domain = "blocked.example",
                            .user_agent = "OONI-Probe/2.0"});
  run_probe(tb, probe);
  tb.run_for(Duration::seconds(7));
  auto top = tb.mvr->analyst().top_suspects(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].user, tb.addr().client);
}

TEST(SchedulerScenario, MixedTechniquesOverOneTestbed) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.blocked_ips.push_back(TestbedAddresses{}.web_blocked);
  Testbed tb(cfg);
  MeasurementScheduler scheduler(tb);
  scheduler.enqueue([](Testbed& t) {
    return std::make_unique<SynReachabilityProbe>(
        t, SynReachabilityOptions{.target = t.addr().web_open, .port = 80});
  });
  scheduler.enqueue([](Testbed& t) {
    return std::make_unique<SynReachabilityProbe>(
        t,
        SynReachabilityOptions{.target = t.addr().web_blocked, .port = 80});
  });
  scheduler.enqueue([](Testbed& t) {
    return std::make_unique<OvertDnsProbe>(
        t, OvertDnsOptions{.domain = "youtube.com"});
  });
  auto reports = scheduler.run_all();
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].verdict, Verdict::Reachable);
  EXPECT_EQ(reports[1].verdict, Verdict::BlockedTimeout);
  EXPECT_EQ(reports[2].verdict, Verdict::BlockedDnsForgery);
}

TEST(SchedulerScenario, JitterIsDeterministicPerSeed) {
  auto run_with_seed = [](uint64_t seed) {
    Testbed tb;
    SchedulerOptions opts;
    opts.jitter_seed = seed;
    MeasurementScheduler scheduler(tb, opts);
    scheduler.enqueue([](Testbed& t) {
      return std::make_unique<OvertDnsProbe>(
          t, OvertDnsOptions{.domain = "open.example"});
    });
    scheduler.run_all();
    return tb.net.engine().now().count();
  };
  EXPECT_EQ(run_with_seed(1), run_with_seed(1));
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(DnsDropVsForge, MechanismsDistinguishable) {
  // A dropping DNS censor and a forging one produce different verdicts —
  // the taxonomy the verdict model exists for.
  TestbedConfig forge_cfg;
  forge_cfg.policy = censor::gfc_profile();
  Testbed forge_tb(forge_cfg);
  OvertDnsProbe forge_probe(forge_tb, {.domain = "twitter.com"});
  EXPECT_EQ(run_probe(forge_tb, forge_probe).verdict,
            Verdict::BlockedDnsForgery);

  TestbedConfig drop_cfg;
  drop_cfg.policy = censor::CensorPolicy{};
  drop_cfg.policy.dns_drop_keywords = {"twitter"};
  Testbed drop_tb(drop_cfg);
  OvertDnsProbe drop_probe(drop_tb, {.domain = "twitter.com"});
  EXPECT_EQ(run_probe(drop_tb, drop_probe, Duration::seconds(10)).verdict,
            Verdict::BlockedTimeout);
}

TEST(RiskAcrossTechniques, CensoredAccessSeparatedFromTargeted) {
  // An overt fetch whose *request* carries a censored keyword triggers
  // both a targeted (measurement-tool) alert and a censored-access alert
  // attributed to the client; the risk report keeps them apart.
  Testbed tb;
  OvertHttpProbe probe(tb, {.domain = "blocked.example",
                            .path = "/falun-news",
                            .user_agent = "OONI-Probe/2.0"});
  run_probe(tb, probe);
  RiskReport risk = assess_risk(tb, "overt-http");
  EXPECT_GT(risk.targeted_alerts, 0u);
  EXPECT_GT(risk.censored_access_alerts, 0u);
  EXPECT_FALSE(risk.evaded);
}

}  // namespace
}  // namespace sm::core
