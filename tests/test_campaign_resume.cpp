// Crash-safe campaign service, library level: checkpoint resume emits
// byte-identical output from any clean prefix (torn tails truncated and
// replayed, never merged), only missing trials re-execute, and the
// process-shard backend is byte-identical to the thread pool at any -j
// in both shard modes — with a worker death costing exactly its own
// trials. The end-to-end kill -9 variants (sm-campaignd + harness) live
// in tools/crash_harness.py, driven by `ci.sh resume`.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/workloads.hpp"
#include "common/recordio.hpp"
#include "core/overt.hpp"

using namespace sm;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "sm_resume_" + name + "_" +
         std::to_string(::getpid()) + ".ckpt";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Copies the meta record plus the first `keep` trial records of `src`
/// into a fresh checkpoint at `dst` — the on-disk state of a campaign
/// interrupted after `keep` trials.
void prefix_checkpoint(const std::string& src, const std::string& dst,
                       size_t keep) {
  common::RecordScan scan = common::scan_records(src, campaign::kCheckpointTag);
  ASSERT_TRUE(scan.ok()) << scan.error;
  ASSERT_GE(scan.records.size(), 1u + keep);
  common::RecordWriter writer;
  ASSERT_TRUE(writer.open(dst, campaign::kCheckpointTag, 0));
  for (size_t i = 0; i <= keep; ++i)  // record 0 is the meta
    ASSERT_TRUE(writer.append(scan.records[i]));
}

/// Byte offset of the end of frame `n` (counting the meta record as
/// frame 0) inside a checkpoint file's bytes.
size_t frame_end_offset(const std::string& bytes, size_t n) {
  size_t pos = 8;  // file header
  for (size_t i = 0; i <= n; ++i) {
    uint32_t len = static_cast<uint32_t>(uint8_t(bytes[pos])) << 24 |
                   static_cast<uint32_t>(uint8_t(bytes[pos + 1])) << 16 |
                   static_cast<uint32_t>(uint8_t(bytes[pos + 2])) << 8 |
                   static_cast<uint32_t>(uint8_t(bytes[pos + 3]));
    pos += 8 + len;
  }
  return pos;
}

// --- checkpoint resume ------------------------------------------------

TEST(CampaignResume, ResumeFromAnyPrefixIsByteIdentical) {
  auto trials = campaign::build_workload("synthetic:8");
  campaign::CampaignOptions options;
  options.threads = 2;

  campaign::CampaignResult ref = campaign::run(trials, options);
  ASSERT_EQ(ref.failures, 0u);
  const std::string ref_jsonl = ref.to_jsonl();
  const std::string ref_metrics = ref.metrics_json();

  // A checkpointing run changes nothing about the output...
  const std::string full = temp_path("full");
  campaign::CampaignOptions with_ckpt = options;
  with_ckpt.checkpoint_path = full;
  campaign::CampaignResult first = campaign::run(trials, with_ckpt);
  EXPECT_EQ(first.resumed, 0u);
  EXPECT_EQ(first.to_jsonl(), ref_jsonl);

  // ...and a resume from ANY clean prefix of its checkpoint — the state
  // after an interruption at any trial boundary — reproduces it exactly.
  for (size_t keep : {size_t{0}, size_t{1}, size_t{5}, trials.size()}) {
    const std::string prefix = temp_path("prefix" + std::to_string(keep));
    prefix_checkpoint(full, prefix, keep);
    campaign::CampaignOptions resume = options;
    resume.checkpoint_path = prefix;
    campaign::CampaignResult r = campaign::run(trials, resume);
    EXPECT_EQ(r.resumed, keep);
    EXPECT_EQ(r.to_jsonl(), ref_jsonl) << "resumed from " << keep;
    EXPECT_EQ(r.metrics_json(), ref_metrics) << "resumed from " << keep;
    size_t flagged = 0;
    for (const auto& t : r.trials)
      if (t.resumed) ++flagged;
    EXPECT_EQ(flagged, keep);
    std::remove(prefix.c_str());
  }
  std::remove(full.c_str());
}

TEST(CampaignResume, TornTailIsTruncatedAndReplayed) {
  auto trials = campaign::build_workload("synthetic:6");
  campaign::CampaignOptions options;
  options.threads = 2;
  const std::string full = temp_path("torn_src");
  campaign::CampaignOptions with_ckpt = options;
  with_ckpt.checkpoint_path = full;
  const std::string ref_jsonl = campaign::run(trials, with_ckpt).to_jsonl();

  // Cut the file 5 bytes into the frame of the third trial record — a
  // kill -9 landing mid-checkpoint-write.
  std::string bytes = read_file(full);
  size_t cut = frame_end_offset(bytes, 2) + 13;
  ASSERT_LT(cut, bytes.size());
  const std::string torn = temp_path("torn");
  {
    std::ofstream out(torn, std::ios::trunc | std::ios::binary);
    out << bytes.substr(0, cut);
  }
  campaign::CheckpointState state = campaign::load_checkpoint(torn);
  EXPECT_TRUE(state.torn);
  EXPECT_EQ(state.trials.size(), 2u);  // the two whole records survive

  campaign::CampaignOptions resume = options;
  resume.checkpoint_path = torn;
  campaign::CampaignResult r = campaign::run(trials, resume);
  EXPECT_EQ(r.resumed, 2u);
  EXPECT_EQ(r.to_jsonl(), ref_jsonl);
  // The file is whole again after the resume run.
  campaign::CheckpointState healed = campaign::load_checkpoint(torn);
  EXPECT_FALSE(healed.torn);
  EXPECT_EQ(healed.trials.size(), trials.size());
  std::remove(full.c_str());
  std::remove(torn.c_str());
}

TEST(CampaignResume, OnlyMissingTrialsExecute) {
  // Count actual probe constructions: a resume must re-run exactly the
  // trials the checkpoint does not cover.
  static std::atomic<size_t> constructions{0};
  constructions = 0;
  auto trials = campaign::build_workload("synthetic:6");
  for (auto& t : trials) {
    auto inner = t.factory;
    t.factory = [inner](core::Testbed& tb) {
      constructions.fetch_add(1, std::memory_order_relaxed);
      return inner(tb);
    };
  }
  campaign::CampaignOptions options;
  options.threads = 2;
  const std::string full = temp_path("count");
  options.checkpoint_path = full;
  size_t last_progress = 0;
  options.on_progress = [&](const campaign::Progress& p) {
    last_progress = p.completed;
  };
  campaign::run(trials, options);
  EXPECT_EQ(constructions.load(), trials.size());
  EXPECT_EQ(last_progress, trials.size());

  const std::string prefix = temp_path("count_prefix");
  prefix_checkpoint(full, prefix, 4);
  options.checkpoint_path = prefix;
  constructions = 0;
  last_progress = 0;
  campaign::CampaignResult r = campaign::run(trials, options);
  EXPECT_EQ(r.resumed, 4u);
  EXPECT_EQ(constructions.load(), trials.size() - 4);
  // Progress is campaign-wide: the resumed base counts.
  EXPECT_EQ(last_progress, trials.size());
  size_t flagged = 0;
  for (const auto& t : r.trials)
    if (t.resumed) ++flagged;
  EXPECT_EQ(flagged, 4u);
  std::remove(full.c_str());
  std::remove(prefix.c_str());
}

TEST(CampaignResume, ForeignCheckpointRefusesLoudly) {
  auto trials = campaign::build_workload("synthetic:4");
  campaign::CampaignOptions options;
  options.threads = 1;
  options.checkpoint_path = temp_path("foreign");
  campaign::run(trials, options);
  // Different seed → different campaign → the checkpoint must not be
  // silently reused (its records would be wrong-seed rows).
  options.campaign_seed ^= 1;
  EXPECT_THROW(campaign::run(trials, options), std::runtime_error);
  // Different workload (one more trial) → same refusal.
  options.campaign_seed ^= 1;
  auto more = campaign::build_workload("synthetic:5");
  EXPECT_THROW(campaign::run(more, options), std::runtime_error);
  std::remove(options.checkpoint_path.c_str());
}

TEST(CampaignResume, DeterministicFailureRowsAreCheckpointed) {
  // A throwing factory is deterministic: its error row is canonical
  // output, recorded and NOT re-run on resume.
  auto trials = campaign::build_workload("synthetic:4");
  trials[2].factory = [](core::Testbed&) {
    return std::unique_ptr<core::Probe>{};  // -> "probe factory returned null"
  };
  campaign::CampaignOptions options;
  options.threads = 2;
  options.checkpoint_path = temp_path("detfail");
  campaign::CampaignResult first = campaign::run(trials, options);
  EXPECT_EQ(first.failures, 1u);

  campaign::CheckpointState state =
      campaign::load_checkpoint(options.checkpoint_path);
  ASSERT_EQ(state.trials.size(), 4u);
  EXPECT_TRUE(state.trials.at(2).result.failed);

  campaign::CampaignResult second = campaign::run(trials, options);
  EXPECT_EQ(second.resumed, 4u);  // nothing re-ran, error row included
  EXPECT_EQ(second.to_jsonl(), first.to_jsonl());
  std::remove(options.checkpoint_path.c_str());
}

// --- process-shard backend: differential determinism ------------------

TEST(CampaignResume, ProcessBackendByteIdenticalToThreads) {
  auto trials = campaign::build_workload("synthetic:10");
  campaign::CampaignOptions base;
  base.threads = 1;
  const campaign::CampaignResult ref = campaign::run(trials, base);
  const std::string ref_jsonl = ref.to_jsonl();
  const std::string ref_metrics = ref.metrics_json();
  ASSERT_EQ(ref.failures, 0u);

  for (auto shard : {campaign::Shard::ByIndex, campaign::Shard::Dynamic}) {
    for (size_t threads : {size_t{1}, size_t{3}}) {
      for (auto backend :
           {campaign::Backend::Thread, campaign::Backend::Process}) {
        campaign::CampaignOptions options;
        options.threads = threads;
        options.shard = shard;
        options.backend = backend;
        campaign::CampaignResult r = campaign::run(trials, options);
        std::string what =
            (backend == campaign::Backend::Process ? "process" : "thread") +
            std::string(" -j") + std::to_string(threads) +
            (shard == campaign::Shard::Dynamic ? " dynamic" : " by-index");
        EXPECT_EQ(r.failures, 0u) << what;
        EXPECT_EQ(r.to_jsonl(), ref_jsonl) << what;
        EXPECT_EQ(r.metrics_json(), ref_metrics) << what;
        // Wall-clock telemetry still flows back from worker processes.
        if (backend == campaign::Backend::Process) {
          ASSERT_TRUE(r.telemetry);
          EXPECT_NE(r.telemetry->to_json().find(
                        "sm_campaign_worker_trials_total"),
                    std::string::npos)
              << what;
        }
      }
    }
  }
}

TEST(CampaignResume, ProcessBackendCheckpointResumesIntoThreadBackend) {
  // Backend choice is a runtime detail, not part of campaign identity:
  // a checkpoint written by process shards resumes under the thread
  // pool (and vice versa) to the same bytes.
  auto trials = campaign::build_workload("synthetic:8");
  campaign::CampaignOptions plain;
  plain.threads = 2;
  const std::string ref_jsonl = campaign::run(trials, plain).to_jsonl();

  const std::string path = temp_path("xbackend");
  campaign::CampaignOptions proc = plain;
  proc.backend = campaign::Backend::Process;
  proc.checkpoint_path = path;
  EXPECT_EQ(campaign::run(trials, proc).to_jsonl(), ref_jsonl);

  const std::string prefix = temp_path("xbackend_prefix");
  prefix_checkpoint(path, prefix, 3);
  campaign::CampaignOptions resume = plain;  // thread backend
  resume.checkpoint_path = prefix;
  campaign::CampaignResult r = campaign::run(trials, resume);
  EXPECT_EQ(r.resumed, 3u);
  EXPECT_EQ(r.to_jsonl(), ref_jsonl);
  std::remove(path.c_str());
  std::remove(prefix.c_str());
}

// --- process-shard backend: fault isolation ---------------------------

TEST(CampaignResume, WorkerDeathFailsOnlyItsOwnTrials) {
  // Trial 1's factory nukes its worker process outright — the strongest
  // version of "a trial crashed". Under ByIndex with two workers, worker
  // 1 owns the odd trials, so exactly those must fail; the even trials,
  // owned by worker 0, complete untouched. (Thread backend could never
  // survive this test — that asymmetry is the point of process shards.)
  auto trials = campaign::build_workload("synthetic:8");
  trials[1].factory = [](core::Testbed&) -> std::unique_ptr<core::Probe> {
    ::_exit(7);
  };
  campaign::CampaignOptions options;
  options.threads = 2;
  options.shard = campaign::Shard::ByIndex;
  options.backend = campaign::Backend::Process;
  campaign::CampaignResult r = campaign::run(trials, options);
  EXPECT_EQ(r.failures, 4u);
  for (size_t i = 0; i < r.trials.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_FALSE(r.trials[i].failed) << i;
    } else {
      EXPECT_TRUE(r.trials[i].failed) << i;
      EXPECT_NE(r.trials[i].error.find("worker 1 exited 7"),
                std::string::npos)
          << r.trials[i].error;
    }
  }
  // The failure rows serialize like any other error row.
  EXPECT_NE(r.to_jsonl().find("\"error\":\"worker 1 exited 7"),
            std::string::npos);
}

TEST(CampaignResume, WorkerCrashCasualtiesRerunOnResume) {
  // Crash losses are NOT checkpointed (unlike deterministic failures):
  // the resume re-runs them from their index-derived seeds and heals the
  // campaign to the bytes an uninterrupted run produces.
  auto good = campaign::build_workload("synthetic:8");
  campaign::CampaignOptions plain;
  plain.threads = 2;
  const std::string ref_jsonl = campaign::run(good, plain).to_jsonl();

  auto crashing = campaign::build_workload("synthetic:8");
  crashing[3].factory = [](core::Testbed&) -> std::unique_ptr<core::Probe> {
    ::_exit(9);
  };
  const std::string path = temp_path("crashrerun");
  campaign::CampaignOptions first = plain;
  first.backend = campaign::Backend::Process;
  first.shard = campaign::Shard::Dynamic;
  first.checkpoint_path = path;
  campaign::CampaignResult crashed = campaign::run(crashing, first);
  EXPECT_GE(crashed.failures, 1u);
  campaign::CheckpointState state = campaign::load_checkpoint(path);
  EXPECT_LT(state.trials.size(), good.size());  // casualties not recorded
  EXPECT_FALSE(state.trials.count(3));

  // Same campaign identity (names + seed), healthy factories: the resume
  // fills exactly the holes.
  campaign::CampaignOptions resume = plain;
  resume.checkpoint_path = path;
  campaign::CampaignResult healed = campaign::run(good, resume);
  EXPECT_EQ(healed.failures, 0u);
  EXPECT_EQ(healed.resumed, state.trials.size());
  EXPECT_EQ(healed.to_jsonl(), ref_jsonl);
  std::remove(path.c_str());
}

}  // namespace
