// The provenance layer: causal event graph, alert attribution, the
// explain narrative, and the end-to-end byte-determinism contract.
//
// The graph is the observability tentpole behind every verdict: probe
// attempts cause packets, packets cause per-hop and tap events, stored
// MVR alerts hang off the packet that triggered them, and the verdict
// references the evidence conclude() used. These tests pin (a) the ring
// mechanics, (b) chain walking and attribution through real testbed
// runs, (c) byte-identical export across campaign thread counts and
// shard modes, and (d) the checked-in golden fixtures for one censored
// and one clean E2-style scenario.
//
// Regenerate fixtures after an intentional format change:
//   UPDATE_GOLDEN=1 ./build/tests/test_provenance
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "censor/gfc.hpp"
#include "core/mimicry.hpp"
#include "core/overt.hpp"
#include "core/ping.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/synprobe.hpp"
#include "obs/provenance.hpp"

using namespace sm;
using common::SimTime;
using obs::ProvenanceGraph;
using obs::ProvKind;

namespace {

std::string golden_path(const std::string& name) {
  return std::string(SM_TEST_DIR) + "/golden/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("UPDATE_GOLDEN")) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << path
                  << " (run with UPDATE_GOLDEN=1 to create it)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << "provenance export drifted from " << path
      << "; if intentional, regenerate with UPDATE_GOLDEN=1 and review "
         "the fixture diff";
}

core::TestbedConfig prov_config() {
  core::TestbedConfig cfg;
  cfg.enable_provenance = true;
  return cfg;
}

}  // namespace

// --- Graph mechanics ---------------------------------------------------

TEST(ProvenanceGraph, RecordAssignsDenseIdsAndKeepsLinks) {
  ProvenanceGraph g;
  uint64_t start = g.record(ProvKind::ProbeStart, SimTime(0), 0, 0, "ping",
                            "10.0.0.2");
  uint64_t attempt =
      g.record(ProvKind::Attempt, SimTime(10), start, 0, "attempt", "1");
  uint64_t pkt = g.record(ProvKind::PacketSent, SimTime(20), attempt, 0,
                          "icmp echo");
  EXPECT_EQ(start, 1u);
  EXPECT_EQ(attempt, 2u);
  EXPECT_EQ(pkt, 3u);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.total(), 3u);
  ASSERT_NE(g.find(pkt), nullptr);
  EXPECT_EQ(g.find(pkt)->cause, attempt);
  EXPECT_EQ(g.chain(pkt), (std::vector<uint64_t>{pkt, attempt, start}));
  EXPECT_EQ(g.root_of(pkt), start);
  EXPECT_EQ(g.root_of(start), start);
}

TEST(ProvenanceGraph, DisabledGraphRecordsNothing) {
  ProvenanceGraph g;
  g.set_enabled(false);
  EXPECT_EQ(g.record(ProvKind::ProbeStart, SimTime(0), 0, 0, "x"), 0u);
  EXPECT_EQ(g.size(), 0u);
  EXPECT_EQ(g.total(), 0u);
}

TEST(ProvenanceGraph, RingDropsOldestAndCountsExactly) {
  ProvenanceGraph g(4);
  for (int i = 0; i < 10; ++i) {
    g.record(ProvKind::Forward, SimTime(i), 0, 0,
             "r" + std::to_string(i));
  }
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.total(), 10u);
  EXPECT_EQ(g.dropped(), 6u);
  auto events = g.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained is id 7 (events 1..6 fell off); order chronological.
  EXPECT_EQ(events.front().id, 7u);
  EXPECT_EQ(events.back().id, 10u);
  // Evicted ids are gone, retained ones still resolve.
  EXPECT_EQ(g.find(3), nullptr);
  ASSERT_NE(g.find(8), nullptr);
  EXPECT_EQ(g.find(8)->what, "r7");
}

TEST(ProvenanceGraph, ChainStopsAtEvictedAncestor) {
  ProvenanceGraph g(3);
  uint64_t a = g.record(ProvKind::ProbeStart, SimTime(0), 0, 0, "a");
  uint64_t b = g.record(ProvKind::Attempt, SimTime(1), a, 0, "b");
  uint64_t c = g.record(ProvKind::PacketSent, SimTime(2), b, 0, "c");
  uint64_t d = g.record(ProvKind::Forward, SimTime(3), c, 0, "d");
  // `a` has been evicted (capacity 3); the chain walks to the last
  // retained ancestor and root_of reports it.
  EXPECT_EQ(g.chain(d), (std::vector<uint64_t>{d, c, b}));
  EXPECT_EQ(g.root_of(d), b);
}

TEST(ProvenanceGraph, ExportAfterWrapIsDeterministic) {
  auto build = [] {
    ProvenanceGraph g(8);
    for (int i = 0; i < 40; ++i) {
      g.record(i % 2 ? ProvKind::Forward : ProvKind::Drop, SimTime(i * 5),
               static_cast<uint64_t>(i), 0, "hop", "detail");
    }
    return g.to_json();
  };
  std::string first = build();
  EXPECT_EQ(first, build());
  EXPECT_NE(first.find("\"dropped\":32"), std::string::npos);
  EXPECT_NE(first.find("\"total\":40"), std::string::npos);
}

TEST(ProvenanceGraph, AppendRawRebuildsIdenticalExport) {
  ProvenanceGraph g;
  uint64_t s = g.record(ProvKind::ProbeStart, SimTime(0), 0, 0, "syn-reach",
                        "10.0.0.2:80");
  uint64_t a = g.record(ProvKind::Attempt, SimTime(100), s, 0, "attempt",
                        "1");
  uint64_t p = g.record(ProvKind::PacketSent, SimTime(200), a, 0,
                        "tcp 10.0.0.1:50000>10.0.0.2:80");
  uint64_t e = g.record(ProvKind::Evidence, SimTime(300), a, p, "syn-ack");
  g.record_verdict(SimTime(400), s, "reachable", "open confirmed", {e});

  ProvenanceGraph rebuilt;
  for (const obs::ProvEvent& ev : g.events()) rebuilt.append_raw(ev);
  EXPECT_EQ(rebuilt.to_json(), g.to_json());
  EXPECT_EQ(rebuilt.root_of(e), s);
}

TEST(ProvenanceGraph, AppendRawCountsIdGapsAsDrops) {
  ProvenanceGraph g;
  obs::ProvEvent ev;
  ev.id = 5;  // events 1..4 were dropped before export
  ev.kind = ProvKind::Forward;
  ev.what = "hop";
  g.append_raw(ev);
  EXPECT_EQ(g.total(), 5u);
  EXPECT_EQ(g.dropped(), 4u);
}

TEST(ProvenanceGraph, KindNamesRoundTrip) {
  for (int k = 0; k <= static_cast<int>(ProvKind::Verdict); ++k) {
    auto kind = static_cast<ProvKind>(k);
    auto parsed = obs::prov_kind_from_string(obs::to_string(kind));
    ASSERT_TRUE(parsed.has_value()) << obs::to_string(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(obs::prov_kind_from_string("no-such-kind").has_value());
}

TEST(ProvenanceGraph, SummarizeWire) {
  packet::Packet p = packet::make_tcp(
      common::Ipv4Address(10, 0, 0, 1), common::Ipv4Address(10, 0, 0, 2),
      1234, 80, packet::TcpFlags::kSyn, 1, 0);
  EXPECT_EQ(obs::summarize_wire(p.data().data(), p.size()),
            "tcp 10.0.0.1:1234>10.0.0.2:80");
  uint8_t garbage[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(obs::summarize_wire(garbage, sizeof(garbage)), "raw");
}

// --- Through the testbed ----------------------------------------------

TEST(ProvenanceTestbed, DisabledByDefaultAndCostsNoEvents) {
  core::Testbed tb;
  EXPECT_EQ(tb.prov_sink(), nullptr);
  core::OvertDnsProbe probe(tb, {.domain = "open.example"});
  core::run_probe(tb, probe);
  EXPECT_EQ(tb.provenance_json(), "");
  EXPECT_EQ(tb.provenance().total(), 0u);
}

TEST(ProvenanceTestbed, VerdictCarriesEvidenceChain) {
  core::Testbed tb(prov_config());
  core::SynReachabilityProbe probe(
      tb, {.target = tb.addr().web_open, .port = 80});
  core::run_probe(tb, probe);
  const ProvenanceGraph& g = tb.provenance();
  ASSERT_GT(g.size(), 0u);

  const obs::ProvEvent* verdict = nullptr;
  const obs::ProvEvent* start = nullptr;
  for (const obs::ProvEvent& ev : g.events()) {
    if (ev.kind == ProvKind::Verdict) verdict = g.find(ev.id);
    if (ev.kind == ProvKind::ProbeStart) start = g.find(ev.id);
  }
  ASSERT_NE(start, nullptr);
  ASSERT_NE(verdict, nullptr);
  EXPECT_EQ(verdict->what, "reachable");
  EXPECT_EQ(verdict->cause, start->id);
  ASSERT_FALSE(verdict->refs.empty());
  // Every evidence ref chains back to the probe start.
  for (uint64_t ref : verdict->refs) {
    EXPECT_EQ(g.root_of(ref), start->id) << "evidence " << ref;
  }
  // The syn-ack evidence is packet-scoped? At minimum the probe's SYN
  // is in the graph as a PacketSent caused by the attempt.
  bool saw_probe_packet = false;
  for (const obs::ProvEvent& ev : g.events()) {
    if (ev.kind == ProvKind::PacketSent && g.root_of(ev.id) == start->id)
      saw_probe_packet = true;
  }
  EXPECT_TRUE(saw_probe_packet);
}

TEST(ProvenanceTestbed, CensorInjectionChainsToTriggeringPacket) {
  core::Testbed tb(prov_config());
  core::OvertHttpProbe probe(tb, {.domain = "blocked.example"});
  core::ProbeReport report = core::run_probe(tb, probe);
  EXPECT_EQ(report.verdict, core::Verdict::BlockedRst);
  const ProvenanceGraph& g = tb.provenance();

  // The censor's keyword-rst action must reference the packet that
  // tripped the rule, and that packet must trace back to the probe.
  const obs::ProvEvent* censor = nullptr;
  for (const obs::ProvEvent& ev : g.events()) {
    if (ev.kind == ProvKind::CensorAction && ev.what == "keyword-rst")
      censor = g.find(ev.id);
  }
  ASSERT_NE(censor, nullptr);
  ASSERT_NE(censor->cause, 0u);
  const obs::ProvEvent* trigger = g.find(censor->cause);
  ASSERT_NE(trigger, nullptr);
  EXPECT_EQ(trigger->kind, ProvKind::PacketSent);
  const obs::ProvEvent* root = g.find(g.root_of(censor->id));
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->kind, ProvKind::ProbeStart);
}

TEST(ProvenanceTestbed, StoredAlertsResolveToCausingPackets) {
  // The acceptance scenario: a mimicry probe fetching a censored
  // keyword, with MVR surveillance watching. Every stored alert must
  // resolve through the graph to the packet that triggered it.
  core::TestbedConfig cfg = prov_config();
  core::Testbed tb(cfg);
  core::StatefulMimicryProbe probe(tb,
                                   {.path = "/search?q=falun",
                                    .cover_flows = 3});
  core::run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(2));

  const ProvenanceGraph& g = tb.provenance();
  auto attributions = obs::attribute_alerts(g);
  // One AlertStored event per stored (non-noise) alert, MVR-wide —
  // the risk report's per-client counts are a subset of these.
  EXPECT_EQ(attributions.size(), tb.mvr->stats().interesting_alerts);
  for (const obs::AlertAttribution& a : attributions) {
    EXPECT_NE(a.packet, 0u) << "alert event " << a.alert
                            << " does not resolve to a packet";
    ASSERT_NE(g.find(a.packet), nullptr);
    EXPECT_EQ(g.find(a.packet)->kind, ProvKind::PacketSent);
    EXPECT_NE(a.root, 0u);
  }
  // The keyword flows are client traffic: at least one alert must be
  // probe-caused and the explain narrative must say so.
  if (!attributions.empty()) {
    std::string text = obs::explain_text(g);
    EXPECT_NE(text.find("alerts:"), std::string::npos);
  }
}

TEST(ProvenanceTestbed, OvertProbeAlertsAreProbeCaused) {
  core::Testbed tb(prov_config());
  core::OvertHttpProbe probe(tb, {.domain = "blocked.example",
                                  .user_agent = "OONI-Probe/2.0"});
  core::run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(2));
  core::RiskReport risk = core::assess_risk(tb, "overt-http");
  ASSERT_GT(risk.targeted_alerts, 0u);

  auto attributions = obs::attribute_alerts(tb.provenance());
  ASSERT_FALSE(attributions.empty());
  size_t probe_caused = 0;
  for (const obs::AlertAttribution& a : attributions) {
    EXPECT_NE(a.packet, 0u);
    if (a.probe_caused) ++probe_caused;
  }
  EXPECT_GT(probe_caused, 0u)
      << "no stored alert chains back to the overt probe";
}

TEST(ProvenanceTestbed, ExplainTextRendersVerdictAndAlerts) {
  core::Testbed tb(prov_config());
  core::OvertHttpProbe probe(tb, {.domain = "blocked.example",
                                  .user_agent = "OONI-Probe/2.0"});
  core::run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(2));
  std::string text = obs::explain_text(tb.provenance());
  EXPECT_NE(text.find("verdict"), std::string::npos) << text;
  EXPECT_NE(text.find("blocked-rst"), std::string::npos) << text;
  EXPECT_NE(text.find("alerts:"), std::string::npos) << text;
  EXPECT_NE(text.find("probe-caused"), std::string::npos) << text;
}

TEST(ProvenanceTestbed, SameSeedExportsAreByteIdentical) {
  auto run = [] {
    core::Testbed tb(prov_config());
    core::OvertHttpProbe probe(tb, {.domain = "blocked.example"});
    core::run_probe(tb, probe);
    tb.run_for(common::Duration::seconds(2));
    return tb.provenance_json();
  };
  std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

TEST(ProvenanceTestbed, MetricsGaugesExportedOnlyWhenEnabled) {
  core::TestbedConfig cfg = prov_config();
  cfg.enable_observability = true;
  core::Testbed tb(cfg);
  core::OvertDnsProbe probe(tb, {.domain = "open.example"});
  core::run_probe(tb, probe);
  std::string json = tb.metrics_json();
  EXPECT_NE(json.find("sm_provenance_events_total"), std::string::npos);

  core::TestbedConfig off;
  off.enable_observability = true;
  core::Testbed tb2(off);
  core::OvertDnsProbe probe2(tb2, {.domain = "open.example"});
  core::run_probe(tb2, probe2);
  EXPECT_EQ(tb2.metrics_json().find("sm_provenance"), std::string::npos);
}

// --- Campaign integration ---------------------------------------------

namespace {

std::vector<campaign::Trial> provenance_trials() {
  std::vector<campaign::Trial> trials;
  const char* domains[] = {"blocked.example", "open.example",
                           "youtube.com", "twitter.com"};
  for (const char* domain : domains) {
    campaign::Trial t;
    t.name = std::string("overt-http/") + domain;
    t.config = prov_config();
    t.factory = [domain](core::Testbed& tb) {
      return std::make_unique<core::OvertHttpProbe>(
          tb, core::OvertHttpOptions{.domain = domain});
    };
    trials.push_back(std::move(t));
  }
  return trials;
}

}  // namespace

TEST(ProvenanceCampaign, JsonlByteIdenticalAcrossThreadsAndShardModes) {
  auto trials = provenance_trials();
  campaign::CampaignOptions base;
  base.threads = 1;
  std::string reference = campaign::run(trials, base).to_jsonl();
  EXPECT_NE(reference.find("\"provenance\":{\"events\":["),
            std::string::npos);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (campaign::Shard shard :
         {campaign::Shard::ByIndex, campaign::Shard::Dynamic}) {
      campaign::CampaignOptions opts;
      opts.threads = threads;
      opts.shard = shard;
      EXPECT_EQ(campaign::run(trials, opts).to_jsonl(), reference)
          << "threads=" << threads
          << " shard=" << (shard == campaign::Shard::ByIndex ? "ByIndex"
                                                             : "Dynamic");
    }
  }
}

TEST(ProvenanceCampaign, MixedFamilyJsonlByteIdenticalAcrossShardModes) {
  // Dual-stack determinism: v4 and v6 trials interleaved in one campaign
  // must serialize byte-identically across thread counts and shard
  // modes, provenance graphs included.
  core::TestbedAddresses addr;
  core::TestbedConfig censored = prov_config();
  censored.policy = censor::dropping_profile({addr.web_blocked});
  censored.policy.blocked_ips6 = {common::map_v6(addr.web_blocked)};

  std::vector<campaign::Trial> trials;
  for (const auto& [cfg_name, cfg] :
       {std::pair<std::string, core::TestbedConfig>{"clean", prov_config()},
        {"censored", censored}}) {
    for (bool v6 : {false, true}) {
      trials.push_back(campaign::Trial{
          .name = cfg_name + "/syn-reach" + (v6 ? "-v6" : "-v4"),
          .config = cfg,
          .factory = [v6](core::Testbed& tb) {
            return std::make_unique<core::SynReachabilityProbe>(
                tb, core::SynReachabilityOptions{
                        .target = tb.addr().web_blocked,
                        .port = 80,
                        .ipv6 = v6});
          }});
      trials.push_back(campaign::Trial{
          .name = cfg_name + "/ping" + (v6 ? "-v6" : "-v4"),
          .config = cfg,
          .factory = [v6](core::Testbed& tb) {
            return std::make_unique<core::PingProbe>(
                tb, core::PingOptions{.target = tb.addr().web_blocked,
                                      .ipv6 = v6});
          }});
    }
  }

  campaign::CampaignOptions base;
  base.threads = 1;
  std::string reference = campaign::run(trials, base).to_jsonl();
  // The matrix really contains both families and both outcomes.
  EXPECT_NE(reference.find("syn-reach-v6"), std::string::npos);
  EXPECT_NE(reference.find("\"verdict\":\"blocked-timeout\""),
            std::string::npos);
  EXPECT_NE(reference.find("\"verdict\":\"reachable\""), std::string::npos);

  for (size_t threads : {size_t{1}, size_t{4}}) {
    for (campaign::Shard shard :
         {campaign::Shard::ByIndex, campaign::Shard::Dynamic}) {
      campaign::CampaignOptions opts;
      opts.threads = threads;
      opts.shard = shard;
      EXPECT_EQ(campaign::run(trials, opts).to_jsonl(), reference)
          << "threads=" << threads
          << " shard=" << (shard == campaign::Shard::ByIndex ? "ByIndex"
                                                             : "Dynamic");
    }
  }
}

TEST(ProvenanceCampaign, TelemetryTracksWorkersAndPhases) {
  auto trials = provenance_trials();
  size_t heartbeats = 0;
  size_t last_completed = 0;
  campaign::CampaignOptions opts;
  opts.threads = 2;
  opts.on_progress = [&](const campaign::Progress& p) {
    ++heartbeats;
    last_completed = p.completed;
    EXPECT_EQ(p.total, trials.size());
    EXPECT_GE(p.worker, 0);
  };
  campaign::CampaignResult result = campaign::run(trials, opts);
  EXPECT_EQ(heartbeats, trials.size());
  EXPECT_EQ(last_completed, trials.size());

  ASSERT_NE(result.telemetry, nullptr);
  std::string telemetry = result.telemetry->to_prometheus();
  EXPECT_NE(telemetry.find("sm_campaign_worker_trials_total"),
            std::string::npos);
  EXPECT_NE(telemetry.find("sm_campaign_phase_wall_seconds_total"),
            std::string::npos);
  EXPECT_NE(telemetry.find("sm_campaign_trial_wall_seconds"),
            std::string::npos);
  EXPECT_NE(telemetry.find("sm_campaign_slow_trials"), std::string::npos);
  // Telemetry never leaks into the deterministic serialization.
  EXPECT_EQ(result.to_jsonl().find("sm_campaign_worker"),
            std::string::npos);

  for (const campaign::TrialResult& t : result.trials) {
    EXPECT_GE(t.wall_elapsed.count(), 0);
    EXPECT_GE(t.wall_setup.count(), 0);
    EXPECT_GE(t.wall_run.count(), 0);
    EXPECT_GE(t.wall_finish.count(), 0);
  }
}

// --- Golden fixtures ---------------------------------------------------

TEST(ProvenanceGolden, CensoredOvertHttp) {
  core::Testbed tb(prov_config());
  core::OvertHttpProbe probe(tb, {.domain = "blocked.example"});
  core::run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(2));
  check_golden("provenance_censored.json", tb.provenance_json() + "\n");
}

TEST(ProvenanceGolden, CleanOvertHttp) {
  core::Testbed tb(prov_config());
  core::OvertHttpProbe probe(tb, {.domain = "open.example"});
  core::run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(2));
  check_golden("provenance_clean.json", tb.provenance_json() + "\n");
}

TEST(ProvenanceGolden, CensoredV6SynReach) {
  // The v6 censored chain: a dual-stack null route silently eats the v6
  // SYNs, so the graph pins attempt → v6 packet → censor inline-drop →
  // blocked-timeout verdict.
  core::TestbedConfig cfg = prov_config();
  core::TestbedAddresses addr;
  cfg.policy = censor::dropping_profile({addr.web_blocked});
  cfg.policy.blocked_ips6 = {common::map_v6(addr.web_blocked)};
  core::Testbed tb(cfg);
  core::SynReachabilityProbe probe(
      tb, {.target = tb.addr().web_blocked, .port = 80, .ipv6 = true});
  core::run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(2));
  check_golden("provenance_censored_v6.json", tb.provenance_json() + "\n");
}

TEST(ProvenanceGolden, CleanV6SynReach) {
  // The clean v6 chain: same probe, keyword-only default policy — the
  // SYN-ACK comes back over v6 and the verdict roots in it.
  core::Testbed tb(prov_config());
  core::SynReachabilityProbe probe(
      tb, {.target = tb.addr().web_blocked, .port = 80, .ipv6 = true});
  core::run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(2));
  check_golden("provenance_clean_v6.json", tb.provenance_json() + "\n");
}
