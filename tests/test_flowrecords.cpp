// Flow-record aggregation (CDR-style metadata) plus end-to-end
// determinism of the whole testbed.
#include <gtest/gtest.h>

#include "core/background.hpp"
#include "core/overt.hpp"
#include "core/probe.hpp"
#include "surveillance/flowrecords.hpp"

namespace sm::surveillance {
namespace {

using common::Duration;
using common::Ipv4Address;
using common::SimTime;

packet::Decoded decode_keep(packet::Packet p, common::Bytes& storage) {
  storage = p.data();
  return *packet::decode(storage);
}

TEST(FlowRecords, AggregatesPacketsIntoOneRecord) {
  FlowRecordAggregator agg(Duration::seconds(10));
  common::Bytes s1, s2, s3;
  auto p1 = decode_keep(packet::make_tcp(Ipv4Address(10, 0, 0, 1),
                                         Ipv4Address(198, 18, 0, 80), 1000,
                                         80, packet::TcpFlags::kSyn, 0, 0),
                        s1);
  auto p2 = decode_keep(
      packet::make_tcp(Ipv4Address(10, 0, 0, 1),
                       Ipv4Address(198, 18, 0, 80), 1000, 80,
                       packet::TcpFlags::kAck, 1, 1,
                       common::to_bytes("hello")),
      s2);
  agg.add(SimTime(0), p1, 40);
  agg.add(SimTime(1000), p2, 45);
  EXPECT_EQ(agg.active_flows(), 1u);
  EXPECT_EQ(agg.finished().size(), 0u);
  EXPECT_EQ(agg.bytes_from(Ipv4Address(10, 0, 0, 1)), 85u);

  // A different direction is a different (directional) record.
  auto p3 = decode_keep(packet::make_tcp(Ipv4Address(198, 18, 0, 80),
                                         Ipv4Address(10, 0, 0, 1), 80, 1000,
                                         packet::TcpFlags::kAck, 1, 1),
                        s3);
  agg.add(SimTime(2000), p3, 40);
  EXPECT_EQ(agg.active_flows(), 2u);
}

TEST(FlowRecords, IdleFlushMovesToFinished) {
  FlowRecordAggregator agg(Duration::seconds(5));
  common::Bytes s;
  auto p = decode_keep(packet::make_udp(Ipv4Address(10, 0, 0, 1),
                                        Ipv4Address(198, 18, 0, 53), 1000,
                                        53, common::to_bytes("q")),
                       s);
  agg.add(SimTime(0), p, 30);
  EXPECT_EQ(agg.flush_idle(SimTime(Duration::seconds(2).count())), 0u);
  EXPECT_EQ(agg.flush_idle(SimTime(Duration::seconds(6).count())), 1u);
  ASSERT_EQ(agg.finished().size(), 1u);
  const FlowRecord& rec = agg.finished()[0];
  EXPECT_EQ(rec.packets, 1u);
  EXPECT_EQ(rec.bytes, 30u);
  EXPECT_EQ(rec.dst_port, 53);
  // Ledger still sees the bytes after the flush.
  EXPECT_EQ(agg.bytes_from(Ipv4Address(10, 0, 0, 1)), 30u);
}

TEST(FlowRecords, FlushAllDrains) {
  FlowRecordAggregator agg;
  common::Bytes s;
  auto p = decode_keep(packet::make_udp(Ipv4Address(10, 0, 0, 1),
                                        Ipv4Address(198, 18, 0, 53), 1, 2,
                                        common::to_bytes("x")),
                       s);
  agg.add(SimTime(0), p, 29);
  EXPECT_EQ(agg.flush_all(), 1u);
  EXPECT_EQ(agg.active_flows(), 0u);
  EXPECT_EQ(agg.finished().size(), 1u);
}

TEST(FlowRecords, MvrBuildsLedgerFromTraffic) {
  core::Testbed tb;
  core::OvertHttpProbe probe(tb, {.domain = "open.example"});
  core::run_probe(tb, probe);
  auto& agg = tb.mvr->flow_records();
  agg.flush_all();
  // At least: client->dns, dns->client, client->web, web->client.
  EXPECT_GE(agg.finished().size(), 4u);
  EXPECT_GT(agg.bytes_from(tb.addr().client), 0u);
  // The record count is far below the packet count (the aggregation
  // point of CDRs).
  EXPECT_LT(agg.finished().size(), tb.mvr->stats().packets_seen);
}

}  // namespace
}  // namespace sm::surveillance

namespace sm::core {
namespace {

/// Runs a fixed scenario and returns a digest of the full packet trace.
uint64_t scenario_digest() {
  Testbed tb;
  BackgroundTraffic bg(tb);
  bg.schedule(common::Duration::seconds(5));
  OvertHttpProbe probe(tb, {.domain = "blocked.example",
                            .user_agent = "OONI-Probe/2.0"});
  run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(7));
  // FNV-1a over every captured byte and timestamp.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (const auto& rec : tb.trace->records()) {
    mix(static_cast<uint64_t>(rec.timestamp.count()));
    for (uint8_t b : rec.data) {
      h ^= b;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

TEST(Determinism, IdenticalRunsProduceIdenticalTraces) {
  // The whole point of the simulator substrate: bit-identical reruns.
  EXPECT_EQ(scenario_digest(), scenario_digest());
}

}  // namespace
}  // namespace sm::core
