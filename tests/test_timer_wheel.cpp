// Property tests for the hierarchical timer-wheel event core.
//
// The wheel replaced a binary heap (PR6) under a hard contract: events
// execute in strictly nondecreasing (when, seq) order, with same-deadline
// events firing in insertion (FIFO) order — the byte-identity oracles in
// simcheck and the golden fixtures depend on it. These tests drive random
// schedules through the Engine and through an exhaustive reference model
// (a sorted multiset over (when, seq)) and require identical execution
// traces, including under cancel, reschedule, in-dispatch scheduling, and
// deadlines far beyond the wheel horizon (the far-list path).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "netsim/engine.hpp"

namespace {

using sm::common::Duration;
using sm::common::Rng;
using sm::common::SimTime;
using sm::netsim::Engine;
using sm::netsim::TimerId;

/// Reference model: a plain ordered set of (when, insertion-order) pairs.
/// This is the specification the heap satisfied trivially; the wheel must
/// reproduce its pop order exactly.
class ReferenceQueue {
 public:
  uint64_t push(SimTime when, int payload) {
    uint64_t id = next_seq_++;
    events_.emplace(Key{when, id}, payload);
    return id;
  }
  bool cancel(uint64_t id) { return cancelled_.insert(id).second; }
  bool empty() {
    drop_cancelled();
    return events_.empty();
  }
  /// Pops the earliest live event's payload (and advances the clock).
  std::pair<SimTime, int> pop() {
    drop_cancelled();
    auto it = events_.begin();
    auto out = std::make_pair(it->first.when, it->second);
    events_.erase(it);
    return out;
  }
  SimTime min_when() {
    drop_cancelled();
    return events_.begin()->first.when;
  }

 private:
  struct Key {
    SimTime when;
    uint64_t seq;
    bool operator<(const Key& o) const {
      if (when != o.when) return when < o.when;
      return seq < o.seq;
    }
  };
  void drop_cancelled() {
    while (!events_.empty() &&
           cancelled_.erase(events_.begin()->first.seq) > 0)
      events_.erase(events_.begin());
  }
  std::map<Key, int> events_;
  std::set<uint64_t> cancelled_;
  uint64_t next_seq_ = 0;
};

/// Draws a deadline spread across the interesting ranges: sub-tick,
/// near-window, deep wheel levels, and past the ~19.5h wheel horizon
/// (forcing the far-list and its migration path).
Duration random_delay(Rng& rng) {
  switch (rng.bounded(6)) {
    case 0:
      return Duration(static_cast<int64_t>(rng.bounded(1024)));  // sub-tick
    case 1:
      return Duration(static_cast<int64_t>(rng.bounded(1 << 16)));
    case 2:
      return Duration(static_cast<int64_t>(rng.bounded(1ull << 26)));
    case 3:
      return Duration(static_cast<int64_t>(rng.bounded(1ull << 36)));
    case 4:
      return Duration(static_cast<int64_t>(rng.bounded(1ull << 44)));
    default:
      // Beyond the wheel span (64^6 ticks * 1024 ns ≈ 2^46 ns).
      return Duration(static_cast<int64_t>((1ull << 46) +
                                           rng.bounded(1ull << 47)));
  }
}

TEST(TimerWheel, RandomScheduleMatchesReferenceModel) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 0x9e3779b97f4a7c15ULL);
    Engine engine;
    ReferenceQueue ref;
    std::vector<std::pair<SimTime, int>> engine_order;

    int n = 50 + static_cast<int>(rng.bounded(400));
    for (int i = 0; i < n; ++i) {
      Duration d = random_delay(rng);
      int payload = i;
      engine.schedule(d, [&engine, &engine_order, payload] {
        engine_order.emplace_back(engine.now(), payload);
      });
      ref.push(engine.now() + d, payload);
    }
    engine.run();

    std::vector<std::pair<SimTime, int>> ref_order;
    while (!ref.empty()) ref_order.push_back(ref.pop());
    ASSERT_EQ(engine_order, ref_order) << "seed " << seed;
  }
}

TEST(TimerWheel, SameDeadlineEventsFireInInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  // Many events at the same instant, plus same-tick-different-when
  // neighbors — FIFO among equal deadlines is the determinism contract.
  SimTime when = SimTime{} + Duration(5000);
  for (int i = 0; i < 64; ++i)
    engine.schedule_at(when, [&order, i] { order.push_back(i); });
  engine.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(TimerWheel, CancelAndRescheduleMatchReferenceModel) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed ^ 0xc0ffee);
    Engine engine;
    ReferenceQueue ref;
    std::vector<std::pair<SimTime, int>> engine_order;

    // Interleave schedules with cancels of still-pending ids. The
    // reference assigns ids in the same order, so id k maps to id k.
    std::vector<TimerId> engine_ids;
    std::vector<uint64_t> ref_ids;
    std::vector<size_t> live;  // indices into the id vectors
    int n = 200;
    for (int i = 0; i < n; ++i) {
      Duration d = random_delay(rng);
      int payload = i;
      engine_ids.push_back(
          engine.schedule(d, [&engine, &engine_order, payload] {
            engine_order.emplace_back(engine.now(), payload);
          }));
      ref_ids.push_back(ref.push(engine.now() + d, payload));
      live.push_back(engine_ids.size() - 1);
      if (!live.empty() && rng.chance(0.3)) {
        size_t pick = rng.bounded(live.size());
        size_t idx = live[pick];
        EXPECT_TRUE(engine.cancel(engine_ids[idx]));
        EXPECT_TRUE(ref.cancel(ref_ids[idx]));
        live.erase(live.begin() + static_cast<long>(pick));
        // Double-cancel must report failure and change nothing.
        EXPECT_FALSE(engine.cancel(engine_ids[idx]));
      }
      if (!live.empty() && rng.chance(0.15)) {
        size_t pick = rng.bounded(live.size());
        size_t idx = live[pick];
        Duration nd = random_delay(rng);
        int np = 100000 + i;
        engine_ids[idx] = engine.reschedule(
            engine_ids[idx], nd, [&engine, &engine_order, np] {
              engine_order.emplace_back(engine.now(), np);
            });
        ref.cancel(ref_ids[idx]);
        ref_ids[idx] = ref.push(engine.now() + nd, np);
      }
    }
    ASSERT_EQ(engine.pending(), [&] {
      ReferenceQueue copy = ref;
      size_t c = 0;
      while (!copy.empty()) {
        copy.pop();
        ++c;
      }
      return c;
    }()) << "seed " << seed;
    engine.run();

    std::vector<std::pair<SimTime, int>> ref_order;
    while (!ref.empty()) ref_order.push_back(ref.pop());
    ASSERT_EQ(engine_order, ref_order) << "seed " << seed;
  }
}

TEST(TimerWheel, InDispatchSchedulingKeepsOrder) {
  // Events scheduled *from inside* an executing event — including
  // zero-delay ones landing mid-batch — must still dispatch in (when,
  // seq) order. This exercises the due-batch splice path.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed + 777);
    Engine engine;
    ReferenceQueue ref;
    std::vector<std::pair<SimTime, int>> engine_order;

    int next_payload = 0;
    std::function<void(int, int)> spawn = [&](int payload, int depth) {
      engine_order.emplace_back(engine.now(), payload);
      if (depth >= 3) return;
      int kids = static_cast<int>(rng.bounded(3));
      for (int k = 0; k < kids; ++k) {
        // Mix zero delays (same instant, later seq) with short ones.
        Duration d = rng.chance(0.4)
                         ? Duration(0)
                         : Duration(static_cast<int64_t>(rng.bounded(4096)));
        int p = next_payload++;
        engine.schedule(d, [&spawn, p, depth] { spawn(p, depth + 1); });
        ref.push(engine.now() + d, p);
      }
    };
    // Note: the reference can't model nested spawns ahead of time, so we
    // replay: roots are scheduled up front; children are pushed into the
    // reference at spawn time (engine.now() is the correct base because
    // the reference is drained only after the run).
    for (int i = 0; i < 30; ++i) {
      Duration d = Duration(static_cast<int64_t>(rng.bounded(8192)));
      int p = next_payload++;
      engine.schedule(d, [&spawn, p] { spawn(p, 0); });
      ref.push(engine.now() + d, p);
    }
    engine.run();

    // The reference's seq numbers do not match the engine's (children are
    // pushed lazily), but payload order at equal times still must: the
    // engine assigns seqs in spawn order and so does the lazy push,
    // because children are pushed during the parent's execution, before
    // any later event runs.
    std::vector<std::pair<SimTime, int>> ref_order;
    while (!ref.empty()) ref_order.push_back(ref.pop());
    ASSERT_EQ(engine_order, ref_order) << "seed " << seed;
  }
}

TEST(TimerWheel, RunUntilAdvancesClockAndStopsAtDeadline) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(Duration(1000), [&] { order.push_back(1); });
  engine.schedule(Duration(2000), [&] { order.push_back(2); });
  engine.schedule(Duration(3000), [&] { order.push_back(3); });
  size_t ran = engine.run_until(SimTime{} + Duration(2000));
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(engine.now(), SimTime{} + Duration(2000));
  EXPECT_EQ(engine.pending(), 1u);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, FarListEventsFireAfterWheelDrains) {
  Engine engine;
  std::vector<int> order;
  // Two far-list events (beyond the ~2^46 ns wheel span) in reverse
  // insertion order, plus a near event; far events must migrate and fire
  // in deadline order after the wheel drains.
  engine.schedule(Duration(int64_t{1} << 50), [&] { order.push_back(3); });
  engine.schedule(Duration((int64_t{1} << 50) - 1024),
                  [&] { order.push_back(2); });
  engine.schedule(Duration(512), [&] { order.push_back(1); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.executed(), 3u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(TimerWheel, PendingAndHighWaterSurviveCancel) {
  Engine engine;
  TimerId a = engine.schedule(Duration(1000), [] {});
  TimerId b = engine.schedule(Duration(2000), [] {});
  engine.schedule(Duration(3000), [] {});
  EXPECT_EQ(engine.pending(), 3u);
  EXPECT_TRUE(engine.cancel(a));
  EXPECT_TRUE(engine.cancel(b));
  EXPECT_EQ(engine.pending(), 1u);
  EXPECT_EQ(engine.run(), 1u);  // cancelled events don't count
  EXPECT_EQ(engine.pending(), 0u);
}

}  // namespace
