#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace sm::common {
namespace {

TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090A0B0C0D0E0FULL);
  ASSERT_EQ(w.size(), 15u);
  const Bytes& b = w.data();
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
  EXPECT_EQ(b[6], 0x07);
  EXPECT_EQ(b[7], 0x08);
  EXPECT_EQ(b[14], 0x0F);
}

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.u16le(0x0102);
  w.u32le(0x03040506);
  const Bytes& b = w.data();
  EXPECT_EQ(b[0], 0x02);
  EXPECT_EQ(b[1], 0x01);
  EXPECT_EQ(b[2], 0x06);
  EXPECT_EQ(b[5], 0x03);
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u16(0xBEEF);
  w.patch_u16(0, 0xDEAD);
  EXPECT_EQ(w.data()[0], 0xDE);
  EXPECT_EQ(w.data()[1], 0xAD);
  EXPECT_EQ(w.data()[2], 0xBE);
}

TEST(ByteWriter, TextAndZeros) {
  ByteWriter w;
  w.text("hi");
  w.zeros(3);
  EXPECT_EQ(w.size(), 5u);
  EXPECT_EQ(w.data()[0], 'h');
  EXPECT_EQ(w.data()[4], 0);
}

TEST(ByteReader, RoundTrip) {
  ByteWriter w;
  w.u8(7);
  w.u16(300);
  w.u32(70000);
  w.u64(1ULL << 40);
  w.text("abc");
  Bytes data = w.take();

  ByteReader r(data);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 300);
  EXPECT_EQ(r.u32(), 70000u);
  EXPECT_EQ(r.u64(), 1ULL << 40);
  EXPECT_EQ(r.text(3), "abc");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteReader, LittleEndianRoundTrip) {
  ByteWriter w;
  w.u16le(0xABCD);
  w.u32le(0x12345678);
  Bytes data = w.take();
  ByteReader r(data);
  EXPECT_EQ(r.u16le(), 0xABCD);
  EXPECT_EQ(r.u32le(), 0x12345678u);
}

TEST(ByteReader, OverrunSetsStickyError) {
  Bytes data{1, 2};
  ByteReader r(data);
  EXPECT_EQ(r.u32(), 0u);  // needs 4, only 2 available
  EXPECT_FALSE(r.ok());
  // Still failed after more reads; returns zeroes.
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, EmptyBytesRequestOk) {
  Bytes data{};
  ByteReader r(data);
  EXPECT_TRUE(r.bytes(0).empty());
  EXPECT_TRUE(r.ok());
}

TEST(ByteReader, SeekValidAndInvalid) {
  Bytes data{1, 2, 3, 4};
  ByteReader r(data);
  EXPECT_TRUE(r.seek(2));
  EXPECT_EQ(r.u8(), 3);
  EXPECT_FALSE(r.seek(10));
  EXPECT_FALSE(r.ok());
}

TEST(ByteReader, SkipAndRest) {
  Bytes data{1, 2, 3, 4, 5};
  ByteReader r(data);
  r.skip(2);
  auto rest = r.rest();
  ASSERT_EQ(rest.size(), 3u);
  EXPECT_EQ(rest[0], 3);
}

TEST(Bytes, StringConversions) {
  Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Bytes, HexDump) {
  Bytes b{0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(hex_dump(b), "de ad be ef");
  EXPECT_EQ(hex_dump(b, 2), "de ad ...");
}

}  // namespace
}  // namespace sm::common
