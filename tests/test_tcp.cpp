#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "proto/tcp/stack.hpp"
#include "spoof/cover.hpp"

namespace sm::proto::tcp {
namespace {

using common::Duration;
using common::Ipv4Address;

class TcpTest : public ::testing::Test {
 protected:
  TcpTest() {
    client_host_ = net_.add_host("c", Ipv4Address(10, 0, 0, 1));
    server_host_ = net_.add_host("s", Ipv4Address(10, 0, 0, 2));
    router_ = net_.add_router("r");
    net_.connect(client_host_, router_,
                 netsim::LinkConfig{Duration::millis(1), 0, 0.0});
    net_.connect(server_host_, router_,
                 netsim::LinkConfig{Duration::millis(1), 0, 0.0});
    client_ = std::make_unique<Stack>(*client_host_);
    server_ = std::make_unique<Stack>(*server_host_);
  }

  void run(Duration d = Duration::seconds(2)) { net_.run_for(d); }

  netsim::Network net_;
  netsim::Host* client_host_;
  netsim::Host* server_host_;
  netsim::Router* router_;
  std::unique_ptr<Stack> client_;
  std::unique_ptr<Stack> server_;
};

TEST_F(TcpTest, HandshakeEstablishes) {
  bool server_accepted = false, client_connected = false;
  server_->listen(80, [&](Connection&) { server_accepted = true; });
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [&](Connection&) { client_connected = true; };
  run();
  EXPECT_TRUE(client_connected);
  EXPECT_TRUE(server_accepted);
  EXPECT_EQ(c->state(), State::Established);
  EXPECT_EQ(client_->stats().connections_opened, 1u);
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
}

TEST_F(TcpTest, DataBothDirections) {
  std::string server_got, client_got;
  server_->listen(80, [&](Connection& c) {
    c.on_data = [&](Connection& conn, std::span<const uint8_t> data) {
      server_got += common::to_string(data);
      conn.send_text("pong");
    };
  });
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [](Connection& conn) { conn.send_text("ping"); };
  c->on_data = [&](Connection&, std::span<const uint8_t> data) {
    client_got += common::to_string(data);
  };
  run();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST_F(TcpTest, LargeTransferSegmentsAndReassembles) {
  std::string blob(100'000, 'a');
  for (size_t i = 0; i < blob.size(); i += 997) blob[i] = 'b';
  std::string received;
  server_->listen(80, [&](Connection& c) {
    c.on_data = [&](Connection&, std::span<const uint8_t> data) {
      received += common::to_string(data);
    };
  });
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [&blob](Connection& conn) { conn.send_text(blob); };
  run(Duration::seconds(10));
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_EQ(received, blob);
}

TEST_F(TcpTest, SynToClosedPortGetsRst) {
  bool error = false;
  Connection* c = client_->connect(server_host_->address(), 81);
  c->on_error = [&](Connection& conn) {
    error = true;
    EXPECT_EQ(conn.close_reason(), CloseReason::Reset);
  };
  run();
  EXPECT_TRUE(error);
  EXPECT_GT(server_->stats().rst_out, 0u);
}

TEST_F(TcpTest, StealthModeSilentlyDropsInsteadOfRst) {
  server_->set_rst_on_unknown(false);
  bool error = false;
  Connection* c = client_->connect(server_host_->address(), 81);
  c->on_error = [&](Connection& conn) {
    error = true;
    EXPECT_EQ(conn.close_reason(), CloseReason::ConnectTimeout);
  };
  run(Duration::seconds(20));
  EXPECT_TRUE(error);
  EXPECT_EQ(server_->stats().rst_out, 0u);
}

TEST_F(TcpTest, ConnectTimeoutWhenServerUnreachable) {
  bool error = false;
  ConnectOptions opts;
  opts.rto = Duration::millis(50);
  opts.max_retries = 2;
  Connection* c = client_->connect(Ipv4Address(203, 0, 113, 1), 80, opts);
  c->on_error = [&](Connection& conn) {
    error = true;
    EXPECT_EQ(conn.close_reason(), CloseReason::ConnectTimeout);
  };
  run(Duration::seconds(5));
  EXPECT_TRUE(error);
}

TEST_F(TcpTest, GracefulCloseBothSides) {
  bool server_closed = false, client_closed = false;
  server_->listen(80, [&](Connection& c) {
    c.on_close = [&](Connection& conn) {
      server_closed = true;
      conn.close();  // close our half too
    };
  });
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [](Connection& conn) { conn.close(); };
  c->on_close = [&](Connection&) { client_closed = true; };
  run();
  EXPECT_TRUE(server_closed);
  EXPECT_TRUE(client_closed);
}

TEST_F(TcpTest, DataThenCloseDeliversEverything) {
  std::string received;
  bool closed = false;
  server_->listen(80, [&](Connection& c) {
    c.on_data = [&](Connection&, std::span<const uint8_t> data) {
      received += common::to_string(data);
    };
    c.on_close = [&](Connection&) { closed = true; };
  });
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [](Connection& conn) {
    conn.send_text("last words");
    conn.close();
  };
  run();
  EXPECT_EQ(received, "last words");
  EXPECT_TRUE(closed);
}

TEST_F(TcpTest, AbortSendsRst) {
  bool server_error = false;
  server_->listen(80, [&](Connection& c) {
    c.on_error = [&](Connection& conn) {
      server_error = true;
      EXPECT_EQ(conn.close_reason(), CloseReason::Reset);
    };
  });
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [](Connection& conn) { conn.abort(); };
  run();
  EXPECT_TRUE(server_error);
}

TEST_F(TcpTest, InjectedRstKillsEstablishedConnection) {
  // This is the GFC's mechanism: a RST forged from the server's address
  // with the right sequence number tears the client connection down.
  bool client_error = false;
  uint32_t server_seq = 0;
  server_->listen(80, [&](Connection&) {});
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [&](Connection&) {};
  // The connection object is reaped once the RST closes it and control
  // returns to the event loop, so capture everything inside the callback
  // instead of touching `c` afterwards.
  State state_at_error = State::Established;
  c->on_error = [&](Connection& conn) {
    client_error = true;
    state_at_error = conn.state();
    EXPECT_EQ(conn.close_reason(), CloseReason::Reset);
  };
  run();
  ASSERT_EQ(c->state(), State::Established);
  // Forge a RST as the censor would: sniff nothing, just use the next
  // expected sequence (rcv_nxt on the client = server ISS + 1, which we
  // can't see here, so send via the router injection with seq from the
  // client's last ACK segment — emulate by sending a RST with every
  // plausible seq in a small window, as real censors do).
  (void)server_seq;
  for (uint32_t off = 0; off < 3; ++off) {
    // Client's rcv_nxt is unknown to the test; use an in-window spray
    // around the server stack's ISS (deterministic: first ISS is 64001).
    router_->inject(packet::make_tcp(server_host_->address(),
                                     client_host_->address(), 80,
                                     c->local_port(), packet::TcpFlags::kRst,
                                     128001 + 1 + off * 1460, 0));
  }
  run();
  EXPECT_TRUE(client_error);
  EXPECT_EQ(state_at_error, State::Closed);
}

TEST_F(TcpTest, PredictableIsnPolicyIsUsed) {
  uint64_t secret = 0xABCD;
  spoof::MimicryServer mimicry(*server_, secret, 80);
  server_->listen(80, [&](Connection&) {});

  uint32_t observed_isn = 0;
  client_host_->add_promiscuous(
      [&](const packet::Decoded& d, const common::Bytes&) {
        if (d.tcp && d.tcp->syn() && d.tcp->ack_flag())
          observed_isn = d.tcp->seq;
      });
  Connection* c = client_->connect(server_host_->address(), 80);
  run();
  ASSERT_EQ(c->state(), State::Established);
  uint32_t predicted = spoof::predictable_isn(
      secret, client_host_->address(), c->local_port(),
      server_host_->address(), 80);
  EXPECT_EQ(observed_isn, predicted);
}

TEST_F(TcpTest, AcceptTtlPolicyControlsReplyTtl) {
  server_->set_accept_ttl_policy([](Ipv4Address) { return uint8_t{7}; });
  server_->listen(80, [&](Connection&) {});
  uint8_t synack_ttl = 0;
  client_host_->add_promiscuous(
      [&](const packet::Decoded& d, const common::Bytes&) {
        if (d.tcp && d.tcp->syn() && d.tcp->ack_flag())
          synack_ttl = d.ip.ttl;
      });
  client_->connect(server_host_->address(), 80);
  run();
  // Sent with TTL 7, one router hop decrements to 6.
  EXPECT_EQ(synack_ttl, 6);
}

TEST_F(TcpTest, RetransmissionRecoversFromLoss) {
  // Rebuild with a lossy client link.
  netsim::Network lossy_net;
  auto* ch = lossy_net.add_host("c", Ipv4Address(10, 0, 0, 1));
  auto* sh = lossy_net.add_host("s", Ipv4Address(10, 0, 0, 2));
  auto* r = lossy_net.add_router("r");
  lossy_net.connect(ch, r, netsim::LinkConfig{Duration::millis(1), 0, 0.2});
  lossy_net.connect(sh, r, netsim::LinkConfig{Duration::millis(1), 0, 0.0});
  Stack cs(*ch), ss(*sh);
  std::string received;
  ss.listen(80, [&](Connection& c) {
    c.on_data = [&](Connection&, std::span<const uint8_t> data) {
      received += common::to_string(data);
    };
  });
  std::string blob(20'000, 'z');
  ConnectOptions opts;
  opts.rto = Duration::millis(100);
  opts.max_retries = 10;
  Connection* c = cs.connect(sh->address(), 80, opts);
  c->on_connect = [&blob](Connection& conn) { conn.send_text(blob); };
  lossy_net.run_for(Duration::seconds(60));
  EXPECT_EQ(received.size(), blob.size());
}

TEST_F(TcpTest, SequenceArithmeticWrapsCorrectly) {
  EXPECT_TRUE(seq_lt(0xFFFFFFF0u, 0x00000010u));  // across the wrap
  EXPECT_FALSE(seq_lt(0x00000010u, 0xFFFFFFF0u));
  EXPECT_TRUE(seq_leq(5u, 5u));
  EXPECT_TRUE(seq_lt(5u, 6u));
}

TEST_F(TcpTest, TwoSimultaneousConnections) {
  int accepted = 0;
  server_->listen(80, [&](Connection& c) {
    ++accepted;
    c.on_data = [](Connection& conn, std::span<const uint8_t> data) {
      conn.send(data);  // echo
    };
  });
  std::string got1, got2;
  Connection* c1 = client_->connect(server_host_->address(), 80);
  Connection* c2 = client_->connect(server_host_->address(), 80);
  c1->on_connect = [](Connection& c) { c.send_text("one"); };
  c2->on_connect = [](Connection& c) { c.send_text("two"); };
  c1->on_data = [&](Connection&, std::span<const uint8_t> d) {
    got1 += common::to_string(d);
  };
  c2->on_data = [&](Connection&, std::span<const uint8_t> d) {
    got2 += common::to_string(d);
  };
  run();
  EXPECT_EQ(accepted, 2);
  EXPECT_EQ(got1, "one");
  EXPECT_EQ(got2, "two");
}

TEST_F(TcpTest, ListenerClosedAbortsNewConnections) {
  server_->listen(80, [&](Connection&) {});
  server_->close_listener(80);
  bool error = false;
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_error = [&](Connection&) { error = true; };
  run();
  EXPECT_TRUE(error);
}

TEST_F(TcpTest, OutOfOrderSegmentsReassemble) {
  // Craft segments by hand toward the listening server from a host
  // WITHOUT a TCP stack (a stack would RST the unexpected SYN/ACK — the
  // exact replay hazard of §4.1, tested elsewhere).
  netsim::Host* raw = net_.add_host("raw", Ipv4Address(10, 0, 0, 3));
  net_.connect(raw, router_);
  std::string received;
  server_->listen(80, [&](Connection& c) {
    c.on_data = [&](Connection&, std::span<const uint8_t> data) {
      received += common::to_string(data);
    };
  });
  Ipv4Address src = raw->address();
  Ipv4Address dst = server_host_->address();
  uint32_t iss = 5000;
  // Learn the server's ISS from its SYN/ACK.
  uint32_t server_iss = 0;
  raw->add_promiscuous([&](const packet::Decoded& d, const common::Bytes&) {
    if (d.tcp && d.tcp->syn() && d.tcp->ack_flag()) server_iss = d.tcp->seq;
  });
  raw->send(packet::make_tcp(src, dst, 10000, 80, packet::TcpFlags::kSyn,
                             iss, 0));
  run(Duration::millis(50));
  ASSERT_NE(server_iss, 0u);
  raw->send(packet::make_tcp(src, dst, 10000, 80, packet::TcpFlags::kAck,
                             iss + 1, server_iss + 1));
  run(Duration::millis(50));
  // Send "world" (seq +7) before "hello " (seq +1).
  auto world = common::to_bytes("world");
  auto hello = common::to_bytes("hello ");
  raw->send(packet::make_tcp(src, dst, 10000, 80, packet::TcpFlags::kAck,
                             iss + 7, server_iss + 1, world));
  raw->send(packet::make_tcp(src, dst, 10000, 80, packet::TcpFlags::kAck,
                             iss + 1, server_iss + 1, hello));
  run(Duration::millis(100));
  EXPECT_EQ(received, "hello world");
}

}  // namespace
}  // namespace sm::proto::tcp
