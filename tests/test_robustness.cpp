// Failure injection and property sweeps: probes over lossy paths, DNS
// retransmission, ping localization, and random-input round-trip
// properties for the fragmenter and the rule language.
#include <gtest/gtest.h>

#include "core/overt.hpp"
#include "core/ping.hpp"
#include "core/probe.hpp"
#include "core/scan.hpp"
#include "core/spam.hpp"
#include "core/synprobe.hpp"
#include "ids/parser.hpp"
#include "packet/fragment.hpp"

namespace sm::core {
namespace {

using common::Duration;
using common::Ipv4Address;

TEST(DnsRetry, SurvivesLossyLink) {
  // 30% loss on the client link: without retransmission many queries
  // die; with 4 retries virtually all succeed.
  netsim::Network net;
  auto* ch = net.add_host("c", Ipv4Address(10, 0, 0, 1));
  auto* sh = net.add_host("s", Ipv4Address(10, 0, 0, 53));
  auto* r = net.add_router("r");
  net.connect(ch, r, netsim::LinkConfig{Duration::millis(1), 0, 0.3});
  net.connect(sh, r);
  proto::dns::Zone zone;
  zone.add_site("example.com", Ipv4Address(1, 2, 3, 4));
  proto::dns::Server server(*sh, std::move(zone));
  proto::dns::Client client(*ch, sh->address(), Duration::millis(200),
                            /*retries=*/4);
  int answered = 0, total = 30;
  for (int i = 0; i < total; ++i) {
    client.query(proto::dns::Name("example.com"),
                 proto::dns::RecordType::A,
                 [&](const proto::dns::QueryResult& result) {
                   if (result.answered()) ++answered;
                 });
  }
  net.run_for(Duration::seconds(10));
  // P(all 5 transmissions of one query lose a packet) ~ (1-0.49)^5 small;
  // expect at least 28/30.
  EXPECT_GE(answered, 28) << answered;
}

TEST(DnsRetry, NoRetriesTimesOutFaster) {
  netsim::Network net;
  auto* ch = net.add_host("c", Ipv4Address(10, 0, 0, 1));
  auto* r = net.add_router("r");
  net.connect(ch, r);
  proto::dns::Client client(*ch, Ipv4Address(203, 0, 113, 1),
                            Duration::millis(100), /*retries=*/0);
  bool fired = false;
  client.query(proto::dns::Name("x.example"), proto::dns::RecordType::A,
               [&](const proto::dns::QueryResult& result) {
                 fired = true;
                 EXPECT_FALSE(result.answered());
               });
  net.run_for(Duration::millis(150));
  EXPECT_TRUE(fired);
}

TEST(Ping, ReachableHostAnswersAll) {
  Testbed tb;
  PingProbe probe(tb, {.target = tb.addr().web_open});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable) << report.to_string();
  EXPECT_EQ(probe.replies_received(), 3u);
}

TEST(Ping, NullRoutedHostSilent) {
  TestbedConfig cfg;
  cfg.policy = censor::dropping_profile({TestbedAddresses{}.web_blocked});
  Testbed tb(cfg);
  PingProbe probe(tb, {.target = tb.addr().web_blocked});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedTimeout) << report.to_string();
}

TEST(Ping, LocalizesPortBlockToServiceLayer) {
  // Port 80 blocked but the host pings: the combination distinguishes
  // service blocking from route blackholing.
  TestbedConfig cfg;
  cfg.policy = censor::dropping_profile(
      {}, {{TestbedAddresses{}.web_blocked, 80}});
  Testbed tb(cfg);
  PingProbe ping(tb, {.target = tb.addr().web_blocked});
  EXPECT_EQ(run_probe(tb, ping).verdict, Verdict::Reachable);
  OvertHttpProbe http(tb, {.domain = "blocked.example"});
  EXPECT_EQ(run_probe(tb, http).verdict, Verdict::BlockedTimeout);
}

TEST(LossyPath, SpamProbeStillDeliversWithTcpRetransmission) {
  TestbedConfig cfg;
  cfg.client_link.loss_rate = 0.15;
  Testbed tb(cfg);
  SpamProbe probe(tb, {.domain = "open.example"});
  ProbeReport report = run_probe(tb, probe, Duration::seconds(60));
  // TCP retransmission carries SMTP through; only the UDP DNS lookups
  // are fragile, and the spam probe treats their loss as a (correctly
  // labeled) timeout — but with 15% loss a single query usually lands.
  EXPECT_TRUE(report.verdict == Verdict::Reachable ||
              report.verdict == Verdict::BlockedTimeout)
      << report.to_string();
}

// --- retry ladders and the confidence layer ----------------------------

TEST(Confidence, SeparatesLossFromBlocking) {
  // Pure success.
  EXPECT_EQ(conclude(3, 0, 0).conclusion, Conclusion::Open);
  // Active interference is loss-proof: it wins even against silence.
  EXPECT_EQ(conclude(0, 2, 1).conclusion, Conclusion::Blocked);
  // An answer + silence: the answer proves the path is open, loss
  // explains the rest.
  EXPECT_EQ(conclude(1, 0, 2).conclusion, Conclusion::Open);
  // Pure silence below the retry budget stays honest...
  EXPECT_EQ(conclude(0, 0, 2, 3).conclusion, Conclusion::Inconclusive);
  // ...and only concludes Blocked once the ladder ran dry.
  EXPECT_EQ(conclude(0, 0, 3, 3).conclusion, Conclusion::Blocked);
  // Mixed active evidence: majority rules, ties stay inconclusive.
  EXPECT_EQ(conclude(1, 2, 0).conclusion, Conclusion::Blocked);
  EXPECT_EQ(conclude(2, 1, 0).conclusion, Conclusion::Open);
  EXPECT_EQ(conclude(1, 1, 0).conclusion, Conclusion::Inconclusive);
  // No evidence at all.
  EXPECT_EQ(conclude(0, 0, 0).conclusion, Conclusion::Inconclusive);
  // Single-shot mapping keeps the old binary behaviour.
  EXPECT_EQ(confidence_from(Verdict::Reachable).conclusion,
            Conclusion::Open);
  EXPECT_EQ(confidence_from(Verdict::BlockedRst).conclusion,
            Conclusion::Blocked);
  EXPECT_EQ(confidence_from(Verdict::BlockedTimeout).conclusion,
            Conclusion::Blocked);
}

TEST(SynRetry, LossyOpenTargetNeverConcludesBlocked) {
  // 20% iid loss plus loss bursts on the client link. A single SYN often
  // dies, and a burst (mean length 1/p_exit = 4 packets) can eat several
  // consecutive attempts — so the ladder must be longer than a plausible
  // burst. Note loss_bad < 1: the GE chain is packet-clocked, so a
  // blackhole burst (loss_bad = 1) on a link that only carries the
  // probe's own packets never heals with time, only with attempts —
  // within a finite ladder that regime is *provably* indistinguishable
  // from a dropping censor, and the bench documents it as out of scope.
  // With degrading bursts and 8 rungs, all-attempts-silent is
  // exponentially unlikely: across seeds, an open target must never be
  // concluded Blocked (Inconclusive is acceptable honesty, false
  // "blocked" is the failure mode the ladder exists to kill).
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    TestbedConfig cfg;
    cfg.client_link.loss_rate = 0.2;
    cfg.client_link.impairment.burst.p_enter = 0.05;
    cfg.client_link.impairment.burst.loss_bad = 0.8;
    cfg.netsim_seed = seed;
    Testbed tb(cfg);
    SynReachabilityProbe probe(tb, {.target = tb.addr().web_open,
                                    .retry = {.max_attempts = 8}});
    ProbeReport r = run_probe(tb, probe, Duration::seconds(60));
    EXPECT_NE(r.confidence.conclusion, Conclusion::Blocked)
        << "seed " << seed << ": " << r.to_string();
  }
}

TEST(SynRetry, NullRoutedTargetStillConcludesBlocked) {
  // The ladder must not make real dropping invisible: every attempt
  // goes silent, the budget runs dry, and the conclusion is Blocked with
  // the full silent tally on record.
  TestbedConfig cfg;
  cfg.policy = censor::dropping_profile({TestbedAddresses{}.web_blocked});
  Testbed tb(cfg);
  SynReachabilityProbe probe(tb, {.target = tb.addr().web_blocked,
                                  .retry = {.max_attempts = 3}});
  ProbeReport r = run_probe(tb, probe, Duration::seconds(60));
  EXPECT_EQ(r.verdict, Verdict::BlockedTimeout) << r.to_string();
  EXPECT_EQ(r.confidence.conclusion, Conclusion::Blocked);
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.confidence.trials_silent, 3u);
}

TEST(Ping, DuplicatedRepliesAreNotDoubleCounted) {
  // A duplicating link delivers every echo and every reply twice; the
  // dedup-by-sequence set must keep the reply count at exactly `count`.
  TestbedConfig cfg;
  cfg.client_link.impairment.duplicate_rate = 1.0;
  Testbed tb(cfg);
  PingProbe probe(tb, {.target = tb.addr().web_open});
  ProbeReport r = run_probe(tb, probe);
  EXPECT_EQ(r.verdict, Verdict::Reachable) << r.to_string();
  EXPECT_EQ(probe.replies_received(), 3u);
  EXPECT_EQ(r.confidence.conclusion, Conclusion::Open);
}

TEST(ScanRetry, LossyExpectedOpenPortIsRecovered) {
  // Per-port SYN retransmission: with 25% loss a one-round scan
  // regularly mislabels port 80 as filtered; four rounds recover it.
  TestbedConfig cfg;
  cfg.client_link.loss_rate = 0.25;
  Testbed tb(cfg);
  ScanProbe probe(tb, {.target = tb.addr().web_open,
                       .ports = {80},
                       .expected_open = {80},
                       .retry = {.max_attempts = 4}});
  ProbeReport r = run_probe(tb, probe, Duration::seconds(60));
  EXPECT_EQ(probe.port_states().at(80), PortState::Open) << r.to_string();
  EXPECT_EQ(r.confidence.conclusion, Conclusion::Open);
}

// Property sweep: fragment() then Reassembler::add() is the identity for
// random payload sizes and MTUs.
struct FragCase {
  size_t payload;
  size_t mtu;
};
class FragmentRoundTrip : public ::testing::TestWithParam<FragCase> {};

TEST_P(FragmentRoundTrip, Identity) {
  auto [payload_len, mtu] = GetParam();
  common::Rng rng(payload_len * 31 + mtu);
  common::Bytes payload(payload_len);
  for (auto& b : payload) b = static_cast<uint8_t>(rng.bounded(256));
  packet::IpOptions opt;
  opt.dont_fragment = false;
  opt.identification = static_cast<uint16_t>(payload_len);
  packet::Packet p = packet::make_udp(Ipv4Address(10, 0, 0, 1),
                                      Ipv4Address(10, 0, 0, 2), 1, 2,
                                      payload, opt);
  auto frags = packet::fragment(p, mtu);
  // Shuffle delivery order.
  rng.shuffle(frags);
  packet::Reassembler reassembler;
  std::optional<packet::Packet> whole;
  for (const auto& f : frags) {
    auto out = reassembler.add(common::SimTime(0), f.data());
    if (out) whole = out;
  }
  ASSERT_TRUE(whole);
  EXPECT_EQ(whole->data(), p.data());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FragmentRoundTrip,
    ::testing::Values(FragCase{100, 68}, FragCase{1000, 200},
                      FragCase{1473, 1500}, FragCase{5000, 576},
                      FragCase{9000, 1500}, FragCase{64, 68},
                      FragCase{2000, 100}));

// Property sweep: every rule in the shipped rulesets survives a
// to_string -> parse round trip with matching semantics fields.
// Behavioural equivalence: an engine built from the community ruleset
// and an engine built from its to_string() serialization produce the
// same alerts on the same traffic.
TEST(RuleRoundTrip, SerializedEngineBehavesIdentically) {
  auto rules = surveillance::community_ruleset();
  std::string text;
  for (const auto& r : rules) text += r.to_string() + "\n";
  ids::Engine original(surveillance::community_ruleset());
  ids::Engine reparsed = ids::Engine::from_text(text);
  ASSERT_EQ(reparsed.rule_count(), original.rule_count());

  // Drive both with a mixed traffic sample.
  common::Rng rng(17);
  std::vector<common::Bytes> wires;
  for (int i = 0; i < 300; ++i) {
    Ipv4Address src(static_cast<uint32_t>(0x0A000001 + rng.bounded(5)));
    Ipv4Address dst(198, 18, 0, 80);
    uint16_t dport = rng.chance(0.3) ? 25 : 80;
    std::string payload;
    switch (rng.bounded(5)) {
      case 0: payload = "GET / HTTP/1.1\r\nUser-Agent: OONI\r\n"; break;
      case 1: payload = "MAIL FROM:<x@y>\r\n"; break;
      case 2: payload = "BitTorrent protocol"; break;
      case 3: payload = "nothing interesting"; break;
      case 4: payload = "ultrasurf handshake"; break;
    }
    uint8_t flags = rng.chance(0.3)
                        ? packet::TcpFlags::kSyn
                        : static_cast<uint8_t>(packet::TcpFlags::kAck);
    wires.push_back(packet::make_tcp(src, dst,
                                     static_cast<uint16_t>(
                                         1024 + rng.bounded(100)),
                                     dport, flags, i, 1,
                                     common::to_bytes(payload))
                        .data());
  }
  for (size_t i = 0; i < wires.size(); ++i) {
    auto d = *packet::decode(wires[i]);
    common::SimTime t(static_cast<int64_t>(i) * 1'000'000);
    auto v1 = original.process(t, d);
    auto v2 = reparsed.process(t, d);
    ASSERT_EQ(v1.alerts.size(), v2.alerts.size()) << i;
    for (size_t a = 0; a < v1.alerts.size(); ++a) {
      EXPECT_EQ(v1.alerts[a].sid, v2.alerts[a].sid);
      EXPECT_EQ(v1.alerts[a].classtype, v2.alerts[a].classtype);
    }
  }
}

TEST(RuleRoundTrip, ShippedRulesetsSurvive) {
  auto check = [](const std::vector<ids::Rule>& rules) {
    for (const auto& rule : rules) {
      auto reparsed = ids::parse_rule_line(rule.to_string());
      ASSERT_TRUE(reparsed.ok()) << rule.to_string();
      const ids::Rule& r2 = reparsed.rules[0];
      EXPECT_EQ(r2.action, rule.action) << rule.to_string();
      EXPECT_EQ(r2.sid, rule.sid);
      EXPECT_EQ(r2.contents.size(), rule.contents.size());
      EXPECT_EQ(r2.flags.has_value(), rule.flags.has_value());
      EXPECT_EQ(r2.threshold.has_value(), rule.threshold.has_value());
    }
  };
  check(surveillance::community_ruleset());
  censor::CensorPolicy policy = censor::gfc_profile();
  policy.blocked_ips.push_back(Ipv4Address(1, 2, 3, 4));
  policy.blocked_ports.push_back({Ipv4Address(5, 6, 7, 8), 25});
  check(policy.compile_rules());
}

}  // namespace
}  // namespace sm::core
