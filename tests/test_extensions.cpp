// Tests for the extension mechanisms: blockpage injection, DNS query
// dropping, the stateless SYN reachability probe, the measurement
// scheduler, and the TTL-normalizer countermeasure.
#include <gtest/gtest.h>

#include "core/overt.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scheduler.hpp"
#include "core/scan.hpp"
#include "core/spam.hpp"
#include "core/synprobe.hpp"
#include "spoof/cover.hpp"
#include "surveillance/normalizer.hpp"

namespace sm::core {
namespace {

TestbedConfig blockpage_config() {
  TestbedConfig cfg;
  cfg.policy = censor::CensorPolicy{};
  cfg.policy.blockpage_keywords = {"falun", "blocked.example"};
  return cfg;
}

TEST(Blockpage, InjectedPageReplacesRealResponse) {
  Testbed tb(blockpage_config());
  OvertHttpProbe probe(tb, {.domain = "blocked.example", .path = "/"});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedBlockpage) << report.to_string();
  EXPECT_GT(tb.censor_tap->stats().blockpages_injected, 0u);
  // The real server never saw the request (the censor ate it).
  EXPECT_EQ(tb.web_blocked_http->requests_served(), 0u);
}

TEST(Blockpage, InnocuousRequestPassesThrough) {
  Testbed tb(blockpage_config());
  OvertHttpProbe probe(tb, {.domain = "open.example", .path = "/"});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable) << report.to_string();
  EXPECT_EQ(tb.censor_tap->stats().blockpages_injected, 0u);
}

TEST(Blockpage, DetectorMatchesKnownPhrases) {
  proto::http::Response blocked = proto::http::Response::make(
      403, "Forbidden", "<h1>Access to this site is denied</h1>");
  proto::http::Response fine = proto::http::Response::ok("<h1>News</h1>");
  EXPECT_TRUE(looks_like_blockpage(blocked));
  EXPECT_FALSE(looks_like_blockpage(fine));
}

TEST(DnsQueryDrop, KeywordQnameDropsSilently) {
  TestbedConfig cfg;
  cfg.policy = censor::CensorPolicy{};
  cfg.policy.dns_drop_keywords = {"blocked"};
  Testbed tb(cfg);
  OvertDnsProbe probe(tb, {.domain = "blocked.example"});
  ProbeReport report = run_probe(tb, probe, common::Duration::seconds(10));
  EXPECT_EQ(report.verdict, Verdict::BlockedTimeout) << report.to_string();
  EXPECT_GT(tb.censor_tap->stats().dns_queries_dropped, 0u);
  // The resolver never saw the query.
  EXPECT_EQ(tb.dns_server->queries_served(), 0u);
}

TEST(DnsQueryDrop, OtherNamesResolve) {
  TestbedConfig cfg;
  cfg.policy = censor::CensorPolicy{};
  cfg.policy.dns_drop_keywords = {"blocked"};
  Testbed tb(cfg);
  OvertDnsProbe probe(tb, {.domain = "open.example"});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable) << report.to_string();
}

TEST(SynReachability, OpenServiceReachable) {
  Testbed tb;
  SynReachabilityProbe probe(tb, {.target = tb.addr().web_open,
                                  .port = 80});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable) << report.to_string();
}

TEST(SynReachability, NullRoutedServiceTimesOut) {
  TestbedConfig cfg;
  cfg.policy = censor::dropping_profile({TestbedAddresses{}.web_blocked});
  Testbed tb(cfg);
  SynReachabilityProbe probe(tb, {.target = tb.addr().web_blocked,
                                  .port = 80});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedTimeout) << report.to_string();
}

TEST(SynReachability, CoverImplicatesNeighbors) {
  Testbed tb;
  SynReachabilityProbe probe(tb, {.target = tb.addr().web_open,
                                  .port = 80,
                                  .cover_count = 8});
  ProbeReport report = run_probe(tb, probe);
  tb.run_for(common::Duration::seconds(1));
  EXPECT_EQ(report.verdict, Verdict::Reachable);
  // The tap saw SYNs from 9 sources (client + 8 spoofed).
  std::set<uint32_t> sources;
  for (const auto& rec : tb.trace->records()) {
    auto d = packet::decode(rec.data);
    if (d && d->tcp && d->tcp->syn() && !d->tcp->ack_flag() &&
        d->ip.dst == tb.addr().web_open)
      sources.insert(d->ip.src.value());
  }
  EXPECT_EQ(sources.size(), 9u);
}

TEST(Scheduler, RunsQueueInOrderWithPacing) {
  Testbed tb;
  MeasurementScheduler scheduler(tb);
  scheduler.enqueue([](Testbed& t) {
    return std::make_unique<OvertDnsProbe>(
        t, OvertDnsOptions{.domain = "open.example"});
  });
  scheduler.enqueue([](Testbed& t) {
    return std::make_unique<OvertDnsProbe>(
        t, OvertDnsOptions{.domain = "twitter.com"});
  });
  scheduler.enqueue([](Testbed& t) {
    return std::make_unique<SpamProbe>(
        t, SpamOptions{.domain = "open.example"});
  });
  auto reports = scheduler.run_all();
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].verdict, Verdict::Reachable);
  EXPECT_EQ(reports[1].verdict, Verdict::BlockedDnsForgery);
  EXPECT_EQ(reports[2].verdict, Verdict::Reachable);
  EXPECT_EQ(scheduler.pending(), 0u);
  // Time advanced by the jittered gaps, not zero.
  EXPECT_GT(tb.net.engine().now().count(), 0);
}

TEST(Normalizer, RaisesLowTtls) {
  surveillance::TtlNormalizerStats stats;
  auto transform = surveillance::make_ttl_normalizer(10, &stats);
  packet::IpOptions opt;
  opt.ttl = 2;
  packet::Packet low = packet::make_udp(common::Ipv4Address(1, 1, 1, 1),
                                        common::Ipv4Address(2, 2, 2, 2), 1,
                                        2, {}, opt);
  EXPECT_TRUE(transform(low));
  EXPECT_EQ(low.data()[8], 10);
  EXPECT_TRUE(packet::verify_checksums(low.data()));

  packet::Packet high = packet::make_udp(common::Ipv4Address(1, 1, 1, 1),
                                         common::Ipv4Address(2, 2, 2, 2), 1,
                                         2, {});
  EXPECT_TRUE(transform(high));
  EXPECT_EQ(high.data()[8], 64);
  EXPECT_EQ(stats.packets_seen, 2u);
  EXPECT_EQ(stats.ttls_raised, 1u);
}

TEST(Normalizer, DefeatsTtlLimitedMimicry) {
  // With the normalizer installed, the TTL-1 SYN/ACK is raised and
  // reaches the spoofed host, whose RST unravels the cover flow —
  // the countermeasure the paper anticipates in §4.2.
  Testbed tb;
  surveillance::TtlNormalizerStats stats;
  tb.router->set_transformer(surveillance::make_ttl_normalizer(10, &stats));

  tb.mimicry_server->register_cover_client(tb.neighbors[0]->address(), 1);
  spoof::StatefulMimicryClient mimic(*tb.client, tb.addr().measurement, 80,
                                     tb.config().mimicry_secret,
                                     common::Duration::millis(10));
  mimic.run_flow(tb.neighbors[0]->address(),
                 "GET / HTTP/1.1\r\nHost: m\r\n\r\n");
  tb.run_for(common::Duration::seconds(2));
  EXPECT_GT(stats.ttls_raised, 0u);
  EXPECT_GT(tb.neighbor_stacks[0]->stats().rst_out, 0u);
}

TEST(Fingerprinting, BespokeRuleFlagsNaiveScannerOnly) {
  auto run_scan = [](bool fingerprint, bool randomized) {
    TestbedConfig cfg;
    cfg.mvr.enable_fingerprint_rules = fingerprint;
    Testbed tb(cfg);
    ScanOptions opts;
    opts.target = tb.addr().web_open;
    opts.ports = top_tcp_ports(60);
    opts.randomize_source_ports = randomized;
    ScanProbe probe(tb, opts);
    run_probe(tb, probe);
    return assess_risk(tb, "scan").evaded;
  };
  EXPECT_TRUE(run_scan(false, false));   // community rules: both evade
  EXPECT_TRUE(run_scan(false, true));
  EXPECT_FALSE(run_scan(true, false));   // bespoke rule: naive flagged
  EXPECT_TRUE(run_scan(true, true));     // hardened still evades
}

TEST(Fingerprinting, RandomizedScanStillAccurate) {
  TestbedConfig cfg;
  cfg.policy = censor::dropping_profile({TestbedAddresses{}.web_blocked});
  Testbed tb(cfg);
  ScanOptions opts;
  opts.target = tb.addr().web_blocked;
  opts.ports = top_tcp_ports(40);
  opts.randomize_source_ports = true;
  ScanProbe probe(tb, opts);
  EXPECT_EQ(run_probe(tb, probe).verdict, Verdict::BlockedTimeout);
}

TEST(Fingerprinting, RandomizedSportsAreSpread) {
  Testbed tb;
  ScanOptions opts;
  opts.target = tb.addr().web_open;
  opts.ports = top_tcp_ports(50);
  opts.randomize_source_ports = true;
  ScanProbe probe(tb, opts);
  std::set<uint16_t> sports;
  tb.web_open->add_promiscuous(
      [&](const packet::Decoded& d, const common::Bytes&) {
        if (d.tcp && d.tcp->syn() && !d.tcp->ack_flag())
          sports.insert(d.tcp->src_port);
      });
  run_probe(tb, probe);
  ASSERT_EQ(sports.size(), 50u);  // all distinct
  // Not a contiguous block: the span is far wider than the count.
  EXPECT_GT(*sports.rbegin() - *sports.begin(), 1000);
}

TEST(SetTtl, RewritesAndFixesChecksum) {
  packet::Packet p = packet::make_tcp(common::Ipv4Address(1, 1, 1, 1),
                                      common::Ipv4Address(2, 2, 2, 2), 1, 2,
                                      packet::TcpFlags::kSyn, 0, 0);
  ASSERT_TRUE(packet::set_ttl(p.data(), 200));
  EXPECT_EQ(p.data()[8], 200);
  EXPECT_TRUE(packet::verify_checksums(p.data()));
  common::Bytes tiny{1, 2};
  EXPECT_FALSE(packet::set_ttl(tiny, 5));
}

}  // namespace
}  // namespace sm::core
