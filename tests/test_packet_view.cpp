// PacketView ownership/aliasing tests for the zero-copy forwarding path.
//
// PR6 threaded a non-owning PacketView through link delivery, the tap
// chain, and the IDS so the uncorrupted path makes zero payload copies
// per hop. Non-owning views make aliasing the failure mode to guard: a
// tap that *retains* bytes must get its own copy, so a corrupting
// impairment mutating the in-flight buffer on a downstream link can
// never reach bytes a tap already kept. These tests lock in that
// contract and the copy-counter taxonomy (Hop must stay 0).

#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.hpp"
#include "netsim/topology.hpp"
#include "packet/copy_stats.hpp"
#include "packet/packet.hpp"

namespace sm::netsim {
namespace {

using common::Duration;
using common::Ipv4Address;

/// Tap that keeps every forwarded packet's bytes via the counted
/// retain() path (the pcap sink does exactly this).
class RetainTap : public Tap {
 public:
  TapDecision process(const TapContext& ctx, Router&) override {
    kept.push_back(ctx.pkt.retain(packet::CopySite::Pcap));
    return TapDecision::Pass;
  }
  std::vector<common::Bytes> kept;
};

TEST(PacketView, RetainedBytesSurviveDownstreamCorruption) {
  packet::reset_copy_counters();
  Network net;
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  Router* r = net.add_router("r");
  net.connect(a, r, LinkConfig{Duration::millis(1), 0, 0.0});
  LinkConfig corrupting{Duration::millis(1), 0, 0.0};
  corrupting.impairment.corrupt_rate = 1.0;  // flip a byte of every packet
  Link* rb = net.connect(b, r, corrupting);

  RetainTap tap;
  r->add_tap(&tap);

  a->send_udp(b->address(), 1234, 9000, common::to_bytes("pristine bytes"));
  net.run_for(Duration::millis(10));

  // The corruption really happened, in place, on the r->b link...
  EXPECT_GE(rb->stats().corrupted + rb->stats().dropped_corrupt, 1u);
  // ...but the bytes the tap retained one hop earlier are untouched:
  // still a checksum-valid wire image of the original datagram.
  ASSERT_EQ(tap.kept.size(), 1u);
  EXPECT_TRUE(packet::verify_checksums(tap.kept[0]));
  auto decoded = packet::decode(tap.kept[0]);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(common::to_string(decoded->l4_payload), "pristine bytes");

  // Copy taxonomy: the retained snapshot is the only copy; forwarding
  // itself stayed zero-copy.
  EXPECT_EQ(packet::copies(packet::CopySite::Hop), 0u);
  EXPECT_EQ(packet::copies(packet::CopySite::Pcap), 1u);
}

TEST(PacketView, UncorruptedUntappedPathMakesZeroCopies) {
  packet::reset_copy_counters();
  Network net;
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  Router* r = net.add_router("r");
  net.connect(a, r, LinkConfig{Duration::millis(1), 0, 0.0});
  net.connect(b, r, LinkConfig{Duration::millis(1), 0, 0.0});

  std::string received;
  b->udp_bind(9000, [&](const packet::Decoded&,
                        std::span<const uint8_t> payload) {
    received = common::to_string(payload);
  });
  for (int i = 0; i < 10; ++i)
    a->send_udp(b->address(), 1234, 9000, common::to_bytes("no copies"));
  net.run_for(Duration::millis(50));

  EXPECT_EQ(received, "no copies");
  EXPECT_EQ(r->counters().forwarded, 10u);
  // Ten packets, two links each, one router hop: not a single payload
  // copy anywhere on the path.
  EXPECT_EQ(packet::copies(packet::CopySite::Hop), 0u);
  EXPECT_EQ(packet::copies(packet::CopySite::Pcap), 0u);
  EXPECT_EQ(packet::copies(packet::CopySite::Impairment), 0u);
  EXPECT_EQ(packet::copies(packet::CopySite::Defrag), 0u);
  EXPECT_EQ(packet::copies(packet::CopySite::Stream), 0u);
}

TEST(PacketView, DuplicateDeliveryCountsImpairmentCopy) {
  packet::reset_copy_counters();
  Network net;
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  Router* r = net.add_router("r");
  net.connect(a, r, LinkConfig{Duration::millis(1), 0, 0.0});
  LinkConfig duplicating{Duration::millis(1), 0, 0.0};
  duplicating.impairment.duplicate_rate = 1.0;
  Link* rb = net.connect(b, r, duplicating);

  int deliveries = 0;
  b->udp_bind(9000,
              [&](const packet::Decoded&, std::span<const uint8_t>) {
                ++deliveries;
              });
  a->send_udp(b->address(), 1234, 9000, common::to_bytes("twice"));
  net.run_for(Duration::millis(10));

  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(rb->stats().duplicated, 1u);
  // The duplicate is the one genuine copy; the primary delivery moved.
  EXPECT_EQ(packet::copies(packet::CopySite::Impairment), 1u);
  EXPECT_EQ(packet::copies(packet::CopySite::Hop), 0u);
}

TEST(PacketView, DecodedViewTracksWireBuffer) {
  // A PacketView's Decoded spans alias the wire buffer it was built
  // over — mutating a *different* buffer can never show through. This is
  // the unit-level version of the corruption test above.
  common::Bytes wire_a;
  {
    packet::Packet p = packet::make_udp(
        Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1111, 2222,
        common::to_bytes("payload-A"));
    wire_a = p.data();
  }
  common::Bytes wire_b = wire_a;  // independent buffer, same contents

  auto decoded = packet::decode(wire_a);
  ASSERT_TRUE(decoded.has_value());
  packet::PacketView view(wire_a, *decoded);

  // Corrupt the *other* buffer: the view must be unaffected.
  wire_b[wire_b.size() - 1] ^= 0xff;
  EXPECT_EQ(common::to_string(view.decoded().l4_payload), "payload-A");
  EXPECT_TRUE(packet::verify_checksums(view.wire()));

  // And a retained copy taken now is decoupled from wire_a itself.
  packet::reset_copy_counters();
  common::Bytes kept = view.retain(packet::CopySite::Pcap);
  wire_a[wire_a.size() - 1] ^= 0xff;
  EXPECT_NE(kept, wire_a);
  EXPECT_TRUE(packet::verify_checksums(kept));
  EXPECT_EQ(packet::copies(packet::CopySite::Pcap), 1u);
}

}  // namespace
}  // namespace sm::netsim
