#include <gtest/gtest.h>

#include "censor/engine.hpp"
#include "censor/gfc.hpp"
#include "netsim/topology.hpp"
#include "proto/dns/client.hpp"
#include "proto/dns/server.hpp"
#include "proto/http/client.hpp"
#include "proto/http/server.hpp"

namespace sm::censor {
namespace {

using common::Duration;
using common::Ipv4Address;

TEST(Policy, DnsForgeryLookupIncludesSubdomains) {
  CensorPolicy p = gfc_profile(Ipv4Address(8, 7, 198, 45));
  EXPECT_NE(p.dns_forgery_for("twitter.com"), nullptr);
  EXPECT_NE(p.dns_forgery_for("api.twitter.com"), nullptr);
  EXPECT_NE(p.dns_forgery_for("WWW.TWITTER.COM"), nullptr);
  EXPECT_EQ(p.dns_forgery_for("nottwitter.com"), nullptr);
  EXPECT_EQ(p.dns_forgery_for("twitter.com.evil.example"), nullptr);
}

TEST(Policy, CompileRulesCoversAllMechanisms) {
  CensorPolicy p;
  p.rst_keywords = {"kw1", "kw2"};
  p.blocked_ips = {Ipv4Address(1, 2, 3, 4)};
  p.blocked_ports = {{Ipv4Address(5, 6, 7, 8), 25}};
  auto rules = p.compile_rules();
  ASSERT_EQ(rules.size(), 4u);
  EXPECT_EQ(rules[0].action, ids::RuleAction::Reject);
  EXPECT_TRUE(rules[0].contents[0].nocase);
  EXPECT_EQ(rules[2].action, ids::RuleAction::Drop);
  EXPECT_TRUE(rules[2].bidirectional);
  EXPECT_EQ(rules[3].action, ids::RuleAction::Drop);
  EXPECT_TRUE(rules[3].dst_ports.matches(25));
}

class CensorNetTest : public ::testing::Test {
 protected:
  CensorNetTest() {
    client_host_ = net_.add_host("c", Ipv4Address(10, 1, 1, 10));
    web_host_ = net_.add_host("web", Ipv4Address(198, 18, 0, 80));
    dns_host_ = net_.add_host("dns", Ipv4Address(198, 18, 0, 53));
    router_ = net_.add_router("r");
    net_.connect(client_host_, router_);
    net_.connect(web_host_, router_);
    net_.connect(dns_host_, router_);

    client_stack_ = std::make_unique<proto::tcp::Stack>(*client_host_);
    web_stack_ = std::make_unique<proto::tcp::Stack>(*web_host_);
    http_server_ = std::make_unique<proto::http::Server>(*web_stack_, 80);
    http_server_->set_default_handler([](const proto::http::Request& r) {
      return proto::http::Response::ok("content about falun gong: " +
                                       r.target);
    });
    proto::dns::Zone zone;
    zone.add_site("twitter.com", Ipv4Address(198, 18, 0, 80));
    zone.add_site("open.example", Ipv4Address(198, 18, 0, 80));
    dns_server_ = std::make_unique<proto::dns::Server>(*dns_host_,
                                                       std::move(zone));
    resolver_ = std::make_unique<proto::dns::Client>(
        *client_host_, dns_host_->address(), Duration::millis(500));
  }

  void install(CensorPolicy policy) {
    tap_ = std::make_unique<CensorTap>(std::move(policy));
    router_->add_tap(tap_.get());
  }

  netsim::Network net_;
  netsim::Host* client_host_;
  netsim::Host* web_host_;
  netsim::Host* dns_host_;
  netsim::Router* router_;
  std::unique_ptr<proto::tcp::Stack> client_stack_;
  std::unique_ptr<proto::tcp::Stack> web_stack_;
  std::unique_ptr<proto::http::Server> http_server_;
  std::unique_ptr<proto::dns::Server> dns_server_;
  std::unique_ptr<proto::dns::Client> resolver_;
  std::unique_ptr<CensorTap> tap_;
};

TEST_F(CensorNetTest, KeywordInResponseTriggersRstBothWays) {
  install(gfc_profile());
  proto::http::Client http(*client_stack_);
  std::optional<proto::http::FetchResult> result;
  http.fetch(web_host_->address(), 80,
             proto::http::Request::get("web", "/innocent-url"),
             [&](const proto::http::FetchResult& r) { result = r; });
  net_.run_for(Duration::seconds(5));
  ASSERT_TRUE(result);
  // The response body contains "falun" -> censor injects RSTs.
  EXPECT_EQ(result->outcome, proto::http::FetchOutcome::ResetMidStream);
  EXPECT_GT(tap_->stats().rst_packets_injected, 0u);
  EXPECT_EQ(tap_->stats().rst_bursts, 1u);
}

TEST_F(CensorNetTest, KeywordInRequestAlsoTriggers) {
  install(gfc_profile());
  proto::http::Client http(*client_stack_);
  std::optional<proto::http::FetchResult> result;
  http.fetch(web_host_->address(), 80,
             proto::http::Request::get("web", "/search?q=tiananmen"),
             [&](const proto::http::FetchResult& r) { result = r; });
  net_.run_for(Duration::seconds(5));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->outcome, proto::http::FetchOutcome::ResetMidStream);
}

TEST_F(CensorNetTest, BlackoutDropsSubsequentFlowPackets) {
  install(gfc_profile());
  proto::http::Client http(*client_stack_);
  http.fetch(web_host_->address(), 80,
             proto::http::Request::get("web", "/search?q=falun"),
             [](const proto::http::FetchResult&) {});
  net_.run_for(Duration::seconds(5));
  EXPECT_GT(tap_->stats().dropped_blackout, 0u);
}

TEST_F(CensorNetTest, DnsForgeryRacesRealAnswer) {
  install(gfc_profile(Ipv4Address(8, 7, 198, 45)));
  std::optional<proto::dns::QueryResult> result;
  resolver_->query(proto::dns::Name("twitter.com"),
                   proto::dns::RecordType::A,
                   [&](const proto::dns::QueryResult& r) { result = r; });
  net_.run_for(Duration::seconds(1));
  ASSERT_TRUE(result && result->answered());
  // The forged answer wins the race (injected at the router).
  EXPECT_EQ(result->address(), Ipv4Address(8, 7, 198, 45));
  EXPECT_EQ(tap_->stats().dns_responses_forged, 1u);
}

TEST_F(CensorNetTest, DnsForgeryAppliesToMxQueries) {
  install(gfc_profile(Ipv4Address(8, 7, 198, 45)));
  std::optional<proto::dns::QueryResult> result;
  resolver_->query(proto::dns::Name("twitter.com"),
                   proto::dns::RecordType::MX,
                   [&](const proto::dns::QueryResult& r) { result = r; });
  net_.run_for(Duration::seconds(1));
  ASSERT_TRUE(result && result->answered());
  // §3.2.3: the GFC injects a bad *A* answer even for MX queries.
  EXPECT_EQ(result->response->first_a(), Ipv4Address(8, 7, 198, 45));
}

TEST_F(CensorNetTest, UnblockedDnsPassesThrough) {
  install(gfc_profile());
  std::optional<proto::dns::QueryResult> result;
  resolver_->query(proto::dns::Name("open.example"),
                   proto::dns::RecordType::A,
                   [&](const proto::dns::QueryResult& r) { result = r; });
  net_.run_for(Duration::seconds(1));
  ASSERT_TRUE(result && result->answered());
  EXPECT_EQ(result->address(), Ipv4Address(198, 18, 0, 80));
  EXPECT_EQ(tap_->stats().dns_responses_forged, 0u);
}

TEST_F(CensorNetTest, NullRouteDropsSilently) {
  install(dropping_profile({web_host_->address()}));
  proto::http::Client http(*client_stack_);
  std::optional<proto::http::FetchResult> result;
  proto::tcp::ConnectOptions opts;
  opts.rto = Duration::millis(100);
  opts.max_retries = 2;
  http.fetch(web_host_->address(), 80,
             proto::http::Request::get("web", "/"),
             [&](const proto::http::FetchResult& r) { result = r; },
             Duration::seconds(3), opts);
  net_.run_for(Duration::seconds(5));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->outcome, proto::http::FetchOutcome::ConnectTimeout);
  EXPECT_GT(tap_->stats().dropped_inline, 0u);
  EXPECT_EQ(tap_->stats().rst_packets_injected, 0u);
}

TEST_F(CensorNetTest, PortBlockOnlyAffectsThatPort) {
  install(dropping_profile({}, {{web_host_->address(), 81}}));
  proto::http::Client http(*client_stack_);
  std::optional<proto::http::FetchResult> ok_result;
  http.fetch(web_host_->address(), 80,
             proto::http::Request::get("web", "/plain"),
             [&](const proto::http::FetchResult& r) { ok_result = r; });
  net_.run_for(Duration::seconds(3));
  ASSERT_TRUE(ok_result);
  EXPECT_EQ(ok_result->outcome, proto::http::FetchOutcome::Ok);

  // Port 81 is blocked: SYNs vanish (no RST from the server's closed
  // port, because the censor eats the packet first).
  bool error = false;
  proto::tcp::ConnectOptions opts;
  opts.rto = Duration::millis(100);
  opts.max_retries = 1;
  auto* c = client_stack_->connect(web_host_->address(), 81, opts);
  c->on_error = [&](proto::tcp::Connection& conn) {
    error = true;
    EXPECT_EQ(conn.close_reason(), proto::tcp::CloseReason::ConnectTimeout);
  };
  net_.run_for(Duration::seconds(3));
  EXPECT_TRUE(error);
}

TEST_F(CensorNetTest, StateStaysBounded) {
  install(gfc_profile());
  EXPECT_EQ(tap_->state_bytes(), 0u);
  proto::http::Client http(*client_stack_);
  http.fetch(web_host_->address(), 80,
             proto::http::Request::get("web", "/a"),
             [](const proto::http::FetchResult&) {});
  net_.run_for(Duration::seconds(2));
  EXPECT_GT(tap_->stats().packets_seen, 0u);
  // One flow's worth of reassembly state at most.
  EXPECT_LE(tap_->state_bytes(), 2u * 16 * 1024);
}

}  // namespace
}  // namespace sm::censor
