#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "proto/smtp/client.hpp"
#include "proto/smtp/server.hpp"

namespace sm::proto::smtp {
namespace {

using common::Duration;
using common::Ipv4Address;

class SmtpTest : public ::testing::Test {
 protected:
  SmtpTest() {
    client_host_ = net_.add_host("c", Ipv4Address(10, 0, 0, 1));
    server_host_ = net_.add_host("s", Ipv4Address(10, 0, 0, 25));
    router_ = net_.add_router("r");
    net_.connect(client_host_, router_);
    net_.connect(server_host_, router_);
    client_stack_ = std::make_unique<tcp::Stack>(*client_host_);
    server_stack_ = std::make_unique<tcp::Stack>(*server_host_);
    server_ = std::make_unique<Server>(*server_stack_, "mx.example.com");
    client_ = std::make_unique<Client>(*client_stack_);
  }

  Envelope envelope() {
    Envelope e;
    e.helo_domain = "sender.example";
    e.mail_from = "<alice@sender.example>";
    e.rcpt_to = "<bob@example.com>";
    e.data = "Subject: test\r\n\r\nBody line 1\r\nBody line 2\r\n";
    return e;
  }

  netsim::Network net_;
  netsim::Host* client_host_;
  netsim::Host* server_host_;
  netsim::Router* router_;
  std::unique_ptr<tcp::Stack> client_stack_;
  std::unique_ptr<tcp::Stack> server_stack_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<Client> client_;
};

TEST_F(SmtpTest, FullTransactionDelivers) {
  std::optional<DeliveryResult> result;
  client_->deliver(server_host_->address(), envelope(),
                   [&](const DeliveryResult& r) { result = r; });
  net_.run_for(Duration::seconds(5));
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->delivered()) << to_string(result->stage);
  ASSERT_EQ(server_->message_count(), 1u);
  const MailMessage& m = server_->messages()[0];
  EXPECT_EQ(m.mail_from, "<alice@sender.example>");
  ASSERT_EQ(m.rcpt_to.size(), 1u);
  EXPECT_EQ(m.rcpt_to[0], "<bob@example.com>");
  EXPECT_NE(m.data.find("Body line 1"), std::string::npos);
}

TEST_F(SmtpTest, DotStuffingRoundTrip) {
  Envelope e = envelope();
  e.data = "Line\r\n.starts.with.dot\r\n..double\r\n";
  std::optional<DeliveryResult> result;
  client_->deliver(server_host_->address(), e,
                   [&](const DeliveryResult& r) { result = r; });
  net_.run_for(Duration::seconds(5));
  ASSERT_TRUE(result && result->delivered());
  ASSERT_EQ(server_->message_count(), 1u);
  const std::string& data = server_->messages()[0].data;
  EXPECT_NE(data.find(".starts.with.dot"), std::string::npos);
  EXPECT_NE(data.find("..double"), std::string::npos);
  // No spurious dot-termination mid-message.
  EXPECT_EQ(server_->message_count(), 1u);
}

TEST_F(SmtpTest, ConnectFailureReported) {
  std::optional<DeliveryResult> result;
  client_->deliver(Ipv4Address(203, 0, 113, 25), envelope(),
                   [&](const DeliveryResult& r) { result = r; }, 25,
                   Duration::seconds(8));
  net_.run_for(Duration::seconds(10));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->stage, DeliveryStage::ConnectFailed);
}

TEST_F(SmtpTest, ConnectResetReported) {
  std::optional<DeliveryResult> result;
  client_->deliver(server_host_->address(), envelope(),
                   [&](const DeliveryResult& r) { result = r; },
                   /*port=*/26);  // closed port -> RST
  net_.run_for(Duration::seconds(5));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->stage, DeliveryStage::ConnectReset);
}

TEST_F(SmtpTest, ServerEnforcesCommandOrder) {
  // Drive the server manually over TCP: RCPT before MAIL must 503.
  std::string reply_log;
  tcp::Connection* c = client_stack_->connect(server_host_->address(), 25);
  c->on_data = [&](tcp::Connection& conn, std::span<const uint8_t> data) {
    reply_log += common::to_string(data);
    if (reply_log.find("220 ") != std::string::npos &&
        reply_log.find("rcpt-sent") == std::string::npos) {
      reply_log += "rcpt-sent";
      conn.send_text("RCPT TO:<x@y>\r\n");
    }
  };
  net_.run_for(Duration::seconds(2));
  EXPECT_NE(reply_log.find("503"), std::string::npos);
}

TEST_F(SmtpTest, ServerHandlesRsetAndNoop) {
  std::vector<std::string> script{"HELO x\r\n", "NOOP\r\n",
                                  "MAIL FROM:<a@b>\r\n", "RSET\r\n",
                                  "QUIT\r\n"};
  std::string replies;
  size_t next = 0;
  tcp::Connection* c = client_stack_->connect(server_host_->address(), 25);
  c->on_data = [&](tcp::Connection& conn, std::span<const uint8_t> data) {
    replies += common::to_string(data);
    if (next < script.size()) conn.send_text(script[next++]);
  };
  net_.run_for(Duration::seconds(2));
  EXPECT_NE(replies.find("221"), std::string::npos);  // QUIT acknowledged
  // Every scripted command got a positive reply.
  EXPECT_EQ(server_->message_count(), 0u);
}

TEST_F(SmtpTest, UnknownCommandGets500) {
  std::string replies;
  bool sent = false;
  tcp::Connection* c = client_stack_->connect(server_host_->address(), 25);
  c->on_data = [&](tcp::Connection& conn, std::span<const uint8_t> data) {
    replies += common::to_string(data);
    if (!sent) {
      sent = true;
      conn.send_text("FROBNICATE\r\n");
    }
  };
  net_.run_for(Duration::seconds(2));
  EXPECT_NE(replies.find("500"), std::string::npos);
}

TEST_F(SmtpTest, MultipleMessagesOneServer) {
  int delivered = 0;
  for (int i = 0; i < 3; ++i) {
    client_->deliver(server_host_->address(), envelope(),
                     [&](const DeliveryResult& r) {
                       if (r.delivered()) ++delivered;
                     });
  }
  net_.run_for(Duration::seconds(10));
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(server_->message_count(), 3u);
}

}  // namespace
}  // namespace sm::proto::smtp
