// Property tests for the open-addressing FlatMap/FlatSet: every mixed
// insert/erase/lookup history must agree with a std::map reference, the
// table must survive heavy tombstone churn without degrading, and
// erase-during-scan (erase_if) must be exact. These containers back the
// surveillance hot paths, so a probe-chain bug here silently corrupts
// attribution results.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/flathash.hpp"
#include "common/ip.hpp"
#include "common/rng.hpp"

namespace sm::common {
namespace {

TEST(FlatMap, BasicInsertFindErase) {
  FlatMap<uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(7), nullptr);
  m[7] = 42;
  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 42);
  EXPECT_EQ(m.size(), 1u);
  auto [p, inserted] = m.try_emplace(7);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*p, 42);
  EXPECT_TRUE(m.erase(7));
  EXPECT_FALSE(m.erase(7));
  EXPECT_TRUE(m.empty());
}

TEST(FlatMap, AgreesWithStdMapUnderRandomHistory) {
  Rng rng(0xF1A7);
  FlatMap<uint32_t, uint64_t> table;
  std::map<uint32_t, uint64_t> reference;
  for (int step = 0; step < 20000; ++step) {
    uint32_t key = static_cast<uint32_t>(rng.bounded(512));  // force reuse
    switch (rng.bounded(4)) {
      case 0:
      case 1: {  // insert/update
        uint64_t v = rng.next();
        table[key] = v;
        reference[key] = v;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(table.erase(key), reference.erase(key) == 1);
        break;
      }
      case 3: {  // lookup
        auto it = reference.find(key);
        uint64_t* p = table.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(table.size(), reference.size());
  }
  // Full sweep: every reference entry present with the right value.
  size_t seen = 0;
  table.for_each([&](uint32_t k, uint64_t v) {
    auto it = reference.find(k);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(v, it->second);
    ++seen;
  });
  EXPECT_EQ(seen, reference.size());
}

TEST(FlatMap, TombstoneChurnDoesNotLoseEntries) {
  // Insert/erase the same small key set far more times than the capacity:
  // without tombstone-aware growth this would either lose entries or
  // livelock in probe chains.
  FlatMap<uint32_t, uint32_t> m;
  for (uint32_t round = 0; round < 10000; ++round) {
    uint32_t k = round % 16;
    m[k] = round;
    if (round % 3 == 0) m.erase((round + 7) % 16);
  }
  EXPECT_LE(m.capacity(), 256u) << "churn should not balloon capacity";
  size_t live = 0;
  m.for_each([&](uint32_t, uint32_t) { ++live; });
  EXPECT_EQ(live, m.size());
}

TEST(FlatMap, EraseIfMatchesPredicateExactly) {
  FlatMap<uint32_t, uint32_t> m;
  for (uint32_t i = 0; i < 1000; ++i) m[i] = i;
  size_t erased = m.erase_if(
      [](uint32_t k, uint32_t) { return k % 3 == 0; });
  EXPECT_EQ(erased, 334u);  // 0,3,...,999
  EXPECT_EQ(m.size(), 666u);
  for (uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(m.find(i) != nullptr, i % 3 != 0) << i;
  }
}

TEST(FlatMap, ReserveAvoidsRehash) {
  FlatMap<uint64_t, uint64_t> m;
  m.reserve(1000);
  size_t cap = m.capacity();
  for (uint64_t i = 0; i < 1000; ++i) m[i] = i;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMap, Ipv4AddressKeys) {
  FlatMap<Ipv4Address, int> m;
  m[Ipv4Address(10, 0, 0, 1)] = 1;
  m[Ipv4Address(10, 0, 0, 2)] = 2;
  ASSERT_NE(m.find(Ipv4Address(10, 0, 0, 1)), nullptr);
  EXPECT_EQ(*m.find(Ipv4Address(10, 0, 0, 1)), 1);
  EXPECT_EQ(m.find(Ipv4Address(10, 0, 0, 3)), nullptr);
}

TEST(FlatSet, AgreesWithStdSetUnderRandomHistory) {
  Rng rng(0x5E7);
  FlatSet<uint64_t> set;
  std::set<uint64_t> reference;
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = rng.bounded(256);
    if (rng.chance(0.6)) {
      EXPECT_EQ(set.insert(key), reference.insert(key).second);
    } else {
      EXPECT_EQ(set.erase(key), reference.erase(key) == 1);
    }
    ASSERT_EQ(set.size(), reference.size());
  }
  for (uint64_t k = 0; k < 256; ++k)
    EXPECT_EQ(set.contains(k), reference.count(k) == 1) << k;
}

TEST(FlatMap, IterationOrderIsDeterministicAcrossInstances) {
  // Same insertion history in two instances -> same table order. The
  // sim's determinism contract allows table order to reach intermediate
  // state (never exports), but it must still be reproducible.
  auto build = [] {
    FlatMap<uint32_t, uint32_t> m;
    for (uint32_t i = 0; i < 500; ++i) m[i * 2654435761u] = i;
    for (uint32_t i = 0; i < 500; i += 3) m.erase(i * 2654435761u);
    std::vector<uint32_t> order;
    m.for_each([&](uint32_t k, uint32_t) { order.push_back(k); });
    return order;
  };
  EXPECT_EQ(build(), build());
}

}  // namespace
}  // namespace sm::common
