#include <gtest/gtest.h>

#include "ids/flow.hpp"
#include "packet/packet.hpp"

namespace sm::ids {
namespace {

using common::Duration;
using common::Ipv4Address;
using common::SimTime;
using packet::TcpFlags;

const Ipv4Address kClient(10, 0, 0, 1);
const Ipv4Address kServer(192, 0, 2, 80);

packet::Decoded tcp_packet(Ipv4Address src, Ipv4Address dst, uint16_t sp,
                           uint16_t dp, uint8_t flags, uint32_t seq,
                           uint32_t ack, const common::Bytes& payload,
                           common::Bytes& storage) {
  packet::Packet p = packet::make_tcp(src, dst, sp, dp, flags, seq, ack,
                                      payload);
  storage = p.data();
  return *packet::decode(storage);
}

TEST(StreamBuffer, InOrderAppend) {
  StreamBuffer sb(1024);
  sb.set_base(100);
  sb.add_segment(100, common::to_bytes("hello "));
  sb.add_segment(106, common::to_bytes("world"));
  EXPECT_EQ(common::to_string(sb.contiguous()), "hello world");
}

TEST(StreamBuffer, OutOfOrderMerges) {
  StreamBuffer sb(1024);
  sb.set_base(0);
  sb.add_segment(6, common::to_bytes("world"));
  EXPECT_EQ(sb.contiguous().size(), 0u);
  sb.add_segment(0, common::to_bytes("hello "));
  EXPECT_EQ(common::to_string(sb.contiguous()), "hello world");
}

TEST(StreamBuffer, DuplicateIgnored) {
  StreamBuffer sb(1024);
  sb.set_base(0);
  sb.add_segment(0, common::to_bytes("abc"));
  sb.add_segment(0, common::to_bytes("abc"));
  EXPECT_EQ(common::to_string(sb.contiguous()), "abc");
}

TEST(StreamBuffer, OverlapKeepsNewTail) {
  StreamBuffer sb(1024);
  sb.set_base(0);
  sb.add_segment(0, common::to_bytes("abcd"));
  sb.add_segment(2, common::to_bytes("cdEF"));
  EXPECT_EQ(common::to_string(sb.contiguous()), "abcdEF");
}

TEST(StreamBuffer, CapTrimsFront) {
  StreamBuffer sb(8);
  sb.set_base(0);
  sb.add_segment(0, common::to_bytes("0123456789AB"));
  EXPECT_LE(sb.contiguous().size(), 8u);
  // The tail is what survives.
  EXPECT_EQ(common::to_string(sb.contiguous()), "456789AB");
}

TEST(StreamBuffer, BaseSetOnlyOnce) {
  StreamBuffer sb(64);
  sb.set_base(100);
  sb.set_base(500);  // ignored
  sb.add_segment(100, common::to_bytes("x"));
  EXPECT_EQ(sb.contiguous().size(), 1u);
}

TEST(StreamBuffer, GapBoundedPending) {
  StreamBuffer sb(16);
  sb.set_base(0);
  // Far out-of-order chunks beyond the cap are dropped, not hoarded.
  for (uint32_t i = 1; i < 10; ++i)
    sb.add_segment(100 * i, common::Bytes(10, 'x'));
  EXPECT_LE(sb.buffered_bytes(), 16u + 10u);
}

TEST(FlowKey, CanonicalSymmetric) {
  common::Bytes s1, s2;
  auto fwd = tcp_packet(kClient, kServer, 1234, 80, TcpFlags::kSyn, 0, 0,
                        {}, s1);
  auto rev = tcp_packet(kServer, kClient, 80, 1234, TcpFlags::kAck, 0, 0,
                        {}, s2);
  EXPECT_EQ(FlowKey::from(fwd), FlowKey::from(rev));
}

TEST(FlowTable, TracksHandshakeToEstablished) {
  FlowTable table;
  common::Bytes s;
  auto syn = tcp_packet(kClient, kServer, 1234, 80, TcpFlags::kSyn, 100, 0,
                        {}, s);
  auto fc1 = table.update(SimTime(0), syn);
  ASSERT_TRUE(fc1.state);
  EXPECT_TRUE(fc1.to_server);
  EXPECT_TRUE(fc1.state->syn_seen);
  EXPECT_FALSE(fc1.state->established);

  common::Bytes s2;
  auto synack = tcp_packet(kServer, kClient, 80, 1234,
                           TcpFlags::kSyn | TcpFlags::kAck, 500, 101, {}, s2);
  auto fc2 = table.update(SimTime(1), synack);
  EXPECT_FALSE(fc2.to_server);
  EXPECT_TRUE(fc2.state->synack_seen);

  common::Bytes s3;
  auto ack = tcp_packet(kClient, kServer, 1234, 80, TcpFlags::kAck, 101,
                        501, {}, s3);
  auto fc3 = table.update(SimTime(2), ack);
  EXPECT_TRUE(fc3.state->established);
  EXPECT_EQ(table.flow_count(), 1u);
}

TEST(FlowTable, ReassemblesAcrossSegments) {
  FlowTable table;
  common::Bytes s;
  table.update(SimTime(0), tcp_packet(kClient, kServer, 1, 80,
                                      TcpFlags::kSyn, 100, 0, {}, s));
  common::Bytes s2;
  table.update(SimTime(1),
               tcp_packet(kServer, kClient, 80, 1,
                          TcpFlags::kSyn | TcpFlags::kAck, 200, 101, {}, s2));
  common::Bytes s3;
  auto fc = table.update(
      SimTime(2), tcp_packet(kClient, kServer, 1, 80, TcpFlags::kAck, 101,
                             201, common::to_bytes("fal"), s3));
  common::Bytes s4;
  fc = table.update(
      SimTime(3), tcp_packet(kClient, kServer, 1, 80, TcpFlags::kAck, 104,
                             201, common::to_bytes("un"), s4));
  ASSERT_TRUE(fc.state);
  EXPECT_EQ(common::to_string(fc.state->to_server_stream.contiguous()),
            "falun");
}

TEST(FlowTable, MidStreamPickupAnchorsAtFirstPayload) {
  FlowTable table;
  common::Bytes s;
  auto fc = table.update(
      SimTime(0), tcp_packet(kClient, kServer, 1, 80, TcpFlags::kAck, 5000,
                             1, common::to_bytes("midstream data"), s));
  ASSERT_TRUE(fc.state);
  EXPECT_EQ(common::to_string(fc.state->to_server_stream.contiguous()),
            "midstream data");
}

TEST(FlowTable, UdpFlowsTracked) {
  FlowTable table;
  packet::Packet p = packet::make_udp(kClient, kServer, 5000, 53,
                                      common::to_bytes("q"));
  auto d = *packet::decode(p.data());
  auto fc = table.update(SimTime(0), d);
  ASSERT_TRUE(fc.state);
  EXPECT_EQ(fc.state->packets_to_server, 1u);
}

TEST(FlowTable, NonTcpUdpIgnored) {
  FlowTable table;
  packet::Packet p = packet::make_icmp(kClient, kServer, 8, 0, 0);
  auto d = *packet::decode(p.data());
  auto fc = table.update(SimTime(0), d);
  EXPECT_EQ(fc.state, nullptr);
  EXPECT_EQ(table.flow_count(), 0u);
}

TEST(FlowTable, ExpiryEvictsIdleFlows) {
  FlowTable table(1024, Duration::seconds(10));
  common::Bytes s;
  table.update(SimTime(0), tcp_packet(kClient, kServer, 1, 80,
                                      TcpFlags::kSyn, 0, 0, {}, s));
  common::Bytes s2;
  table.update(SimTime(0), tcp_packet(kClient, kServer, 2, 80,
                                      TcpFlags::kSyn, 0, 0, {}, s2));
  EXPECT_EQ(table.flow_count(), 2u);
  // Refresh only the first flow late.
  common::Bytes s3;
  table.update(SimTime(Duration::seconds(9).count()),
               tcp_packet(kClient, kServer, 1, 80, TcpFlags::kAck, 1, 1, {},
                          s3));
  EXPECT_EQ(table.expire(SimTime(Duration::seconds(15).count())), 1u);
  EXPECT_EQ(table.flow_count(), 1u);
}

TEST(FlowTable, ByteAccounting) {
  FlowTable table;
  common::Bytes s;
  table.update(SimTime(0),
               tcp_packet(kClient, kServer, 1, 80, TcpFlags::kSyn, 0, 0, {},
                          s));
  common::Bytes s2;
  table.update(SimTime(1),
               tcp_packet(kClient, kServer, 1, 80, TcpFlags::kAck, 1, 1,
                          common::to_bytes("12345"), s2));
  EXPECT_GE(table.buffered_bytes(), 5u);
}

}  // namespace
}  // namespace sm::ids
