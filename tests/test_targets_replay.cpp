// Target lists (test-list CSV) and offline pcap replay through the IDS.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/overt.hpp"
#include "core/probe.hpp"
#include "core/scheduler.hpp"
#include "core/targets.hpp"
#include "ids/replay.hpp"
#include "surveillance/rules.hpp"

namespace sm::core {
namespace {

TEST(TargetList, ParsesCsvWithHeaderAndComments) {
  auto list = TargetList::parse_csv(
      "domain,category,note\n"
      "# a comment\n"
      "example.com,NEWS,a news site\n"
      "other.org,POLI\n"
      "\n"
      "bare.example\n");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list.targets()[0].domain, "example.com");
  EXPECT_EQ(list.targets()[0].category, "NEWS");
  EXPECT_EQ(list.targets()[0].note, "a news site");
  EXPECT_EQ(list.targets()[1].category, "POLI");
  EXPECT_TRUE(list.targets()[2].category.empty());
}

TEST(TargetList, SkipsMalformedLines) {
  auto list = TargetList::parse_csv(
      "notadomain,X\n"       // no dot
      "has space.com,X\n"    // space in domain
      "good.example,X\n");
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.skipped_lines(), 2u);
}

TEST(TargetList, NormalizesDomainCase) {
  auto list = TargetList::parse_csv("WWW.Example.COM,NEWS\n");
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list.targets()[0].domain, "www.example.com");
}

TEST(TargetList, CsvRoundTrip) {
  TargetList list = TargetList::builtin_sample();
  auto reparsed = TargetList::parse_csv(list.to_csv());
  ASSERT_EQ(reparsed.size(), list.size());
  for (size_t i = 0; i < list.size(); ++i) {
    EXPECT_EQ(reparsed.targets()[i].domain, list.targets()[i].domain);
    EXPECT_EQ(reparsed.targets()[i].category, list.targets()[i].category);
  }
}

TEST(TargetList, CategoryQueries) {
  TargetList list = TargetList::builtin_sample();
  auto soci = list.by_category("SOCI");
  EXPECT_EQ(soci.size(), 2u);
  auto cats = list.categories();
  EXPECT_GE(cats.size(), 4u);
}

TEST(TargetList, DrivesSchedulerCampaign) {
  Testbed tb;
  MeasurementScheduler scheduler(tb);
  TargetList list = TargetList::builtin_sample();
  for (const auto& target : list.by_category("SOCI")) {
    scheduler.enqueue([domain = target.domain](Testbed& t) {
      return std::make_unique<OvertDnsProbe>(
          t, OvertDnsOptions{.domain = domain});
    });
  }
  auto reports = scheduler.run_all();
  ASSERT_EQ(reports.size(), 2u);
  for (const auto& r : reports)
    EXPECT_EQ(r.verdict, Verdict::BlockedDnsForgery) << r.to_string();
}

TEST(Replay, RecordedTraceReproducesAlertsOffline) {
  // Run an overt probe online, capture the trace, then replay it through
  // a fresh IDS with the community ruleset: the measurement-tool alert
  // must reappear offline.
  Testbed tb;
  OvertHttpProbe probe(tb, {.domain = "open.example",
                            .user_agent = "OONI-Probe/2.0"});
  run_probe(tb, probe);

  ids::Engine offline(surveillance::community_ruleset());
  auto result = ids::replay(offline, tb.trace->records());
  EXPECT_GT(result.packets, 5u);
  EXPECT_EQ(result.undecodable, 0u);
  bool found_measurement_alert = false;
  for (const auto& alert : result.alerts)
    if (alert.classtype == "measurement-tool") found_measurement_alert = true;
  EXPECT_TRUE(found_measurement_alert);
}

TEST(Replay, DifferentRulesetOverSameTrace) {
  // The point of offline replay: re-ask questions of old captures. A
  // ruleset looking only for the spam signature finds nothing in a web
  // fetch trace.
  Testbed tb;
  OvertHttpProbe probe(tb, {.domain = "open.example"});
  run_probe(tb, probe);
  ids::Engine offline = ids::Engine::from_text(
      "alert tcp any any -> any 25 (msg:\"spam\"; content:\"MAIL FROM\"; "
      "sid:1;)");
  auto result = ids::replay(offline, tb.trace->records());
  EXPECT_TRUE(result.alerts.empty());
  EXPECT_GT(result.packets, 0u);
}

TEST(Replay, FileRoundTrip) {
  Testbed tb;
  OvertHttpProbe probe(tb, {.domain = "open.example",
                            .user_agent = "OONI-Probe/2.0"});
  run_probe(tb, probe);
  std::string path = testing::TempDir() + "/sm_replay_test.pcap";
  ASSERT_TRUE(tb.trace->save(path));

  ids::Engine offline(surveillance::community_ruleset());
  auto result = ids::replay_file(offline, path);
  ASSERT_TRUE(result);
  EXPECT_FALSE(result->alerts.empty());
  std::remove(path.c_str());
}

TEST(Replay, MissingFile) {
  ids::Engine offline(surveillance::community_ruleset());
  EXPECT_FALSE(ids::replay_file(offline, "/no/such/file.pcap"));
}

TEST(PrefixBlocking, RangeNullRouteDropsWholePrefix) {
  TestbedConfig cfg;
  cfg.policy = censor::CensorPolicy{};
  cfg.policy.blocked_prefixes.push_back(
      common::Cidr(common::Ipv4Address(198, 18, 0, 0), 24));
  Testbed tb(cfg);
  // Both web servers live inside 198.18.0.0/24 -> both unreachable.
  OvertHttpProbe p1(tb, {.domain = "open.example"});
  EXPECT_EQ(run_probe(tb, p1).verdict, Verdict::BlockedTimeout);
  // The measurement server at 203.0.113.50 is outside the prefix.
  proto::http::Client http(*tb.client_stack);
  bool ok = false;
  http.fetch(tb.addr().measurement, 80,
             proto::http::Request::get("measure.example", "/"),
             [&ok](const proto::http::FetchResult& r) { ok = r.ok(); });
  tb.run_for(common::Duration::seconds(3));
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace sm::core
