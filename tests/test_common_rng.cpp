#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace sm::common {
namespace {

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedZeroIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.03);  // mean = 1/lambda
}

TEST(Rng, NormalMoments) {
  Rng rng(21);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.15);
  EXPECT_NEAR(var, 9.0, 0.6);
}

TEST(Rng, AlnumString) {
  Rng rng(23);
  std::string s = rng.alnum_string(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s)
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << c;
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(25);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependent) {
  Rng parent(27);
  Rng child = parent.fork();
  // The fork and the parent produce different streams.
  int same = 0;
  for (int i = 0; i < 50; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(ZipfSampler, HeadHeavier) {
  Rng rng(29);
  ZipfSampler zipf(1000, 1.0);
  std::vector<size_t> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100] * 5);
}

TEST(ZipfSampler, InRange) {
  Rng rng(31);
  ZipfSampler zipf(10, 0.8);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 10u);
}

// Parameterized: Zipf rank-frequency slope roughly matches the exponent.
class ZipfExponentSweep : public ::testing::TestWithParam<double> {};

TEST_P(ZipfExponentSweep, RatioMatchesTheory) {
  double s = GetParam();
  Rng rng(33);
  ZipfSampler zipf(10000, s);
  size_t c1 = 0, c10 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    size_t rank = zipf.sample(rng);
    if (rank == 0) ++c1;
    if (rank == 9) ++c10;
  }
  // Expected ratio c1/c10 = 10^s.
  ASSERT_GT(c10, 0u);
  double ratio = static_cast<double>(c1) / static_cast<double>(c10);
  double expected = std::pow(10.0, s);
  EXPECT_NEAR(ratio / expected, 1.0, 0.35) << "s=" << s;
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfExponentSweep,
                         ::testing::Values(0.7, 0.9, 1.1));

}  // namespace
}  // namespace sm::common
