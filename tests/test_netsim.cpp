#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "netsim/trace.hpp"
#include "packet/packet.hpp"

namespace sm::netsim {
namespace {

using common::Duration;
using common::Ipv4Address;
using common::SimTime;

TEST(Engine, RunsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(Duration::millis(30), [&] { order.push_back(3); });
  e.schedule(Duration::millis(10), [&] { order.push_back(1); });
  e.schedule(Duration::millis(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), SimTime(30'000'000));
}

TEST(Engine, SimultaneousEventsRunInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    e.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedScheduling) {
  Engine e;
  int fired = 0;
  e.schedule(Duration::millis(1), [&] {
    e.schedule(Duration::millis(1), [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), SimTime(2'000'000));
}

TEST(Engine, RunUntilAdvancesClockToDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(Duration::seconds(100), [&] { ++fired; });
  e.run_until(SimTime(1'000'000'000));  // 1s
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(e.now(), SimTime(1'000'000'000));
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, MaxEventsBound) {
  Engine e;
  for (int i = 0; i < 10; ++i) e.schedule(Duration::millis(i), [] {});
  EXPECT_EQ(e.run(4), 4u);
  EXPECT_EQ(e.pending(), 6u);
}

TEST(Engine, PastScheduleClampsToNow) {
  Engine e;
  e.schedule(Duration::millis(10), [] {});
  e.run();
  int fired = 0;
  e.schedule_at(SimTime(0), [&] { ++fired; });  // in the past
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), SimTime(10'000'000));  // clock did not go backward
}

class TwoHosts : public ::testing::Test {
 protected:
  TwoHosts() {
    a_ = net_.add_host("a", Ipv4Address(10, 0, 0, 1));
    b_ = net_.add_host("b", Ipv4Address(10, 0, 0, 2));
    r_ = net_.add_router("r");
    net_.connect(a_, r_, LinkConfig{Duration::millis(1), 0, 0.0});
    net_.connect(b_, r_, LinkConfig{Duration::millis(1), 0, 0.0});
  }
  Network net_;
  Host* a_;
  Host* b_;
  Router* r_;
};

TEST_F(TwoHosts, UdpDelivery) {
  std::string received;
  b_->udp_bind(9000, [&](const packet::Decoded&,
                         std::span<const uint8_t> payload) {
    received = common::to_string(payload);
  });
  a_->send_udp(b_->address(), 1234, 9000, common::to_bytes("ping"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(received, "ping");
  EXPECT_EQ(r_->counters().forwarded, 1u);
}

TEST_F(TwoHosts, LatencyIsModeled) {
  SimTime arrival{};
  b_->udp_bind(9000, [&](const packet::Decoded&, std::span<const uint8_t>) {
    arrival = net_.engine().now();
  });
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"));
  net_.run_for(Duration::millis(10));
  // Two 1ms links.
  EXPECT_EQ(arrival, SimTime(2'000'000));
}

TEST_F(TwoHosts, TtlExpiryGeneratesIcmpTimeExceeded) {
  bool got_ttl_exceeded = false;
  a_->set_icmp_handler([&](const packet::Decoded& d, const common::Bytes&) {
    if (d.icmp->type == packet::IcmpHeader::kTimeExceeded)
      got_ttl_exceeded = true;
  });
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"), /*ttl=*/1);
  net_.run_for(Duration::millis(10));
  EXPECT_TRUE(got_ttl_exceeded);
  EXPECT_EQ(r_->counters().dropped_ttl, 1u);
  EXPECT_EQ(r_->counters().forwarded, 0u);
}

TEST_F(TwoHosts, PingReply) {
  bool got_reply = false;
  a_->set_icmp_handler([&](const packet::Decoded& d, const common::Bytes&) {
    if (d.icmp->type == packet::IcmpHeader::kEchoReply) got_reply = true;
  });
  a_->send(packet::make_icmp(a_->address(), b_->address(),
                             packet::IcmpHeader::kEchoRequest, 0, 1));
  net_.run_for(Duration::millis(10));
  EXPECT_TRUE(got_reply);
}

TEST_F(TwoHosts, NoRouteDropsPacket) {
  a_->send_udp(Ipv4Address(203, 0, 113, 99), 1, 2, common::to_bytes("x"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(r_->counters().dropped_no_route, 1u);
}

TEST_F(TwoHosts, IngressFilterDropsSpoofed) {
  // Port 0 is host a's port; forbid any src that is not a's address.
  r_->set_ingress_filter(0, [addr = a_->address()](Ipv4Address src) {
    return src == addr;
  });
  // Spoofed packet from a claiming to be 10.0.0.77.
  a_->send(packet::make_udp(Ipv4Address(10, 0, 0, 77), b_->address(), 1,
                            9000, common::to_bytes("spoof")));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(r_->counters().dropped_ingress, 1u);
  // Legit packet passes.
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("ok"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(r_->counters().forwarded, 1u);
}

TEST_F(TwoHosts, TapSeesAndCanDrop) {
  struct DropUdpTap : Tap {
    int seen = 0;
    TapDecision process(const TapContext& ctx, Router&) override {
      ++seen;
      return ctx.decoded.udp ? TapDecision::Drop : TapDecision::Pass;
    }
  } tap;
  r_->add_tap(&tap);
  bool received = false;
  b_->udp_bind(9000, [&](const packet::Decoded&, std::span<const uint8_t>) {
    received = true;
  });
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(tap.seen, 1);
  EXPECT_FALSE(received);
  EXPECT_EQ(r_->counters().dropped_by_tap, 1u);
}

TEST_F(TwoHosts, TapSeesPacketBeforeTtlExpiry) {
  // The ingress-mirror semantics: a TTL=1 packet is still observed.
  struct CountTap : Tap {
    int seen = 0;
    TapDecision process(const TapContext&, Router&) override {
      ++seen;
      return TapDecision::Pass;
    }
  } tap;
  r_->add_tap(&tap);
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"), /*ttl=*/1);
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(tap.seen, 1);
  EXPECT_EQ(r_->counters().dropped_ttl, 1u);
}

TEST_F(TwoHosts, InjectedPacketBypassesTaps) {
  struct CountTap : Tap {
    int seen = 0;
    TapDecision process(const TapContext&, Router&) override {
      ++seen;
      return TapDecision::Pass;
    }
  } tap;
  r_->add_tap(&tap);
  r_->inject(packet::make_udp(Ipv4Address(1, 1, 1, 1), b_->address(), 1,
                              9000, common::to_bytes("inj")));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(tap.seen, 0);
  EXPECT_EQ(r_->counters().injected, 1u);
}

TEST_F(TwoHosts, TraceTapRecords) {
  TraceTap trace;
  r_->add_tap(&trace);
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"));
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("y"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(trace.size(), 2u);
}

TEST_F(TwoHosts, TraceTapFilter) {
  TraceTap trace([](const packet::Decoded& d) {
    return d.udp && d.udp->dst_port == 53;
  });
  r_->add_tap(&trace);
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"));
  a_->send_udp(b_->address(), 1, 53, common::to_bytes("y"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(trace.size(), 1u);
}

TEST(Link, LossDropsPackets) {
  Network net;
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  // Direct host-to-host lossy link.
  Link* link = net.connect(a, b, LinkConfig{Duration::millis(1), 0, 0.5});
  int received = 0;
  b->udp_bind(1, [&](const packet::Decoded&, std::span<const uint8_t>) {
    ++received;
  });
  for (int i = 0; i < 200; ++i)
    a->send_udp(b->address(), 1, 1, common::to_bytes("x"));
  net.run_for(Duration::seconds(1));
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(link->packets_dropped() + static_cast<uint64_t>(received), 200u);
}

TEST(Link, BandwidthAddsSerializationDelay) {
  Network net;
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  // 8 kbit/s: a 1000-byte packet takes 1 s to serialize.
  net.connect(a, b, LinkConfig{Duration::millis(0), 8000, 0.0});
  SimTime arrival{};
  b->udp_bind(1, [&](const packet::Decoded&, std::span<const uint8_t>) {
    arrival = net.engine().now();
  });
  common::Bytes big(1000 - 28, 'x');  // IP+UDP headers make 1000 total
  a->send_udp(b->address(), 1, 1, big);
  net.run_for(Duration::seconds(3));
  EXPECT_NEAR(arrival.to_seconds(), 1.0, 0.01);
}

TEST(Network, HostAndRouterLookupByName) {
  Network net;
  net.add_host("alpha", Ipv4Address(10, 0, 0, 1));
  net.add_router("core");
  EXPECT_NE(net.host("alpha"), nullptr);
  EXPECT_EQ(net.host("beta"), nullptr);
  EXPECT_NE(net.router("core"), nullptr);
  EXPECT_EQ(net.router("edge"), nullptr);
}

TEST(Router, LongestPrefixMatchWins) {
  Network net;
  Router* r = net.add_router("r");
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 1, 0, 1));
  net.connect(a, r);
  net.connect(b, r);
  // Manual routes: /8 to port 0, /16 to port 1 — /16 must win for 10.1.
  r->add_route(common::Cidr(Ipv4Address(10, 0, 0, 0), 8), 0);
  r->add_route(common::Cidr(Ipv4Address(10, 1, 0, 0), 16), 1);
  EXPECT_EQ(r->route_lookup(Ipv4Address(10, 1, 2, 3)), 1);
  EXPECT_EQ(r->route_lookup(Ipv4Address(10, 2, 0, 1)), 0);
  EXPECT_EQ(r->route_lookup(Ipv4Address(11, 0, 0, 1)), -1);
}

}  // namespace
}  // namespace sm::netsim
