#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "netsim/topology.hpp"
#include "netsim/trace.hpp"
#include "packet/packet.hpp"

namespace sm::netsim {
namespace {

using common::Duration;
using common::Ipv4Address;
using common::SimTime;

TEST(Engine, RunsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(Duration::millis(30), [&] { order.push_back(3); });
  e.schedule(Duration::millis(10), [&] { order.push_back(1); });
  e.schedule(Duration::millis(20), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), SimTime(30'000'000));
}

TEST(Engine, SimultaneousEventsRunInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    e.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NestedScheduling) {
  Engine e;
  int fired = 0;
  e.schedule(Duration::millis(1), [&] {
    e.schedule(Duration::millis(1), [&] { ++fired; });
  });
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), SimTime(2'000'000));
}

TEST(Engine, RunUntilAdvancesClockToDeadline) {
  Engine e;
  int fired = 0;
  e.schedule(Duration::seconds(100), [&] { ++fired; });
  e.run_until(SimTime(1'000'000'000));  // 1s
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(e.now(), SimTime(1'000'000'000));
  EXPECT_EQ(e.pending(), 1u);
}

TEST(Engine, MaxEventsBound) {
  Engine e;
  for (int i = 0; i < 10; ++i) e.schedule(Duration::millis(i), [] {});
  EXPECT_EQ(e.run(4), 4u);
  EXPECT_EQ(e.pending(), 6u);
}

TEST(Engine, PastScheduleClampsToNow) {
  Engine e;
  e.schedule(Duration::millis(10), [] {});
  e.run();
  int fired = 0;
  e.schedule_at(SimTime(0), [&] { ++fired; });  // in the past
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), SimTime(10'000'000));  // clock did not go backward
}

class TwoHosts : public ::testing::Test {
 protected:
  TwoHosts() {
    a_ = net_.add_host("a", Ipv4Address(10, 0, 0, 1));
    b_ = net_.add_host("b", Ipv4Address(10, 0, 0, 2));
    r_ = net_.add_router("r");
    net_.connect(a_, r_, LinkConfig{Duration::millis(1), 0, 0.0});
    net_.connect(b_, r_, LinkConfig{Duration::millis(1), 0, 0.0});
  }
  Network net_;
  Host* a_;
  Host* b_;
  Router* r_;
};

TEST_F(TwoHosts, UdpDelivery) {
  std::string received;
  b_->udp_bind(9000, [&](const packet::Decoded&,
                         std::span<const uint8_t> payload) {
    received = common::to_string(payload);
  });
  a_->send_udp(b_->address(), 1234, 9000, common::to_bytes("ping"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(received, "ping");
  EXPECT_EQ(r_->counters().forwarded, 1u);
}

TEST_F(TwoHosts, LatencyIsModeled) {
  SimTime arrival{};
  b_->udp_bind(9000, [&](const packet::Decoded&, std::span<const uint8_t>) {
    arrival = net_.engine().now();
  });
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"));
  net_.run_for(Duration::millis(10));
  // Two 1ms links.
  EXPECT_EQ(arrival, SimTime(2'000'000));
}

TEST_F(TwoHosts, TtlExpiryGeneratesIcmpTimeExceeded) {
  bool got_ttl_exceeded = false;
  a_->set_icmp_handler([&](const packet::Decoded& d, const common::Bytes&) {
    if (d.icmp->type == packet::IcmpHeader::kTimeExceeded)
      got_ttl_exceeded = true;
  });
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"), /*ttl=*/1);
  net_.run_for(Duration::millis(10));
  EXPECT_TRUE(got_ttl_exceeded);
  EXPECT_EQ(r_->counters().dropped_ttl, 1u);
  EXPECT_EQ(r_->counters().forwarded, 0u);
}

TEST_F(TwoHosts, PingReply) {
  bool got_reply = false;
  a_->set_icmp_handler([&](const packet::Decoded& d, const common::Bytes&) {
    if (d.icmp->type == packet::IcmpHeader::kEchoReply) got_reply = true;
  });
  a_->send(packet::make_icmp(a_->address(), b_->address(),
                             packet::IcmpHeader::kEchoRequest, 0, 1));
  net_.run_for(Duration::millis(10));
  EXPECT_TRUE(got_reply);
}

TEST_F(TwoHosts, NoRouteDropsPacket) {
  a_->send_udp(Ipv4Address(203, 0, 113, 99), 1, 2, common::to_bytes("x"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(r_->counters().dropped_no_route, 1u);
}

TEST_F(TwoHosts, IngressFilterDropsSpoofed) {
  // Port 0 is host a's port; forbid any src that is not a's address.
  r_->set_ingress_filter(0, [addr = a_->address()](const common::IpAddress& src) {
    return src == common::IpAddress(addr);
  });
  // Spoofed packet from a claiming to be 10.0.0.77.
  a_->send(packet::make_udp(Ipv4Address(10, 0, 0, 77), b_->address(), 1,
                            9000, common::to_bytes("spoof")));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(r_->counters().dropped_ingress, 1u);
  // Legit packet passes.
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("ok"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(r_->counters().forwarded, 1u);
}

TEST_F(TwoHosts, TapSeesAndCanDrop) {
  struct DropUdpTap : Tap {
    int seen = 0;
    TapDecision process(const TapContext& ctx, Router&) override {
      ++seen;
      return ctx.decoded().udp ? TapDecision::Drop : TapDecision::Pass;
    }
  } tap;
  r_->add_tap(&tap);
  bool received = false;
  b_->udp_bind(9000, [&](const packet::Decoded&, std::span<const uint8_t>) {
    received = true;
  });
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(tap.seen, 1);
  EXPECT_FALSE(received);
  EXPECT_EQ(r_->counters().dropped_by_tap, 1u);
}

TEST_F(TwoHosts, TapSeesPacketBeforeTtlExpiry) {
  // The ingress-mirror semantics: a TTL=1 packet is still observed.
  struct CountTap : Tap {
    int seen = 0;
    TapDecision process(const TapContext&, Router&) override {
      ++seen;
      return TapDecision::Pass;
    }
  } tap;
  r_->add_tap(&tap);
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"), /*ttl=*/1);
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(tap.seen, 1);
  EXPECT_EQ(r_->counters().dropped_ttl, 1u);
}

TEST_F(TwoHosts, InjectedPacketBypassesTaps) {
  struct CountTap : Tap {
    int seen = 0;
    TapDecision process(const TapContext&, Router&) override {
      ++seen;
      return TapDecision::Pass;
    }
  } tap;
  r_->add_tap(&tap);
  r_->inject(packet::make_udp(Ipv4Address(1, 1, 1, 1), b_->address(), 1,
                              9000, common::to_bytes("inj")));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(tap.seen, 0);
  EXPECT_EQ(r_->counters().injected, 1u);
}

TEST_F(TwoHosts, TraceTapRecords) {
  TraceTap trace;
  r_->add_tap(&trace);
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"));
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("y"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(trace.size(), 2u);
}

TEST_F(TwoHosts, TraceTapFilter) {
  TraceTap trace([](const packet::Decoded& d) {
    return d.udp && d.udp->dst_port == 53;
  });
  r_->add_tap(&trace);
  a_->send_udp(b_->address(), 1, 9000, common::to_bytes("x"));
  a_->send_udp(b_->address(), 1, 53, common::to_bytes("y"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(trace.size(), 1u);
}

TEST(Link, LossDropsPackets) {
  Network net;
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  // Direct host-to-host lossy link.
  Link* link = net.connect(a, b, LinkConfig{Duration::millis(1), 0, 0.5});
  int received = 0;
  b->udp_bind(1, [&](const packet::Decoded&, std::span<const uint8_t>) {
    ++received;
  });
  for (int i = 0; i < 200; ++i)
    a->send_udp(b->address(), 1, 1, common::to_bytes("x"));
  net.run_for(Duration::seconds(1));
  EXPECT_GT(received, 50);
  EXPECT_LT(received, 150);
  EXPECT_EQ(link->packets_dropped() + static_cast<uint64_t>(received), 200u);
}

TEST(Link, BandwidthAddsSerializationDelay) {
  Network net;
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  // 8 kbit/s: a 1000-byte packet takes 1 s to serialize.
  net.connect(a, b, LinkConfig{Duration::millis(0), 8000, 0.0});
  SimTime arrival{};
  b->udp_bind(1, [&](const packet::Decoded&, std::span<const uint8_t>) {
    arrival = net.engine().now();
  });
  common::Bytes big(1000 - 28, 'x');  // IP+UDP headers make 1000 total
  a->send_udp(b->address(), 1, 1, big);
  net.run_for(Duration::seconds(3));
  EXPECT_NEAR(arrival.to_seconds(), 1.0, 0.01);
}

TEST(Network, HostAndRouterLookupByName) {
  Network net;
  net.add_host("alpha", Ipv4Address(10, 0, 0, 1));
  net.add_router("core");
  EXPECT_NE(net.host("alpha"), nullptr);
  EXPECT_EQ(net.host("beta"), nullptr);
  EXPECT_NE(net.router("core"), nullptr);
  EXPECT_EQ(net.router("edge"), nullptr);
}

TEST(Router, LongestPrefixMatchWins) {
  Network net;
  Router* r = net.add_router("r");
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 1, 0, 1));
  net.connect(a, r);
  net.connect(b, r);
  // Manual routes: /8 to port 0, /16 to port 1 — /16 must win for 10.1.
  r->add_route(common::Cidr(Ipv4Address(10, 0, 0, 0), 8), 0);
  r->add_route(common::Cidr(Ipv4Address(10, 1, 0, 0), 16), 1);
  EXPECT_EQ(r->route_lookup(Ipv4Address(10, 1, 2, 3)), 1);
  EXPECT_EQ(r->route_lookup(Ipv4Address(10, 2, 0, 1)), 0);
  EXPECT_EQ(r->route_lookup(Ipv4Address(11, 0, 0, 1)), -1);
}

// --- Impairment models ---

namespace {

/// Two hosts, one configurable link; sends `n` small UDP datagrams and
/// counts deliveries (including duplicates).
struct ImpairedPair {
  Network net;
  Host* a;
  Host* b;
  Link* link;
  int received = 0;

  explicit ImpairedPair(LinkConfig cfg, uint64_t seed_root = 7) {
    net.set_link_seed_root(seed_root);
    a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
    b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
    link = net.connect(a, b, cfg);
    b->udp_bind(1, [this](const packet::Decoded&, std::span<const uint8_t>) {
      ++received;
    });
  }

  void send(int n, Duration gap = Duration::millis(1)) {
    for (int i = 0; i < n; ++i) {
      net.engine().schedule(gap * i, [this] {
        a->send_udp(b->address(), 1, 1, common::to_bytes("x"));
      });
    }
    net.run_for(gap * (n + 1) + Duration::seconds(1));
  }
};

}  // namespace

TEST(Impairment, BurstLossDropsInBursts) {
  LinkConfig cfg{Duration::millis(1), 0, 0.0};
  cfg.impairment.burst = {.p_enter = 0.05, .p_exit = 0.3,
                          .loss_good = 0.0, .loss_bad = 1.0};
  ImpairedPair p(cfg);
  p.send(400);
  // Average loss = p_enter/(p_enter+p_exit) ≈ 14%; bounds are loose.
  EXPECT_GT(p.link->stats().dropped_burst, 10u);
  EXPECT_LT(p.link->stats().dropped_burst, 200u);
  EXPECT_EQ(p.link->stats().dropped_burst + p.received, 400);
  // Legacy total keeps counting every drop cause.
  EXPECT_EQ(p.link->packets_dropped(), p.link->stats().dropped_burst);
}

TEST(Impairment, FlapWindowDropsEverythingInside) {
  LinkConfig cfg{Duration::micros(10), 0, 0.0};
  cfg.impairment.flap = {.period = Duration::millis(100),
                         .down_for = Duration::millis(40),
                         .offset = Duration::millis(30)};
  ImpairedPair p(cfg);
  // One packet per ms for 100 ms: exactly those in [30ms, 70ms) die.
  p.send(100);
  EXPECT_EQ(p.link->stats().dropped_down, 40u);
  EXPECT_EQ(p.received, 60);
}

TEST(Impairment, FlapIsDownPureFunction) {
  FlapConfig flap{.period = Duration::millis(10),
                  .down_for = Duration::millis(2),
                  .offset = Duration::millis(5)};
  EXPECT_FALSE(flap.is_down(SimTime(0)));
  EXPECT_FALSE(flap.is_down(SimTime(4'999'999)));
  EXPECT_TRUE(flap.is_down(SimTime(5'000'000)));
  EXPECT_TRUE(flap.is_down(SimTime(6'999'999)));
  EXPECT_FALSE(flap.is_down(SimTime(7'000'000)));
  EXPECT_TRUE(flap.is_down(SimTime(15'000'000)));  // next cycle
}

TEST(Impairment, DuplicationDeliversExtraCopies) {
  LinkConfig cfg{Duration::millis(1), 0, 0.0};
  cfg.impairment.duplicate_rate = 0.3;
  ImpairedPair p(cfg);
  p.send(300);
  uint64_t dups = p.link->stats().duplicated;
  EXPECT_GT(dups, 40u);
  EXPECT_LT(dups, 150u);
  EXPECT_EQ(static_cast<uint64_t>(p.received), 300 + dups);
}

TEST(Impairment, CorruptionIsDroppedByChecksummedReceivers) {
  LinkConfig cfg{Duration::millis(1), 0, 0.0};
  cfg.impairment.corrupt_rate = 1.0;  // every packet gets a byte flip
  ImpairedPair p(cfg);
  p.send(100);
  const LinkStats& s = p.link->stats();
  // Every UDP packet was corrupted somewhere; flips covered by the
  // IP/UDP checksums are dropped at the NIC, the rest arrive damaged
  // and must not crash the decoder. Either way nothing is silently OK.
  EXPECT_EQ(s.dropped_corrupt + s.corrupted, 100u);
  EXPECT_GT(s.dropped_corrupt, 50u);  // UDP leaves few uncovered bytes
}

TEST(Impairment, ReorderJitterSwapsDeliveryOrder) {
  Network net;
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  LinkConfig cfg{Duration::micros(100), 0, 0.0};
  cfg.impairment.reorder_rate = 0.5;
  cfg.impairment.reorder_jitter = Duration::millis(5);
  Link* link = net.connect(a, b, cfg);
  std::vector<int> order;
  b->udp_bind(1, [&](const packet::Decoded&, std::span<const uint8_t> pl) {
    order.push_back(pl.empty() ? -1 : pl[0]);
  });
  for (int i = 0; i < 50; ++i) {
    net.engine().schedule(Duration::micros(200) * i, [&, i] {
      a->send_udp(b->address(), 1, 1, common::Bytes{uint8_t(i)});
    });
  }
  net.run_for(Duration::seconds(1));
  ASSERT_EQ(order.size(), 50u);
  EXPECT_GT(link->stats().reordered, 10u);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_NE(order, sorted);  // at least one packet was overtaken
}

TEST(Impairment, MechanismStreamsAreIndependent) {
  // Turning corruption on must not change *which* packets i.i.d. loss
  // drops: each mechanism draws from its own substream.
  auto drop_pattern = [](bool with_corruption) {
    LinkConfig cfg{Duration::millis(1), 0, 0.2};
    if (with_corruption) {
      cfg.impairment.corrupt_rate = 0.5;
      cfg.impairment.duplicate_rate = 0.3;
    }
    ImpairedPair p(cfg, 1234);
    p.send(100);
    return p.link->stats().dropped_loss;
  };
  EXPECT_EQ(drop_pattern(false), drop_pattern(true));
}

TEST(Impairment, SameSeedSameFateSequence) {
  auto run = [](uint64_t root) {
    LinkConfig cfg{Duration::millis(1), 0, 0.1};
    cfg.impairment.burst = {.p_enter = 0.02, .p_exit = 0.3,
                            .loss_good = 0.0, .loss_bad = 0.9};
    cfg.impairment.duplicate_rate = 0.05;
    cfg.impairment.reorder_rate = 0.1;
    ImpairedPair p(cfg, root);
    p.send(200);
    const LinkStats& s = p.link->stats();
    return std::tuple(s.dropped_loss, s.dropped_burst, s.duplicated,
                      s.reordered, p.received);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(Network, LinkSeedsAreDecorrelated) {
  // Regression: two equally-lossy links used to get near-identical
  // sequential seeds and could drop in near-lockstep. With SplitMix64
  // derivation from the topology root, their drop patterns differ.
  Network net;
  Host* a = net.add_host("a", Ipv4Address(10, 0, 0, 1));
  Host* b = net.add_host("b", Ipv4Address(10, 0, 0, 2));
  Host* c = net.add_host("c", Ipv4Address(10, 0, 0, 3));
  Host* d = net.add_host("d", Ipv4Address(10, 0, 0, 4));
  LinkConfig lossy{Duration::millis(1), 0, 0.5};
  Link* l1 = net.connect(a, b, lossy);
  Link* l2 = net.connect(c, d, lossy);
  std::vector<bool> got1(200, false), got2(200, false);
  b->udp_bind(1, [&](const packet::Decoded&, std::span<const uint8_t> pl) {
    got1[pl[0]] = true;
  });
  d->udp_bind(1, [&](const packet::Decoded&, std::span<const uint8_t> pl) {
    got2[pl[0]] = true;
  });
  for (int i = 0; i < 200; ++i) {
    a->send_udp(b->address(), 1, 1, common::Bytes{uint8_t(i)});
    c->send_udp(d->address(), 1, 1, common::Bytes{uint8_t(i)});
  }
  net.run_for(Duration::seconds(1));
  EXPECT_NE(got1, got2) << "lossy links drop in lockstep";
  EXPECT_GT(l1->packets_dropped(), 0u);
  EXPECT_GT(l2->packets_dropped(), 0u);
}

}  // namespace
}  // namespace sm::netsim
