// Observability layer: metrics registry determinism, Chrome-trace export
// well-formedness, flight-recorder wraparound, logging sink capture, the
// TraceTap record cap, and the no-behaviour-change guarantee when the
// layer is enabled on a full testbed run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "core/probe.hpp"
#include "core/report_json.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"
#include "core/top_ports.hpp"
#include "netsim/engine.hpp"
#include "netsim/topology.hpp"
#include "netsim/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "surveillance/mvr.hpp"

namespace sm {
namespace {

using common::Duration;
using common::SimTime;

// --- Registry ---------------------------------------------------------

TEST(Registry, CounterGaugeBasics) {
  obs::Registry reg;
  obs::Counter* c = reg.counter("sm_test_total");
  c->inc();
  c->inc(4);
  EXPECT_EQ(c->value(), 5u);
  c->set(42);
  EXPECT_EQ(c->value(), 42u);
  // Same (name, labels) -> same series; the pointer is stable.
  EXPECT_EQ(reg.counter("sm_test_total"), c);

  obs::Gauge* g = reg.gauge("sm_test_depth");
  g->set(3.5);
  g->add(0.5);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
  EXPECT_EQ(reg.series_count(), 2u);
}

TEST(Registry, LabeledSeriesAreIndependentAndOrderInsensitive) {
  obs::Registry reg;
  obs::Counter* a = reg.counter("sm_x_total", {{"k", "1"}});
  obs::Counter* b = reg.counter("sm_x_total", {{"k", "2"}});
  EXPECT_NE(a, b);
  a->inc(7);
  EXPECT_EQ(b->value(), 0u);
  // Label order must not mint a new series.
  obs::Counter* c1 =
      reg.counter("sm_y_total", {{"b", "2"}, {"a", "1"}});
  obs::Counter* c2 =
      reg.counter("sm_y_total", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(c1, c2);
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry reg;
  reg.counter("sm_kind_total");
  EXPECT_THROW(reg.gauge("sm_kind_total"), std::invalid_argument);
  reg.histogram("sm_hist", 0, 10, 5);
  EXPECT_THROW(reg.histogram("sm_hist", 0, 20, 5), std::invalid_argument);
}

TEST(Registry, JsonSnapshotIsDeterministic) {
  // Two registries populated in opposite orders serialize identically:
  // ordering comes from the (name, labels) keys, not insertion history.
  obs::Registry a, b;
  a.counter("sm_one_total", {{"z", "9"}})->set(1);
  a.gauge("sm_two")->set(2.5);
  a.counter("sm_one_total", {{"a", "0"}})->set(3);
  b.counter("sm_one_total", {{"a", "0"}})->set(3);
  b.counter("sm_one_total", {{"z", "9"}})->set(1);
  b.gauge("sm_two")->set(2.5);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_prometheus(), b.to_prometheus());
  EXPECT_NE(a.to_json().find("\"sm_one_total\""), std::string::npos);
}

TEST(Registry, PrometheusExposition) {
  obs::Registry reg;
  reg.counter("sm_packets_total", {{"instance", "mvr"}}, "packets seen")
      ->set(12);
  auto* h = reg.histogram("sm_lat", 0.0, 10.0, 2, {}, "latency");
  h->observe(1.0);
  h->observe(6.0);
  h->observe(100.0);  // clamps into the last bin
  std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# HELP sm_packets_total packets seen"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sm_packets_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("sm_packets_total{instance=\"mvr\"} 12"),
            std::string::npos);
  // Buckets are cumulative; the final bucket is +Inf and equals _count.
  EXPECT_NE(text.find("sm_lat_bucket{le=\"5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("sm_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("sm_lat_count 3"), std::string::npos);
  EXPECT_NE(text.find("sm_lat_sum 107"), std::string::npos);
}

TEST(Registry, HistogramQuantiles) {
  obs::Registry reg;
  auto* h = reg.histogram("sm_q", 0.0, 10.0, 10);
  // Uniform fill: 10 observations per bin. Linear interpolation then
  // lands on exact doubles: p50 = 5.0, p90 = 9.0, p99 = 9.9.
  for (int bin = 0; bin < 10; ++bin) {
    for (int i = 0; i < 10; ++i) h->observe(bin + 0.5);
  }
  EXPECT_DOUBLE_EQ(h->quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(h->quantile(0.99), 9.9);
  EXPECT_DOUBLE_EQ(h->quantile(1.0), 10.0);

  std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("sm_q{quantile=\"0.5\"} 5"), std::string::npos);
  EXPECT_NE(text.find("sm_q{quantile=\"0.9\"} 9"), std::string::npos);
  EXPECT_NE(text.find("sm_q{quantile=\"0.99\"} 9.9"), std::string::npos);
}

TEST(Registry, EmptyHistogramEmitsNoQuantileLines) {
  obs::Registry reg;
  reg.histogram("sm_empty", 0.0, 1.0, 4);
  EXPECT_EQ(reg.histogram("sm_empty", 0.0, 1.0, 4)->quantile(0.5), 0.0);
  EXPECT_EQ(reg.to_prometheus().find("quantile"), std::string::npos);
}

TEST(Registry, QuantileExpositionIsByteDeterministic) {
  auto build = [] {
    obs::Registry reg;
    auto* h = reg.histogram("sm_lat_seconds", 0.0, 2.0, 8,
                            {{"phase", "run"}}, "trial latency");
    for (int i = 0; i < 97; ++i) h->observe(0.013 * i);
    return reg.to_prometheus();
  };
  EXPECT_EQ(build(), build());
}

TEST(Registry, HistogramObserveAndReset) {
  obs::Registry reg;
  auto* h = reg.histogram("sm_h", 0.0, 4.0, 4);
  for (double x : {0.5, 1.5, 1.6, 3.9}) h->observe(x);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_EQ(h->histogram().bins()[1], 2u);
  EXPECT_DOUBLE_EQ(h->sum(), 7.5);
  h->reset();
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->histogram().bins()[1], 0u);
  // Shape survives the reset.
  EXPECT_DOUBLE_EQ(h->hi(), 4.0);
}

TEST(Registry, DisabledRegistryIsANoOpSink) {
  obs::Registry reg;
  reg.set_enabled(false);
  obs::Counter* c = reg.counter("sm_ignored_total");
  c->inc(100);  // goes to the shared dummy, not a series
  EXPECT_EQ(reg.series_count(), 0u);
  EXPECT_EQ(reg.to_json(), "{\"metrics\":[]}");
  EXPECT_EQ(reg.to_prometheus(), "");
}

// --- Registry merge (campaign deterministic-merge building block) -----

TEST(RegistryMerge, CountersGaugesAndHistogramsCombine) {
  obs::Registry a, b;
  a.counter("c", {{"k", "v"}})->inc(3);
  b.counter("c", {{"k", "v"}})->inc(4);
  b.counter("c", {{"k", "w"}})->inc(1);  // series missing in a
  b.counter("only_b")->inc(9);           // family missing in a
  a.gauge("g")->set(1.5);
  b.gauge("g")->set(2.25);
  a.histogram("h", 0.0, 10.0, 5)->observe(1.0);
  b.histogram("h", 0.0, 10.0, 5)->observe(9.0);

  a.merge(b);
  EXPECT_EQ(a.counter("c", {{"k", "v"}})->value(), 7u);
  EXPECT_EQ(a.counter("c", {{"k", "w"}})->value(), 1u);
  EXPECT_EQ(a.counter("only_b")->value(), 9u);
  EXPECT_DOUBLE_EQ(a.gauge("g")->value(), 3.75);
  auto* h = a.histogram("h", 0.0, 10.0, 5);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->histogram().bins()[0], 1u);
  EXPECT_EQ(h->histogram().bins()[4], 1u);
}

TEST(RegistryMerge, MergeOrderDoesNotChangeSnapshotBytes) {
  // Series identity is (name, sorted labels) in ordered maps, so folding
  // the same snapshots in any grouping yields byte-identical JSON — the
  // property the campaign runner's -j1 vs -jN guarantee rests on.
  auto fill = [](obs::Registry& r, uint64_t c, double g) {
    r.counter("sm_x_total", {{"i", "1"}})->inc(c);
    r.gauge("sm_y")->add(g);
    r.histogram("sm_z", 0.0, 1.0, 4)->observe(g / 10.0);
  };
  obs::Registry s1, s2, s3;
  fill(s1, 1, 0.5);
  fill(s2, 2, 1.5);
  fill(s3, 3, 2.5);

  obs::Registry left;  // (s1+s2)+s3
  left.merge(s1);
  left.merge(s2);
  left.merge(s3);
  obs::Registry right;  // s3 folded before s1/s2 creates families first
  right.merge(s3);
  right.merge(s1);
  right.merge(s2);
  EXPECT_EQ(left.to_json(), right.to_json());
  EXPECT_EQ(left.to_prometheus(), right.to_prometheus());
}

TEST(RegistryMerge, KindConflictThrows) {
  obs::Registry a, b;
  a.counter("m")->inc();
  b.gauge("m")->set(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(RegistryMerge, HistogramShapeConflictThrows) {
  obs::Registry a, b;
  a.histogram("h", 0.0, 10.0, 5)->observe(1.0);
  b.histogram("h", 0.0, 10.0, 4)->observe(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(RegistryMerge, DisabledTargetIgnoresMerge) {
  obs::Registry a, b;
  a.set_enabled(false);
  b.counter("c")->inc(5);
  a.merge(b);
  a.set_enabled(true);
  EXPECT_EQ(a.series_count(), 0u);
  EXPECT_EQ(a.to_json(), "{\"metrics\":[]}");
}

TEST(HistogramMetricMerge, MomentsAndClampInteraction) {
  obs::HistogramMetric a(0.0, 10.0, 5);
  obs::HistogramMetric b(0.0, 10.0, 5);
  a.observe(2.0);
  a.observe(4.0);
  b.observe(6.0);
  // A non-finite observation clamps into the edge bin but poisons the
  // running moments (NaN mean) — merge must still keep the integer side
  // (count, buckets) exact.
  b.observe(std::numeric_limits<double>::infinity());
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.histogram().bins()[4], 1u);  // +inf clamped high
  EXPECT_EQ(a.moments().count(), 4u);
  EXPECT_TRUE(std::isinf(a.moments().max()));
}

// --- Tracer -----------------------------------------------------------

/// Minimal structural JSON check: braces/brackets balance outside of
/// string literals, and the document is a single object.
void expect_balanced_json(const std::string& s) {
  long depth = 0;
  bool in_string = false, escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.front(), '{');
  EXPECT_EQ(s.back(), '}');
}

TEST(Tracer, RecordsInstantsSpansAndCounters) {
  obs::Tracer tracer(16);
  tracer.instant(SimTime(1000), "hello", "test");
  tracer.complete(SimTime(2000), SimTime(5000), "work", "test",
                  "\"n\":3");
  tracer.counter(SimTime(6000), "queue", "depth", 4);
  ASSERT_EQ(tracer.size(), 3u);
  auto events = tracer.events();
  EXPECT_EQ(events[0].phase, 'i');
  EXPECT_EQ(events[0].name, "hello");
  EXPECT_EQ(events[1].phase, 'X');
  EXPECT_EQ(events[1].dur.count(), 3000);
  EXPECT_EQ(events[2].phase, 'C');
  EXPECT_EQ(events[2].args_json, "\"depth\":4");
}

TEST(Tracer, RingBufferWraparoundKeepsNewest) {
  obs::Tracer tracer(4);
  for (int i = 0; i < 10; ++i) {
    tracer.instant(SimTime(i * 100), "e" + std::to_string(i), "test");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained is e6; order is chronological.
  EXPECT_EQ(events.front().name, "e6");
  EXPECT_EQ(events.back().name, "e9");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ExportAfterWrapIsDeterministic) {
  auto build = [] {
    obs::Tracer tracer(8);
    for (int i = 0; i < 50; ++i) {
      tracer.instant(SimTime(i * 100), "e" + std::to_string(i), "wrap");
    }
    return tracer.to_chrome_json();
  };
  std::string first = build();
  EXPECT_EQ(first, build());
  EXPECT_NE(first.find("\"dropped\":42"), std::string::npos);
  // Only the newest window survives the wrap.
  EXPECT_EQ(first.find("\"e41\""), std::string::npos);
  EXPECT_NE(first.find("\"e42\""), std::string::npos);
  EXPECT_NE(first.find("\"e49\""), std::string::npos);
}

TEST(Tracer, ChromeExportIsWellFormed) {
  obs::Tracer tracer(8);
  tracer.instant(SimTime(1500), "na\"me", "cat");  // escaping exercised
  tracer.complete(SimTime(0), SimTime(2'500'000), "span", "c2");
  std::string json = tracer.to_chrome_json();
  expect_balanced_json(json);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  // Sim nanoseconds render as microseconds with three decimals.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":2500.000"), std::string::npos);
  EXPECT_NE(json.find("na\\\"me"), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  obs::Tracer tracer(8);
  tracer.set_enabled(false);
  tracer.instant(SimTime(1), "x", "y");
  {
    obs::ScopedSpan span(&tracer, "s", "c");
  }
  obs::ScopedSpan null_span(nullptr, "s", "c");  // must not crash
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, ScopedSpanUsesTheClock) {
  obs::Tracer tracer(8);
  SimTime fake(1000);
  tracer.set_clock([&fake] { return fake; });
  {
    obs::ScopedSpan span(&tracer, "phase", "test");
    fake = SimTime(4000);
  }
  ASSERT_EQ(tracer.size(), 1u);
  auto ev = tracer.events()[0];
  EXPECT_EQ(ev.phase, 'X');
  EXPECT_EQ(ev.ts.count(), 1000);
  EXPECT_EQ(ev.dur.count(), 3000);
}

// --- netsim::Engine instrumentation -----------------------------------

TEST(EngineObservability, PerEventTraceAndMetricsExport) {
  netsim::Engine engine;
  obs::Tracer tracer(64);
  engine.set_tracer(&tracer);
  int fired = 0;
  engine.schedule(Duration::millis(1), [&] { ++fired; });
  engine.schedule(Duration::millis(2), [&] { ++fired; });
  engine.run_until(SimTime(Duration::millis(5).count()));
  EXPECT_EQ(fired, 2);
  // 2 instants + 1 run_until span.
  EXPECT_EQ(tracer.size(), 3u);
  auto events = tracer.events();
  EXPECT_EQ(events[0].name, "event");
  EXPECT_EQ(events[2].name, "run_until");
  EXPECT_EQ(events[2].args_json, "\"events\":2");
  // The tracer's clock is the engine's clock.
  EXPECT_EQ(tracer.now(), engine.now());

  obs::Registry reg;
  engine.export_metrics(reg);
  EXPECT_EQ(reg.counter("sm_netsim_events_executed_total")->value(), 2u);
  EXPECT_DOUBLE_EQ(reg.gauge("sm_netsim_queue_high_water")->value(), 2.0);
}

// --- TraceTap cap ------------------------------------------------------

TEST(TraceTapCap, DropsOldestAndCounts) {
  netsim::Engine engine;
  netsim::Router router(engine, "r");
  netsim::TraceTap tap;
  tap.set_max_records(3);

  auto send = [&](uint16_t sport) {
    packet::Packet p = packet::make_tcp(
        common::Ipv4Address(10, 0, 0, 1), common::Ipv4Address(10, 0, 0, 2),
        sport, 80, packet::TcpFlags::kSyn, 1, 0);
    common::Bytes wire = p.data();
    auto decoded = packet::decode(wire);
    ASSERT_TRUE(decoded.has_value());
    netsim::TapContext ctx{engine.now(), packet::PacketView(wire, *decoded),
                           0, 1};
    tap.process(ctx, router);
  };
  for (uint16_t i = 0; i < 5; ++i) send(static_cast<uint16_t>(1000 + i));
  EXPECT_EQ(tap.size(), 3u);
  EXPECT_EQ(tap.dropped(), 2u);
  EXPECT_EQ(tap.max_records(), 3u);

  // Tightening the cap sheds immediately.
  tap.set_max_records(1);
  EXPECT_EQ(tap.size(), 1u);
  EXPECT_EQ(tap.dropped(), 4u);

  // 0 removes the bound again.
  tap.set_max_records(0);
  for (uint16_t i = 0; i < 5; ++i) send(static_cast<uint16_t>(2000 + i));
  EXPECT_EQ(tap.size(), 6u);
  EXPECT_EQ(tap.dropped(), 4u);
}

TEST(TraceTapCap, WrappedCaptureIsOrderedAndExportsDeterministically) {
  auto capture = [](const std::string& path) {
    netsim::Engine engine;
    netsim::Router router(engine, "r");
    netsim::TraceTap tap;
    tap.set_max_records(4);
    std::vector<uint16_t> retained_ports;
    for (uint16_t i = 0; i < 11; ++i) {
      packet::Packet p = packet::make_tcp(
          common::Ipv4Address(10, 0, 0, 1),
          common::Ipv4Address(10, 0, 0, 2),
          static_cast<uint16_t>(1000 + i), 80, packet::TcpFlags::kSyn, 1,
          0);
      common::Bytes wire = p.data();
      auto decoded = packet::decode(wire);
      EXPECT_TRUE(decoded.has_value());
      netsim::TapContext ctx{engine.now(),
                             packet::PacketView(wire, *decoded), 0, 1};
      tap.process(ctx, router);
    }
    EXPECT_EQ(tap.size(), 4u);
    EXPECT_EQ(tap.dropped(), 7u);
    // Oldest-first after the wrap: the 4 newest packets, in send order.
    for (size_t r = 0; r < tap.records().size(); ++r) {
      auto decoded = packet::decode(tap.records()[r].data);
      ASSERT_TRUE(decoded.has_value() && decoded->tcp);
      EXPECT_EQ(decoded->tcp->src_port, 1007 + r);
    }
    EXPECT_TRUE(tap.save(path));
  };
  std::string a = ::testing::TempDir() + "wrap_a.pcap";
  std::string b = ::testing::TempDir() + "wrap_b.pcap";
  capture(a);
  capture(b);
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                      std::istreambuf_iterator<char>());
  std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                      std::istreambuf_iterator<char>());
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
}

// --- Logging sink ------------------------------------------------------

TEST(LoggingSink, CapturesAndRestores) {
  using common::LogLevel;
  std::vector<std::string> captured;
  common::set_log_level(LogLevel::Info);
  common::set_log_sink([&](LogLevel, const std::string& component,
                           const std::string& message) {
    captured.push_back(component + ": " + message);
  });
  EXPECT_TRUE(common::log_enabled(LogLevel::Warn));
  EXPECT_FALSE(common::log_enabled(LogLevel::Debug));
  common::log_info("obs", "hello");
  common::log_debug("obs", "filtered out");
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "obs: hello");

  common::set_log_level(LogLevel::Off);
  EXPECT_FALSE(common::log_enabled(LogLevel::Error));
  common::log_error("obs", "muted");
  EXPECT_EQ(captured.size(), 1u);

  common::set_log_sink(nullptr);
  common::set_log_level(LogLevel::Warn);
}

// --- Full-campaign integration ----------------------------------------

core::TestbedConfig observed_config() {
  core::TestbedConfig config;
  config.policy = censor::gfc_profile();
  config.policy.blocked_ips.push_back(core::TestbedAddresses{}.web_blocked);
  config.neighbor_count = 4;
  config.enable_observability = true;
  return config;
}

core::ProbeReport run_scan(core::Testbed& tb) {
  core::ScanOptions options;
  options.target = tb.addr().web_blocked;
  options.ports = core::top_tcp_ports(20);
  options.expected_open = {80};
  core::ScanProbe probe(tb, options);
  return core::run_probe(tb, probe);
}

TEST(ObservedCampaign, SameSeedSnapshotsAreByteIdentical) {
  std::string json[2], trace[2], prom[2];
  for (int i = 0; i < 2; ++i) {
    core::Testbed tb(observed_config());
    run_scan(tb);
    json[i] = tb.metrics_json();
    prom[i] = tb.metrics_snapshot().to_prometheus();
    trace[i] = tb.tracer().to_chrome_json();
  }
  EXPECT_EQ(json[0], json[1]);
  EXPECT_EQ(prom[0], prom[1]);
  EXPECT_EQ(trace[0], trace[1]);
  expect_balanced_json(json[0]);
  expect_balanced_json(trace[0]);
  // The snapshot bridged every layer.
  EXPECT_NE(json[0].find("sm_netsim_events_executed_total"),
            std::string::npos);
  EXPECT_NE(json[0].find("sm_router_forwarded_total"), std::string::npos);
  EXPECT_NE(json[0].find("\"instance\":\"mvr\""), std::string::npos);
  EXPECT_NE(json[0].find("\"instance\":\"censor\""), std::string::npos);
  EXPECT_NE(json[0].find("sm_probe_runs_total"), std::string::npos);
  EXPECT_NE(trace[0].find("probe:scan"), std::string::npos);
}

TEST(ObservedCampaign, SnapshotIsIdempotent) {
  core::Testbed tb(observed_config());
  run_scan(tb);
  std::string first = tb.metrics_json();
  std::string second = tb.metrics_json();  // re-snapshot, no new traffic
  EXPECT_EQ(first, second);
}

TEST(ObservedCampaign, EnablingObservabilityChangesNoBehaviour) {
  core::TestbedConfig on = observed_config();
  core::TestbedConfig off = observed_config();
  off.enable_observability = false;

  core::Testbed tb_on(on);
  core::Testbed tb_off(off);
  core::ProbeReport r_on = run_scan(tb_on);
  core::ProbeReport r_off = run_scan(tb_off);

  EXPECT_EQ(r_on.verdict, r_off.verdict);
  EXPECT_EQ(r_on.detail, r_off.detail);
  EXPECT_EQ(r_on.packets_sent, r_off.packets_sent);
  EXPECT_EQ(tb_on.mvr->stats().packets_seen, tb_off.mvr->stats().packets_seen);
  EXPECT_EQ(tb_on.mvr->stats().interesting_alerts,
            tb_off.mvr->stats().interesting_alerts);
  EXPECT_EQ(tb_on.censor_tap->stats().packets_seen,
            tb_off.censor_tap->stats().packets_seen);
  EXPECT_EQ(tb_on.net.engine().executed(), tb_off.net.engine().executed());
  EXPECT_EQ(tb_on.net.engine().now(), tb_off.net.engine().now());

  // And the disabled side exported nothing.
  EXPECT_EQ(tb_off.metrics_json(), "{\"metrics\":[]}");
  EXPECT_EQ(tb_off.tracer().size(), 0u);
}

// --- Surveillance export goldens --------------------------------------
//
// The map→open-addressing swap in src/surveillance must not move a byte
// of any export surface. These fixtures were generated while the hot
// paths still used std::map and are the regression proof: MVR metrics
// (JSON + Prometheus) and the flow-record JSONL ledger from a fixed
// seeded scenario must stay byte-identical. Regenerate only for an
// *intentional* format change: UPDATE_GOLDEN=1 ./build/tests/test_obs

std::string obs_golden_path(const std::string& name) {
  return std::string(SM_TEST_DIR) + "/golden/" + name;
}

void obs_check_golden(const std::string& name, const std::string& actual) {
  const std::string path = obs_golden_path(name);
  if (std::getenv("UPDATE_GOLDEN")) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << path
                  << " (run with UPDATE_GOLDEN=1 to create it)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << "surveillance export drifted from " << path
      << "; container iteration order must never reach an output — if the "
         "format change is intentional, regenerate with UPDATE_GOLDEN=1";
}

/// A fixed scenario that pushes traffic through every classifier bucket
/// and alert path: web (some touching censored content), an overt
/// measurement probe, DNS, spam, p2p, and a port scanner — from several
/// sources so the per-user ledgers and flow table hold many keys, with
/// an idle gap mid-run so flush_idle emits a batch before flush_all.
std::unique_ptr<surveillance::MvrTap> run_surveillance_scenario(
    netsim::Network& net) {
  using common::Ipv4Address;
  using packet::TcpFlags;
  auto* router = net.add_router("r");
  surveillance::MvrConfig cfg;
  cfg.content_retention_fraction = 0.075;
  auto mvr = std::make_unique<surveillance::MvrTap>(cfg);
  router->add_tap(mvr.get());

  auto* server = net.add_host("srv", Ipv4Address(198, 18, 0, 80));
  net.connect(server, router);
  std::vector<netsim::Host*> users;
  for (int i = 0; i < 6; ++i) {
    users.push_back(net.add_host("u" + std::to_string(i),
                                 Ipv4Address(10, 1, 0, 10 + i)));
    net.connect(users.back(), router);
  }

  // Web chatter from every user; u1 and u4 touch censored content
  // (policy-violation), u2 runs an overt measurement probe.
  for (int i = 0; i < 6; ++i) {
    std::string payload = "GET /news HTTP/1.1\r\nHost: example\r\n";
    if (i == 1 || i == 4) payload = "GET /falun HTTP/1.1\r\nHost: x\r\n";
    if (i == 2)
      payload = "GET / HTTP/1.1\r\nUser-Agent: OONI-Probe/3.0\r\n";
    users[i]->send(packet::make_tcp(
        users[i]->address(), server->address(),
        static_cast<uint16_t>(30000 + i), 80, TcpFlags::kAck, 1, 1,
        common::to_bytes(payload)));
  }
  // DNS from u0, spam from u3 (noise alert), p2p from u5 (discarded).
  users[0]->send_udp(server->address(), 5353, 53,
                     common::to_bytes("\x01\x02query"));
  users[3]->send(packet::make_tcp(
      users[3]->address(), server->address(), 2525, 25, TcpFlags::kAck, 1,
      1, common::to_bytes("MAIL FROM:<spam@bulk.example>\r\n")));
  for (int i = 0; i < 3; ++i) {
    users[5]->send_udp(server->address(), 6881, 6881,
                       common::to_bytes("d1:ad2:id20:aabbccddeeff00112233"));
  }
  // u4 also scans: SYNs to 30 distinct ports.
  for (int p = 0; p < 30; ++p) {
    users[4]->send(packet::make_tcp(users[4]->address(), server->address(),
                                    41000, static_cast<uint16_t>(1000 + p),
                                    TcpFlags::kSyn, 0, 0));
  }
  net.run_for(Duration::seconds(1));

  // Idle past the flow timeout, then a second wave so flush_idle runs
  // with the first wave's flows expired.
  for (int i = 0; i < 3; ++i) {
    users[i]->send(packet::make_tcp(
        users[i]->address(), server->address(),
        static_cast<uint16_t>(30100 + i), 443, TcpFlags::kAck, 1, 1,
        common::to_bytes("wave2")));
  }
  net.run_for(Duration::seconds(90));
  for (int i = 0; i < 3; ++i) {
    users[i]->send(packet::make_tcp(
        users[i]->address(), server->address(),
        static_cast<uint16_t>(30200 + i), 443, TcpFlags::kAck, 1, 1,
        common::to_bytes("wave3")));
  }
  net.run_for(Duration::seconds(1));
  mvr->flow_records().flush_all();
  return mvr;
}

TEST(SurveillanceGolden, MvrMetricsJsonAndPrometheus) {
  netsim::Network net;
  auto mvr = run_surveillance_scenario(net);
  obs::Registry registry;
  mvr->export_metrics(registry);
  obs_check_golden("mvr_metrics.json", registry.to_json());
  obs_check_golden("mvr_metrics.prom", registry.to_prometheus());
}

TEST(SurveillanceGolden, FlowRecordLedgerJsonl) {
  netsim::Network net;
  auto mvr = run_surveillance_scenario(net);
  const auto& flows = mvr->flow_records();
  EXPECT_GT(flows.finished().size(), 10u);
  obs_check_golden("mvr_flows.jsonl", flows.finished_jsonl());
}

TEST(ObservedCampaign, JsonlCarriesMetricsBlock) {
  core::Testbed tb(observed_config());
  core::ProbeReport report = run_scan(tb);
  core::RiskReport risk = core::assess_risk(tb, report.technique);
  std::string jsonl = core::to_jsonl({{report, risk}}, tb.metrics_snapshot());
  // Two lines: the measurement row and the metrics block.
  size_t newlines = 0;
  for (char c : jsonl) newlines += c == '\n';
  EXPECT_EQ(newlines, 2u);
  EXPECT_NE(jsonl.find("{\"measurement\":"), std::string::npos);
  EXPECT_NE(jsonl.find("{\"metrics\":["), std::string::npos);
}

}  // namespace
}  // namespace sm
