#include <gtest/gtest.h>

#include "analysis/population.hpp"
#include "analysis/report.hpp"
#include "analysis/syria.hpp"

namespace sm::analysis {
namespace {

using common::Ipv4Address;

TEST(SiteCatalog, PlacesRequestedCensoredSites) {
  common::Rng rng(1);
  auto catalog = make_site_catalog(rng, 1000, 20, 50);
  size_t censored = 0;
  for (size_t i = 0; i < catalog.size(); ++i) {
    if (catalog[i].censored) {
      ++censored;
      EXPECT_GE(i, 50u);  // none in the head
    }
  }
  EXPECT_EQ(censored, 20u);
}

TEST(SiteCatalog, DomainsUnique) {
  common::Rng rng(2);
  auto catalog = make_site_catalog(rng, 100, 5);
  std::set<std::string> names;
  for (const auto& s : catalog) names.insert(s.domain);
  EXPECT_EQ(names.size(), catalog.size());
}

TEST(PopulationLog, GeneratesExpectedVolume) {
  common::Rng rng(3);
  auto catalog = make_site_catalog(rng, 500, 10);
  PopulationConfig cfg;
  cfg.users = 500;
  cfg.mean_requests_per_user = 20.0;
  size_t count = 0;
  size_t total = generate_population_log(
      cfg, catalog, [&](const LogRecord&) { ++count; });
  EXPECT_EQ(count, total);
  // Log-normal mean calibration: within 25% of users * mean.
  EXPECT_NEAR(static_cast<double>(total), 500 * 20.0, 500 * 20.0 * 0.25);
}

TEST(PopulationLog, Deterministic) {
  common::Rng rng(4);
  auto catalog = make_site_catalog(rng, 100, 5);
  PopulationConfig cfg;
  cfg.users = 50;
  std::vector<uint32_t> ranks1, ranks2;
  generate_population_log(cfg, catalog, [&](const LogRecord& r) {
    ranks1.push_back(r.site_rank);
  });
  generate_population_log(cfg, catalog, [&](const LogRecord& r) {
    ranks2.push_back(r.site_rank);
  });
  EXPECT_EQ(ranks1, ranks2);
}

TEST(PopulationLog, TimesWithinWindow) {
  common::Rng rng(5);
  auto catalog = make_site_catalog(rng, 100, 5);
  PopulationConfig cfg;
  cfg.users = 20;
  cfg.window = common::Duration::days(2);
  generate_population_log(cfg, catalog, [&](const LogRecord& r) {
    EXPECT_GE(r.time.count(), 0);
    EXPECT_LE(r.time.count(), common::Duration::days(2).count());
  });
}

TEST(LogAnalyzer, CountsCensoredTouches) {
  LogAnalyzer an;
  LogRecord r;
  r.user = Ipv4Address(10, 0, 0, 1);
  r.censored_site = false;
  an.add(r);
  an.add(r);
  r.censored_site = true;
  an.add(r);
  r.user = Ipv4Address(10, 0, 0, 2);
  r.censored_site = false;
  an.add(r);
  EXPECT_EQ(an.total_requests(), 4u);
  EXPECT_EQ(an.censored_requests(), 1u);
  EXPECT_EQ(an.unique_users(), 2u);
  EXPECT_EQ(an.users_touching_censored(), 1u);
  EXPECT_DOUBLE_EQ(an.censored_user_fraction(), 0.5);
  EXPECT_DOUBLE_EQ(an.censored_request_fraction(), 0.25);
}

TEST(LogAnalyzer, EmptySafe) {
  LogAnalyzer an;
  EXPECT_EQ(an.censored_user_fraction(), 0.0);
  EXPECT_EQ(an.censored_request_fraction(), 0.0);
}

TEST(LogAnalyzer, TouchHistogram) {
  LogAnalyzer an;
  LogRecord r;
  r.censored_site = true;
  r.user = Ipv4Address(10, 0, 0, 1);
  an.add(r);
  r.user = Ipv4Address(10, 0, 0, 2);
  an.add(r);
  an.add(r);
  auto hist = an.censored_touch_histogram();
  EXPECT_EQ(hist[1], 1u);
  EXPECT_EQ(hist[2], 1u);
}

TEST(LogAnalyzer, SummaryContainsFraction) {
  LogAnalyzer an;
  LogRecord r;
  r.user = Ipv4Address(10, 0, 0, 1);
  r.censored_site = true;
  an.add(r);
  std::string s = an.summary();
  EXPECT_NE(s.find("users_touching_censored=1"), std::string::npos);
}

TEST(SyriaReproduction, FractionNearPaperValue) {
  // E5 headline: with the default calibration, the fraction of users
  // touching censored content lands in the low single-digit percents,
  // bracketing the paper's 1.57%.
  common::Rng rng(2015);
  auto catalog = make_site_catalog(rng, 5000, 10, 1000);
  PopulationConfig cfg;
  cfg.users = 5000;
  cfg.mean_requests_per_user = 50.0;
  LogAnalyzer an;
  generate_population_log(cfg, catalog,
                          [&](const LogRecord& r) { an.add(r); });
  double fraction = an.censored_user_fraction();
  EXPECT_GT(fraction, 0.002);
  EXPECT_LT(fraction, 0.08);
}

TEST(Table, MarkdownRendering) {
  Table t({"name", "value"});
  t.add_row({"alpha", Table::num(uint64_t{42})});
  t.add_row({"beta", Table::pct(0.1234)});
  std::string md = t.to_markdown();
  EXPECT_NE(md.find("| name"), std::string::npos);
  EXPECT_NE(md.find("| alpha"), std::string::npos);
  EXPECT_NE(md.find("12.34%"), std::string::npos);
  // Header separator present.
  EXPECT_NE(md.find("| ----"), std::string::npos);
}

TEST(Table, TsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_tsv(), "a\tb\n1\t2\n");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::string md = t.to_markdown();
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(md.find("only"), std::string::npos);
}

}  // namespace
}  // namespace sm::analysis
