#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "proto/http/client.hpp"
#include "proto/http/message.hpp"
#include "proto/http/server.hpp"

namespace sm::proto::http {
namespace {

using common::Duration;
using common::Ipv4Address;

TEST(Message, RequestSerializeHasHostAndBlankLine) {
  Request r = Request::get("example.com", "/index.html");
  std::string wire = r.serialize();
  EXPECT_NE(wire.find("GET /index.html HTTP/1.1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Host: example.com\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n"), std::string::npos);
}

TEST(Message, ResponseSerializeAddsContentLength) {
  Response r = Response::ok("hello");
  std::string wire = r.serialize();
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_TRUE(wire.ends_with("hello"));
}

TEST(Message, FindHeaderCaseInsensitive) {
  HeaderList h{{"Content-Type", "text/html"}, {"X-Thing", "1"}};
  EXPECT_EQ(find_header(h, "content-type"), "text/html");
  EXPECT_FALSE(find_header(h, "missing"));
}

TEST(Parser, ParsesRequestWithBody) {
  Parser p;
  p.feed("POST /submit HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd");
  auto req = p.next_request();
  ASSERT_TRUE(req);
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->target, "/submit");
  EXPECT_EQ(req->body, "abcd");
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(Parser, IncrementalFeeding) {
  Parser p;
  p.feed("GET / HT");
  EXPECT_FALSE(p.next_request());
  p.feed("TP/1.1\r\nHost: a");
  EXPECT_FALSE(p.next_request());
  p.feed("\r\n\r\n");
  auto req = p.next_request();
  ASSERT_TRUE(req);
  EXPECT_EQ(req->host(), "a");
}

TEST(Parser, PipelinedRequests) {
  Parser p;
  p.feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  auto r1 = p.next_request();
  auto r2 = p.next_request();
  ASSERT_TRUE(r1 && r2);
  EXPECT_EQ(r1->target, "/a");
  EXPECT_EQ(r2->target, "/b");
  EXPECT_FALSE(p.next_request());
}

TEST(Parser, BodyWaitsForAllBytes) {
  Parser p;
  p.feed("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n12345");
  EXPECT_FALSE(p.next_response());
  p.feed("67890");
  auto resp = p.next_response();
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp->body, "1234567890");
}

TEST(Parser, ParsesResponseStatus) {
  Parser p;
  p.feed("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n");
  auto resp = p.next_response();
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp->status, 404);
  EXPECT_EQ(resp->reason, "Not");  // first word only, by design
}

TEST(Parser, MalformedStartLineFails) {
  Parser p;
  p.feed("NONSENSE\r\n\r\n");
  EXPECT_FALSE(p.next_request());
  EXPECT_TRUE(p.failed());
}

TEST(Parser, BadContentLengthFails) {
  Parser p;
  p.feed("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
  EXPECT_FALSE(p.next_request());
  EXPECT_TRUE(p.failed());
}

TEST(Parser, RoundTripSerializedRequest) {
  Request orig = Request::get("example.com", "/path?q=1");
  orig.headers.emplace_back("X-Custom", "value with spaces");
  Parser p;
  p.feed(orig.serialize());
  auto parsed = p.next_request();
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->method, orig.method);
  EXPECT_EQ(parsed->target, orig.target);
  EXPECT_EQ(find_header(parsed->headers, "X-Custom"), "value with spaces");
}

// --- Client/server over the simulated network ---

class HttpNetTest : public ::testing::Test {
 protected:
  HttpNetTest() {
    client_host_ = net_.add_host("c", Ipv4Address(10, 0, 0, 1));
    server_host_ = net_.add_host("s", Ipv4Address(10, 0, 0, 2));
    router_ = net_.add_router("r");
    net_.connect(client_host_, router_);
    net_.connect(server_host_, router_);
    client_stack_ = std::make_unique<tcp::Stack>(*client_host_);
    server_stack_ = std::make_unique<tcp::Stack>(*server_host_);
    server_ = std::make_unique<Server>(*server_stack_, 80);
    client_ = std::make_unique<Client>(*client_stack_);
  }
  netsim::Network net_;
  netsim::Host* client_host_;
  netsim::Host* server_host_;
  netsim::Router* router_;
  std::unique_ptr<tcp::Stack> client_stack_;
  std::unique_ptr<tcp::Stack> server_stack_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<Client> client_;
};

TEST_F(HttpNetTest, FetchDefaultPage) {
  std::optional<FetchResult> result;
  client_->fetch(server_host_->address(), 80, Request::get("s", "/"),
                 [&](const FetchResult& r) { result = r; });
  net_.run_for(Duration::seconds(2));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->outcome, FetchOutcome::Ok);
  EXPECT_EQ(result->response->status, 200);
  EXPECT_NE(result->response->body.find("It works"), std::string::npos);
  EXPECT_EQ(server_->requests_served(), 1u);
}

TEST_F(HttpNetTest, RouteDispatch) {
  server_->route("/special", [](const Request&) {
    return Response::make(418, "Teapot", "short and stout");
  });
  std::optional<FetchResult> result;
  client_->fetch(server_host_->address(), 80, Request::get("s", "/special"),
                 [&](const FetchResult& r) { result = r; });
  net_.run_for(Duration::seconds(2));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->response->status, 418);
  EXPECT_EQ(result->response->body, "short and stout");
}

TEST_F(HttpNetTest, ConnectTimeoutOutcome) {
  std::optional<FetchResult> result;
  tcp::ConnectOptions opts;
  opts.rto = Duration::millis(50);
  opts.max_retries = 1;
  client_->fetch(Ipv4Address(203, 0, 113, 77), 80, Request::get("x", "/"),
                 [&](const FetchResult& r) { result = r; },
                 Duration::seconds(3), opts);
  net_.run_for(Duration::seconds(5));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->outcome, FetchOutcome::ConnectTimeout);
}

TEST_F(HttpNetTest, ConnectResetOutcome) {
  std::optional<FetchResult> result;
  client_->fetch(server_host_->address(), 8080,  // closed port -> RST
                 Request::get("s", "/"),
                 [&](const FetchResult& r) { result = r; });
  net_.run_for(Duration::seconds(2));
  ASSERT_TRUE(result);
  EXPECT_EQ(result->outcome, FetchOutcome::ConnectReset);
}

TEST_F(HttpNetTest, CallbackExactlyOnce) {
  int calls = 0;
  client_->fetch(server_host_->address(), 80, Request::get("s", "/"),
                 [&](const FetchResult&) { ++calls; },
                 Duration::millis(500));
  net_.run_for(Duration::seconds(5));  // run past the timeout
  EXPECT_EQ(calls, 1);
}

TEST_F(HttpNetTest, LargeBodyTransfers) {
  std::string big(60'000, 'q');
  server_->route("/big", [&](const Request&) { return Response::ok(big); });
  std::optional<FetchResult> result;
  client_->fetch(server_host_->address(), 80, Request::get("s", "/big"),
                 [&](const FetchResult& r) { result = r; },
                 Duration::seconds(30));
  net_.run_for(Duration::seconds(30));
  ASSERT_TRUE(result);
  ASSERT_EQ(result->outcome, FetchOutcome::Ok);
  EXPECT_EQ(result->response->body.size(), big.size());
}

}  // namespace
}  // namespace sm::proto::http
