// Campaign runner: the determinism contract (byte-identical reports for
// -j1 vs -jN, in both shard modes), per-trial seed substreams, fault
// isolation of throwing factories, the low-level job pool, and the
// thread-safety additions to common/logging (worker-id tagging,
// concurrent emission). The concurrency tests are the TSan leg's target
// (ci.sh tsan).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "common/logging.hpp"
#include "core/mimicry.hpp"
#include "core/overt.hpp"

namespace sm {
namespace {

using common::Duration;

/// A small but non-trivial workload: two censor configs x two techniques,
/// lightweight testbeds (4 neighbors), observability on for half the
/// trials so the metrics-merge path is exercised.
std::vector<campaign::Trial> small_workload() {
  core::TestbedConfig rst;
  rst.policy = censor::gfc_profile();
  rst.policy.dns_forgeries.clear();
  rst.neighbor_count = 4;

  core::TestbedConfig dns;
  dns.policy = censor::gfc_profile();
  dns.policy.rst_keywords.clear();
  dns.neighbor_count = 4;
  dns.enable_observability = true;

  auto http_factory = [](core::Testbed& tb) {
    return std::make_unique<core::OvertHttpProbe>(
        tb, core::OvertHttpOptions{.domain = "blocked.example"});
  };
  auto dns_factory = [](core::Testbed& tb) {
    return std::make_unique<core::OvertDnsProbe>(
        tb, core::OvertDnsOptions{.domain = "twitter.com"});
  };

  std::vector<campaign::Trial> trials;
  trials.push_back({.name = "rst/overt-http", .config = rst,
                    .factory = http_factory});
  trials.push_back({.name = "rst/overt-dns", .config = rst,
                    .factory = dns_factory});
  trials.push_back({.name = "dns/overt-http", .config = dns,
                    .factory = http_factory});
  trials.push_back({.name = "dns/overt-dns", .config = dns,
                    .factory = dns_factory});
  return trials;
}

// --- the headline property --------------------------------------------

TEST(CampaignDeterminism, ByteIdenticalAcrossThreadCounts) {
  auto trials = small_workload();
  std::string jsonl[3], metrics[3];
  size_t i = 0;
  for (size_t threads : {1, 2, 8}) {
    campaign::CampaignOptions options;
    options.threads = threads;
    campaign::CampaignResult result = campaign::run(trials, options);
    ASSERT_EQ(result.trials.size(), trials.size());
    ASSERT_EQ(result.failures, 0u);
    jsonl[i] = result.to_jsonl();
    metrics[i] = result.metrics_json();
    ++i;
  }
  EXPECT_EQ(jsonl[0], jsonl[1]);
  EXPECT_EQ(jsonl[0], jsonl[2]);
  EXPECT_EQ(metrics[0], metrics[1]);
  EXPECT_EQ(metrics[0], metrics[2]);
  // The report carries real content, not just identical emptiness.
  EXPECT_NE(jsonl[0].find("\"measurement\""), std::string::npos);
  EXPECT_NE(jsonl[0].find("\"sim_nanos\""), std::string::npos);
  EXPECT_NE(metrics[0].find("sm_campaign_trials_total"), std::string::npos);
}

TEST(CampaignDeterminism, ShardModesProduceIdenticalReports) {
  auto trials = small_workload();
  campaign::CampaignOptions by_index;
  by_index.threads = 3;
  by_index.shard = campaign::Shard::ByIndex;
  campaign::CampaignOptions dynamic = by_index;
  dynamic.shard = campaign::Shard::Dynamic;
  EXPECT_EQ(campaign::run(trials, by_index).to_jsonl(),
            campaign::run(trials, dynamic).to_jsonl());
}

TEST(CampaignDeterminism, ResultsArriveInTrialIndexOrder) {
  auto trials = small_workload();
  campaign::CampaignOptions options;
  options.threads = 4;
  campaign::CampaignResult result = campaign::run(trials, options);
  for (size_t i = 0; i < result.trials.size(); ++i) {
    EXPECT_EQ(result.trials[i].index, i);
    EXPECT_EQ(result.trials[i].name, trials[i].name);
  }
}

TEST(CampaignDeterminism, CampaignSeedChangesDerivedStreams) {
  // Different campaign seeds must actually reseed the per-trial knobs
  // (the substream derivation is live, not decorative): the sampling-
  // seed-dependent parts of the report may differ, but verdicts — which
  // are censor-mechanism-determined — must not.
  auto trials = small_workload();
  campaign::CampaignOptions a, b;
  a.threads = b.threads = 2;
  b.campaign_seed = a.campaign_seed + 1;
  campaign::CampaignResult ra = campaign::run(trials, a);
  campaign::CampaignResult rb = campaign::run(trials, b);
  for (size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(ra.trials[i].report.verdict, rb.trials[i].report.verdict);
  }
}

TEST(CampaignDeterminism, ImpairedConfigsStayByteIdentical) {
  // The determinism contract must survive link impairment: every
  // impairment mechanism draws from per-link substreams derived from the
  // trial's netsim seed, so -j1 vs -j4, in both shard modes, must still
  // produce byte-identical reports with loss, bursts, reordering,
  // duplication and corruption all enabled.
  auto trials = small_workload();
  netsim::Impairment imp;
  imp.burst.p_enter = 0.05;
  imp.burst.loss_bad = 0.9;
  imp.reorder_rate = 0.2;
  imp.duplicate_rate = 0.1;
  imp.corrupt_rate = 0.05;
  for (auto& t : trials) {
    t.config.client_link.loss_rate = 0.05;
    t.config.client_link.impairment = imp;
    t.config.server_link.impairment = imp;
    t.config.dns_retries = 2;  // keep DNS trials conclusive under loss
  }
  std::string baseline;
  for (auto shard : {campaign::Shard::ByIndex, campaign::Shard::Dynamic}) {
    for (size_t threads : {1, 4}) {
      campaign::CampaignOptions options;
      options.threads = threads;
      options.shard = shard;
      campaign::CampaignResult result = campaign::run(trials, options);
      ASSERT_EQ(result.failures, 0u);
      std::string jsonl = result.to_jsonl();
      if (baseline.empty()) {
        baseline = jsonl;
      } else {
        EXPECT_EQ(baseline, jsonl);
      }
    }
  }
  EXPECT_NE(baseline.find("\"measurement\""), std::string::npos);
}

// --- seed substreams ---------------------------------------------------

TEST(CampaignSeeds, DeterministicAndDistinct) {
  EXPECT_EQ(campaign::trial_seed(42, 7, 0), campaign::trial_seed(42, 7, 0));
  std::set<uint64_t> seen;
  for (uint64_t seed : {1ull, 42ull}) {
    for (size_t index = 0; index < 64; ++index) {
      for (uint64_t stream = 0; stream < 3; ++stream) {
        seen.insert(campaign::trial_seed(seed, index, stream));
      }
    }
  }
  EXPECT_EQ(seen.size(), 2u * 64u * 3u);  // no collisions across the grid
}

// --- fault isolation ---------------------------------------------------

TEST(CampaignFaults, ThrowingFactoryFailsOnlyItsTrial) {
  auto trials = small_workload();
  trials[1].factory = [](core::Testbed&) -> std::unique_ptr<core::Probe> {
    throw std::runtime_error("factory exploded");
  };
  campaign::CampaignOptions options;
  options.threads = 2;
  campaign::CampaignResult result = campaign::run(trials, options);
  ASSERT_EQ(result.trials.size(), 4u);
  EXPECT_EQ(result.failures, 1u);
  EXPECT_TRUE(result.trials[1].failed);
  EXPECT_EQ(result.trials[1].error, "factory exploded");
  for (size_t i : {0u, 2u, 3u}) {
    EXPECT_FALSE(result.trials[i].failed) << "trial " << i;
    EXPECT_FALSE(result.trials[i].report.technique.empty());
  }
  // The failure is in the report file, as an error line at its index.
  EXPECT_NE(result.to_jsonl().find(
                "{\"trial\":1,\"name\":\"rst/overt-dns\",\"error\":"
                "\"factory exploded\"}"),
            std::string::npos);
  // And in the merged metrics.
  EXPECT_NE(result.metrics_json().find("sm_campaign_trial_failures_total"),
            std::string::npos);
}

TEST(CampaignFaults, NullFactoryIsReportedNotFatal) {
  auto trials = small_workload();
  trials[0].factory = nullptr;
  campaign::CampaignResult result = campaign::run(trials, {});
  EXPECT_EQ(result.failures, 1u);
  EXPECT_TRUE(result.trials[0].failed);
  EXPECT_NE(result.trials[0].error.find("factory"), std::string::npos);
}

// --- the low-level job pool -------------------------------------------

TEST(CampaignJobs, EveryIndexRunsExactlyOnce) {
  for (campaign::Shard shard :
       {campaign::Shard::ByIndex, campaign::Shard::Dynamic}) {
    constexpr size_t kJobs = 200;
    std::vector<std::atomic<int>> hits(kJobs);
    campaign::CampaignOptions options;
    options.threads = 8;
    options.shard = shard;
    auto errors = campaign::run_jobs(
        kJobs, [&](size_t i, int worker) {
          EXPECT_GE(worker, 0);
          EXPECT_LT(worker, 8);
          hits[i].fetch_add(1, std::memory_order_relaxed);
        },
        options);
    ASSERT_EQ(errors.size(), kJobs);
    for (size_t i = 0; i < kJobs; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
      EXPECT_TRUE(errors[i].empty());
    }
  }
}

TEST(CampaignJobs, ExceptionsAreCapturedPerIndex) {
  campaign::CampaignOptions options;
  options.threads = 4;
  auto errors = campaign::run_jobs(
      10,
      [&](size_t i, int) {
        if (i % 3 == 0) throw std::runtime_error("job " + std::to_string(i));
      },
      options);
  for (size_t i = 0; i < errors.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(errors[i], "job " + std::to_string(i));
    } else {
      EXPECT_TRUE(errors[i].empty());
    }
  }
}

TEST(CampaignJobs, EmptyAndOversubscribedAreSafe) {
  EXPECT_TRUE(campaign::run_jobs(0, [](size_t, int) {}).empty());
  campaign::CampaignOptions options;
  options.threads = 64;  // more workers than jobs: clamped to n
  std::atomic<int> ran{0};
  auto errors =
      campaign::run_jobs(3, [&](size_t, int) { ran.fetch_add(1); }, options);
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(errors.size(), 3u);
  EXPECT_GE(campaign::resolve_threads(0), 1u);
  EXPECT_EQ(campaign::resolve_threads(5), 5u);
}

TEST(CampaignJobs, EmptyCampaignYieldsMetricsOnlyReport) {
  campaign::CampaignResult result = campaign::run({}, {});
  EXPECT_TRUE(result.trials.empty());
  EXPECT_EQ(result.failures, 0u);
  // Only the metrics block line (runner self-metrics at zero).
  std::string jsonl = result.to_jsonl();
  EXPECT_EQ(jsonl.find("\"trial\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"metrics\""), std::string::npos);
}

// --- logging thread safety & worker tagging ---------------------------

TEST(LoggingWorkers, WorkerIdTagsTheComponent) {
  using common::LogLevel;
  std::vector<std::string> components;
  common::set_log_sink([&](LogLevel, const std::string& component,
                           const std::string&) {
    components.push_back(component);
  });
  common::set_log_worker_id(3);
  EXPECT_EQ(common::log_worker_id(), 3);
  common::log_warn("campaign", "tagged");
  common::set_log_worker_id(-1);
  EXPECT_EQ(common::log_worker_id(), -1);
  common::log_warn("campaign", "untagged");
  common::set_log_sink(nullptr);
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], "w3/campaign");
  EXPECT_EQ(components[1], "campaign");
}

TEST(LoggingWorkers, CampaignWorkersEmitTaggedRecords) {
  using common::LogLevel;
  std::mutex mu;  // the sink itself runs serialized; guard the snapshot
  std::vector<std::string> components;
  common::set_log_sink([&](LogLevel, const std::string& component,
                           const std::string&) {
    std::lock_guard<std::mutex> lock(mu);
    components.push_back(component);
  });
  campaign::CampaignOptions options;
  options.threads = 4;
  campaign::run_jobs(
      16, [](size_t i, int) {
        common::log_warn("job", "running " + std::to_string(i));
      },
      options);
  common::set_log_sink(nullptr);
  ASSERT_EQ(components.size(), 16u);
  for (const std::string& c : components) {
    EXPECT_EQ(c.rfind("w", 0), 0u) << c;  // every record worker-tagged
    EXPECT_NE(c.find("/job"), std::string::npos) << c;
  }
}

TEST(LoggingWorkers, ConcurrentLevelFlipsAndEmissionAreRaceFree) {
  // The TSan canary: hammer level flips, sink swaps, and emission from
  // many threads at once. Correctness assertion is just "no crash and
  // every surviving record intact"; TSan turns any data race fatal.
  using common::LogLevel;
  std::atomic<size_t> records{0};
  common::set_log_sink(
      [&](LogLevel, const std::string&, const std::string&) {
        records.fetch_add(1, std::memory_order_relaxed);
      });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      common::set_log_worker_id(t);
      for (int i = 0; i < 200; ++i) {
        common::log_warn("stress", "m" + std::to_string(i));
        if (i % 50 == 0) {
          common::set_log_level(i % 100 == 0 ? LogLevel::Warn
                                             : LogLevel::Error);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  common::set_log_level(LogLevel::Warn);
  common::set_log_sink(nullptr);
  EXPECT_GT(records.load(), 0u);
}

}  // namespace
}  // namespace sm
