// TCP state-machine edge cases beyond the basic suite: close variants,
// TTL propagation, ISN behaviour, zero-window-free bulk flow under
// bandwidth constraints, and RST acceptance rules.
#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "proto/tcp/stack.hpp"

namespace sm::proto::tcp {
namespace {

using common::Duration;
using common::Ipv4Address;

class TcpEdgeTest : public ::testing::Test {
 protected:
  TcpEdgeTest() {
    client_host_ = net_.add_host("c", Ipv4Address(10, 0, 0, 1));
    server_host_ = net_.add_host("s", Ipv4Address(10, 0, 0, 2));
    router_ = net_.add_router("r");
    net_.connect(client_host_, router_);
    net_.connect(server_host_, router_);
    client_ = std::make_unique<Stack>(*client_host_);
    server_ = std::make_unique<Stack>(*server_host_);
  }
  void run(Duration d = Duration::seconds(3)) { net_.run_for(d); }

  netsim::Network net_;
  netsim::Host* client_host_;
  netsim::Host* server_host_;
  netsim::Router* router_;
  std::unique_ptr<Stack> client_;
  std::unique_ptr<Stack> server_;
};

TEST_F(TcpEdgeTest, CloseWithQueuedDataDeliversFirst) {
  std::string received;
  bool closed = false;
  server_->listen(80, [&](Connection& c) {
    c.on_data = [&](Connection&, std::span<const uint8_t> d) {
      received += common::to_string(d);
    };
    c.on_close = [&](Connection&) { closed = true; };
  });
  std::string blob(5000, 'k');
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [&blob](Connection& conn) {
    conn.send_text(blob);
    conn.close();  // FIN must trail the queued data
  };
  run();
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_TRUE(closed);
}

TEST_F(TcpEdgeTest, HalfCloseServerKeepsSending) {
  // Client closes its write side; server can still deliver data before
  // closing its own half.
  std::string client_got;
  bool client_fully_closed = false;
  server_->listen(80, [&](Connection& c) {
    c.on_close = [](Connection& conn) {
      // Remote FIN received: send a farewell, then close.
      conn.send_text("goodbye");
      conn.close();
    };
  });
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [](Connection& conn) { conn.close(); };
  c->on_data = [&](Connection&, std::span<const uint8_t> d) {
    client_got += common::to_string(d);
  };
  c->on_close = [&](Connection&) { client_fully_closed = true; };
  run();
  EXPECT_EQ(client_got, "goodbye");
  EXPECT_TRUE(client_fully_closed);
}

TEST_F(TcpEdgeTest, ConnectionTtlAppliesToAllSegments) {
  server_->listen(80, [](Connection& c) {
    c.set_ttl(5);
    c.send_text("low ttl data");
  });
  std::vector<uint8_t> seen_ttls;
  client_host_->add_promiscuous(
      [&](const packet::Decoded& d, const common::Bytes&) {
        if (d.tcp && d.ip.src == Ipv4Address(10, 0, 0, 2) &&
            !d.tcp->syn())
          seen_ttls.push_back(d.ip.ttl);
      });
  Connection* c = client_->connect(server_host_->address(), 80);
  (void)c;
  run();
  ASSERT_FALSE(seen_ttls.empty());
  for (uint8_t ttl : seen_ttls) EXPECT_EQ(ttl, 4);  // 5 minus one hop
}

TEST_F(TcpEdgeTest, DistinctConnectionsGetDistinctIsns) {
  server_->listen(80, [](Connection&) {});
  std::vector<uint32_t> synack_isns;
  client_host_->add_promiscuous(
      [&](const packet::Decoded& d, const common::Bytes&) {
        if (d.tcp && d.tcp->syn() && d.tcp->ack_flag())
          synack_isns.push_back(d.tcp->seq);
      });
  client_->connect(server_host_->address(), 80);
  client_->connect(server_host_->address(), 80);
  run();
  ASSERT_EQ(synack_isns.size(), 2u);
  EXPECT_NE(synack_isns[0], synack_isns[1]);
}

TEST_F(TcpEdgeTest, RstWithStaleSequenceIgnored) {
  server_->listen(80, [](Connection&) {});
  bool errored = false;
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_error = [&](Connection&) { errored = true; };
  run();
  ASSERT_EQ(c->state(), State::Established);
  // A RST far *behind* the receive window must be ignored.
  router_->inject(packet::make_tcp(server_host_->address(),
                                   client_host_->address(), 80,
                                   c->local_port(), packet::TcpFlags::kRst,
                                   1 /* ancient seq */, 0));
  run(Duration::millis(500));
  EXPECT_FALSE(errored);
  EXPECT_EQ(c->state(), State::Established);
}

TEST_F(TcpEdgeTest, BulkTransferOverConstrainedLink) {
  // 2 Mbps bottleneck toward the server: the transfer must still
  // complete intact, just slower.
  netsim::Network slow_net;
  auto* ch = slow_net.add_host("c", Ipv4Address(10, 0, 0, 1));
  auto* sh = slow_net.add_host("s", Ipv4Address(10, 0, 0, 2));
  auto* r = slow_net.add_router("r");
  slow_net.connect(ch, r,
                   netsim::LinkConfig{Duration::millis(1), 2'000'000, 0.0});
  slow_net.connect(sh, r, netsim::LinkConfig{Duration::millis(1), 0, 0.0});
  Stack cs(*ch), ss(*sh);
  std::string received;
  ss.listen(80, [&](Connection& c) {
    c.on_data = [&](Connection&, std::span<const uint8_t> d) {
      received += common::to_string(d);
    };
  });
  std::string blob(50'000, 'b');
  ConnectOptions opts;
  opts.rto = Duration::millis(400);
  opts.max_retries = 8;
  Connection* c = cs.connect(sh->address(), 80, opts);
  c->on_connect = [&blob](Connection& conn) { conn.send_text(blob); };
  slow_net.run_for(Duration::seconds(30));
  EXPECT_EQ(received.size(), blob.size());
  // 50 KB over 2 Mbps needs at least ~0.2 s of simulated time.
  EXPECT_GT(slow_net.engine().now().to_seconds(), 0.2);
}

TEST_F(TcpEdgeTest, ManyConcurrentConnectionsIndependentStreams) {
  constexpr int kConns = 20;
  std::map<uint16_t, std::string> received;  // keyed by remote port
  server_->listen(80, [&](Connection& c) {
    c.on_data = [&](Connection& conn, std::span<const uint8_t> d) {
      received[conn.remote_port()] += common::to_string(d);
    };
  });
  for (int i = 0; i < kConns; ++i) {
    Connection* c = client_->connect(server_host_->address(), 80);
    std::string payload = "conn-" + std::to_string(i);
    c->on_connect = [payload](Connection& conn) {
      conn.send_text(payload);
    };
  }
  run(Duration::seconds(5));
  ASSERT_EQ(received.size(), static_cast<size_t>(kConns));
  std::set<std::string> bodies;
  for (auto& [port, body] : received) bodies.insert(body);
  EXPECT_EQ(bodies.size(), static_cast<size_t>(kConns));
}

TEST_F(TcpEdgeTest, AbortBeforeConnectCompletesIsQuiet) {
  // close() during SYN_SENT abandons the attempt without callbacks.
  bool any_event = false;
  ConnectOptions opts;
  opts.rto = Duration::millis(100);
  Connection* c = client_->connect(Ipv4Address(203, 0, 113, 5), 80, opts);
  c->on_error = [&](Connection&) { any_event = true; };
  c->on_connect = [&](Connection&) { any_event = true; };
  c->close();
  run(Duration::seconds(2));
  EXPECT_FALSE(any_event);
}

TEST_F(TcpEdgeTest, StatsCountersTrackActivity) {
  server_->listen(80, [](Connection& c) {
    c.on_data = [](Connection& conn, std::span<const uint8_t> d) {
      conn.send(d);
    };
  });
  Connection* c = client_->connect(server_host_->address(), 80);
  c->on_connect = [](Connection& conn) { conn.send_text("ping"); };
  run();
  EXPECT_GT(client_->stats().segments_out, 2u);
  EXPECT_GT(server_->stats().segments_in, 2u);
  EXPECT_EQ(client_->stats().connections_opened, 1u);
  EXPECT_EQ(server_->stats().connections_accepted, 1u);
  EXPECT_EQ(c->bytes_sent(), 4u);
  EXPECT_EQ(c->bytes_received(), 4u);
}

// Parameterized sweep: payload sizes across segmentation boundaries all
// arrive intact (property: byte-stream transparency).
class PayloadSizeSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PayloadSizeSweep, StreamTransparency) {
  netsim::Network net;
  auto* ch = net.add_host("c", Ipv4Address(10, 0, 0, 1));
  auto* sh = net.add_host("s", Ipv4Address(10, 0, 0, 2));
  auto* r = net.add_router("r");
  net.connect(ch, r);
  net.connect(sh, r);
  Stack cs(*ch), ss(*sh);
  std::string received;
  ss.listen(80, [&](Connection& c) {
    c.on_data = [&](Connection&, std::span<const uint8_t> d) {
      received += common::to_string(d);
    };
  });
  size_t n = GetParam();
  std::string blob;
  blob.reserve(n);
  for (size_t i = 0; i < n; ++i)
    blob.push_back(static_cast<char>('A' + i % 53));
  Connection* c = cs.connect(sh->address(), 80);
  c->on_connect = [&blob](Connection& conn) { conn.send_text(blob); };
  net.run_for(Duration::seconds(20));
  EXPECT_EQ(received, blob);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSizeSweep,
                         ::testing::Values(1, 1459, 1460, 1461, 2920,
                                           10000, 65536));

}  // namespace
}  // namespace sm::proto::tcp
