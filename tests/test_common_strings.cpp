#include <gtest/gtest.h>

#include "common/strings.hpp"

namespace sm::common {
namespace {

TEST(Split, Basic) {
  auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, NoSeparator) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWhitespace, DropsEmpty) {
  auto parts = split_whitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWhitespace, Empty) {
  EXPECT_TRUE(split_whitespace("").empty());
  EXPECT_TRUE(split_whitespace("   ").empty());
}

TEST(Trim, Variants) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\r\n "), "");
}

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
}

TEST(Iequals, CaseInsensitive) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_FALSE(iequals("abc", "abd"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(StartsEndsWith, Basic) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("foobar", "bar"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(Ifind, FindsCaseInsensitive) {
  EXPECT_EQ(ifind("Hello World", "world"), 6u);
  EXPECT_EQ(ifind("abc", "ABC"), 0u);
  EXPECT_EQ(ifind("abc", "zzz"), std::string_view::npos);
  EXPECT_EQ(ifind("abc", ""), 0u);
  EXPECT_EQ(ifind("ab", "abc"), std::string_view::npos);
}

TEST(Icontains, Basic) {
  EXPECT_TRUE(icontains("the FALUN movement", "falun"));
  EXPECT_FALSE(icontains("nothing here", "falun"));
}

TEST(ParseInt, ValidAndInvalid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int(" 42 "), 42);
  EXPECT_FALSE(parse_int(""));
  EXPECT_FALSE(parse_int("4x"));
  EXPECT_FALSE(parse_int("x4"));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%05.1f", 2.25), "002.2");
  EXPECT_EQ(format("no args"), "no args");
}

}  // namespace
}  // namespace sm::common
