#include <gtest/gtest.h>

#include "ids/parser.hpp"
#include "packet/packet.hpp"

namespace sm::ids {
namespace {

Rule parse_one(std::string_view text, const VarTable& vars = {}) {
  auto result = parse_rule_line(text, vars);
  EXPECT_TRUE(result.ok()) << (result.errors.empty()
                                   ? ""
                                   : result.errors[0].message);
  if (!result.ok() || result.rules.empty()) return Rule{};
  return result.rules[0];
}

TEST(Parser, MinimalAlertRule) {
  Rule r = parse_one("alert tcp any any -> any 80 (msg:\"web\"; sid:1;)");
  EXPECT_EQ(r.action, RuleAction::Alert);
  EXPECT_EQ(r.proto, RuleProto::Tcp);
  EXPECT_TRUE(r.src.any);
  EXPECT_TRUE(r.src_ports.any);
  EXPECT_FALSE(r.dst_ports.any);
  EXPECT_TRUE(r.dst_ports.matches(80));
  EXPECT_FALSE(r.dst_ports.matches(81));
  EXPECT_EQ(r.msg, "web");
  EXPECT_EQ(r.sid, 1u);
}

TEST(Parser, AllActions) {
  EXPECT_EQ(parse_one("alert ip any any -> any any (sid:1;)").action,
            RuleAction::Alert);
  EXPECT_EQ(parse_one("log ip any any -> any any (sid:2;)").action,
            RuleAction::Log);
  EXPECT_EQ(parse_one("pass ip any any -> any any (sid:3;)").action,
            RuleAction::Pass);
  EXPECT_EQ(parse_one("drop ip any any -> any any (sid:4;)").action,
            RuleAction::Drop);
  EXPECT_EQ(parse_one("reject ip any any -> any any (sid:5;)").action,
            RuleAction::Reject);
}

TEST(Parser, CidrAndSingleAddresses) {
  Rule r = parse_one(
      "alert tcp 10.0.0.0/8 any -> 192.0.2.1 any (sid:1;)");
  EXPECT_TRUE(r.src.matches(common::Ipv4Address(10, 1, 2, 3)));
  EXPECT_FALSE(r.src.matches(common::Ipv4Address(11, 0, 0, 1)));
  EXPECT_TRUE(r.dst.matches(common::Ipv4Address(192, 0, 2, 1)));
  EXPECT_FALSE(r.dst.matches(common::Ipv4Address(192, 0, 2, 2)));
}

TEST(Parser, AddressLists) {
  Rule r = parse_one(
      "alert tcp [10.0.0.0/8,172.16.0.0/12] any -> any any (sid:1;)");
  EXPECT_TRUE(r.src.matches(common::Ipv4Address(10, 0, 0, 1)));
  EXPECT_TRUE(r.src.matches(common::Ipv4Address(172, 20, 0, 1)));
  EXPECT_FALSE(r.src.matches(common::Ipv4Address(192, 168, 1, 1)));
}

TEST(Parser, NegatedAddress) {
  Rule r = parse_one("alert tcp !10.0.0.0/8 any -> any any (sid:1;)");
  EXPECT_FALSE(r.src.matches(common::Ipv4Address(10, 0, 0, 1)));
  EXPECT_TRUE(r.src.matches(common::Ipv4Address(11, 0, 0, 1)));
}

TEST(Parser, PortRangesAndLists) {
  Rule r = parse_one("alert tcp any any -> any [80,443,8000:8100] (sid:1;)");
  EXPECT_TRUE(r.dst_ports.matches(80));
  EXPECT_TRUE(r.dst_ports.matches(443));
  EXPECT_TRUE(r.dst_ports.matches(8050));
  EXPECT_FALSE(r.dst_ports.matches(8101));
  EXPECT_FALSE(r.dst_ports.matches(22));
}

TEST(Parser, OpenEndedPortRanges) {
  Rule low = parse_one("alert tcp any any -> any :1024 (sid:1;)");
  EXPECT_TRUE(low.dst_ports.matches(0));
  EXPECT_TRUE(low.dst_ports.matches(1024));
  EXPECT_FALSE(low.dst_ports.matches(1025));
  Rule high = parse_one("alert tcp any any -> any 49152: (sid:2;)");
  EXPECT_TRUE(high.dst_ports.matches(65535));
  EXPECT_FALSE(high.dst_ports.matches(1000));
}

TEST(Parser, NegatedPorts) {
  Rule r = parse_one("alert tcp any any -> any !80 (sid:1;)");
  EXPECT_FALSE(r.dst_ports.matches(80));
  EXPECT_TRUE(r.dst_ports.matches(81));
}

TEST(Parser, Bidirectional) {
  Rule r = parse_one("alert tcp 10.0.0.1 any <> any 80 (sid:1;)");
  EXPECT_TRUE(r.bidirectional);
}

TEST(Parser, VariablesResolve) {
  VarTable vars{{"HOME_NET", "10.1.0.0/16"}, {"HTTP_PORTS", "[80,8080]"}};
  Rule r = parse_one("alert tcp $HOME_NET any -> any $HTTP_PORTS (sid:1;)",
                     vars);
  EXPECT_TRUE(r.src.matches(common::Ipv4Address(10, 1, 5, 5)));
  EXPECT_TRUE(r.dst_ports.matches(8080));
}

TEST(Parser, NegatedVariable) {
  VarTable vars{{"HOME_NET", "10.1.0.0/16"}};
  Rule r = parse_one("alert tcp !$HOME_NET any -> any any (sid:1;)", vars);
  EXPECT_FALSE(r.src.matches(common::Ipv4Address(10, 1, 0, 1)));
  EXPECT_TRUE(r.src.matches(common::Ipv4Address(8, 8, 8, 8)));
}

TEST(Parser, UndefinedVariableErrors) {
  auto result = parse_rule_line("alert tcp $NOPE any -> any any (sid:1;)");
  EXPECT_FALSE(result.ok());
}

TEST(Parser, ContentWithModifiers) {
  Rule r = parse_one(
      "alert tcp any any -> any any (content:\"falun\"; nocase; offset:4; "
      "depth:100; sid:1;)");
  ASSERT_EQ(r.contents.size(), 1u);
  EXPECT_EQ(r.contents[0].pattern, "falun");
  EXPECT_TRUE(r.contents[0].nocase);
  EXPECT_EQ(r.contents[0].offset, 4);
  EXPECT_EQ(r.contents[0].depth, 100);
}

TEST(Parser, MultipleContents) {
  Rule r = parse_one(
      "alert tcp any any -> any any (content:\"GET\"; content:\"Host\"; "
      "sid:1;)");
  ASSERT_EQ(r.contents.size(), 2u);
}

TEST(Parser, NegatedContent) {
  Rule r = parse_one(
      "alert tcp any any -> any any (content:!\"normal\"; sid:1;)");
  ASSERT_EQ(r.contents.size(), 1u);
  EXPECT_TRUE(r.contents[0].negated);
}

TEST(Parser, HexContent) {
  Rule r = parse_one(
      "alert tcp any any -> any any (content:\"|de ad be ef|tail\"; sid:1;)");
  ASSERT_EQ(r.contents.size(), 1u);
  ASSERT_EQ(r.contents[0].pattern.size(), 8u);
  EXPECT_EQ(static_cast<uint8_t>(r.contents[0].pattern[0]), 0xDE);
  EXPECT_EQ(r.contents[0].pattern.substr(4), "tail");
}

TEST(Parser, BadHexErrors) {
  auto r = parse_rule_line(
      "alert tcp any any -> any any (content:\"|zz|\"; sid:1;)");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, FlagsVariants) {
  Rule exact = parse_one("alert tcp any any -> any any (flags:S; sid:1;)");
  ASSERT_TRUE(exact.flags);
  EXPECT_EQ(exact.flags->required, packet::TcpFlags::kSyn);
  EXPECT_TRUE(exact.flags->exact);

  Rule plus = parse_one("alert tcp any any -> any any (flags:SA+; sid:2;)");
  ASSERT_TRUE(plus.flags);
  EXPECT_FALSE(plus.flags->exact);

  Rule neg = parse_one("alert tcp any any -> any any (flags:!R; sid:3;)");
  ASSERT_TRUE(neg.flags);
  EXPECT_TRUE(neg.flags->negated);
}

TEST(Parser, DsizeVariants) {
  Rule eq = parse_one("alert udp any any -> any any (dsize:100; sid:1;)");
  EXPECT_TRUE(eq.dsize->matches(100));
  EXPECT_FALSE(eq.dsize->matches(99));
  Rule gt = parse_one("alert udp any any -> any any (dsize:>100; sid:2;)");
  EXPECT_TRUE(gt.dsize->matches(101));
  EXPECT_FALSE(gt.dsize->matches(100));
  Rule lt = parse_one("alert udp any any -> any any (dsize:<100; sid:3;)");
  EXPECT_TRUE(lt.dsize->matches(99));
  Rule range =
      parse_one("alert udp any any -> any any (dsize:50<>60; sid:4;)");
  EXPECT_TRUE(range.dsize->matches(55));
  EXPECT_FALSE(range.dsize->matches(61));
}

TEST(Parser, FlowKeywords) {
  Rule r = parse_one(
      "alert tcp any any -> any any (flow:established,to_server; sid:1;)");
  ASSERT_TRUE(r.flow);
  EXPECT_TRUE(r.flow->established);
  EXPECT_TRUE(r.flow->to_server);
  EXPECT_FALSE(r.flow->to_client);
}

TEST(Parser, Threshold) {
  Rule r = parse_one(
      "alert tcp any any -> any any (threshold:type both, track by_src, "
      "count 5, seconds 60; sid:1;)");
  ASSERT_TRUE(r.threshold);
  EXPECT_EQ(r.threshold->type, ThresholdSpec::Type::Both);
  EXPECT_EQ(r.threshold->track, ThresholdSpec::Track::BySrc);
  EXPECT_EQ(r.threshold->count, 5u);
  EXPECT_EQ(r.threshold->seconds, 60u);
}

TEST(Parser, ClasstypePriorityRev) {
  Rule r = parse_one(
      "alert tcp any any -> any any (msg:\"x\"; classtype:attempted-recon; "
      "priority:2; sid:9; rev:3;)");
  EXPECT_EQ(r.classtype, "attempted-recon");
  EXPECT_EQ(r.priority, 2);
  EXPECT_EQ(r.rev, 3u);
}

TEST(Parser, SemicolonInsideQuotedMsg) {
  Rule r = parse_one(
      "alert tcp any any -> any any (msg:\"a;b\"; sid:1;)");
  EXPECT_EQ(r.msg, "a;b");
}

TEST(Parser, MultiLineRulesetSkipsCommentsAndBlanks) {
  auto result = parse_rules(
      "# comment line\n"
      "\n"
      "alert tcp any any -> any 80 (sid:1;)\n"
      "   # indented comment\n"
      "alert udp any any -> any 53 (sid:2;)\n");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.rules.size(), 2u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  auto result = parse_rules(
      "alert tcp any any -> any 80 (sid:1;)\n"
      "bogus nonsense\n"
      "alert udp any any -> any 53 (sid:2;)\n");
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_EQ(result.errors[0].line, 2u);
  EXPECT_EQ(result.rules.size(), 2u);  // good lines still parse
}

TEST(Parser, RejectsMalformedHeaders) {
  EXPECT_FALSE(parse_rule_line("alert tcp any any -> any (sid:1;)").ok());
  EXPECT_FALSE(parse_rule_line("alert tcp any any any 80 (sid:1;)").ok());
  EXPECT_FALSE(
      parse_rule_line("alert quic any any -> any 80 (sid:1;)").ok());
  EXPECT_FALSE(
      parse_rule_line("ignore tcp any any -> any 80 (sid:1;)").ok());
  EXPECT_FALSE(parse_rule_line("alert tcp any any -> any 80 (sid:1;").ok());
  EXPECT_FALSE(parse_rule_line("alert tcp any any -> any 80").ok());
}

TEST(Parser, RejectsBadOptionValues) {
  EXPECT_FALSE(
      parse_rule_line("alert tcp any any -> any any (nocase; sid:1;)").ok());
  EXPECT_FALSE(
      parse_rule_line("alert tcp any any -> any any (sid:abc;)").ok());
  EXPECT_FALSE(parse_rule_line(
                   "alert tcp any any -> any any (content:\"\"; sid:1;)")
                   .ok());
  EXPECT_FALSE(parse_rule_line(
                   "alert tcp any any -> any any (dsize:xyz; sid:1;)")
                   .ok());
  EXPECT_FALSE(
      parse_rule_line("alert tcp any any -> any 70000 (sid:1;)").ok());
}

TEST(Parser, RoundTripThroughToString) {
  const char* text =
      "alert tcp 10.0.0.0/8 any -> any 80 (msg:\"roundtrip\"; "
      "content:\"abc\"; nocase; flags:S; dsize:>10; "
      "flow:established,to_server; sid:42; rev:1;)";
  Rule r1 = parse_one(text);
  Rule r2 = parse_one(r1.to_string());
  EXPECT_EQ(r2.msg, r1.msg);
  EXPECT_EQ(r2.sid, r1.sid);
  EXPECT_EQ(r2.contents.size(), r1.contents.size());
  EXPECT_EQ(r2.flags->required, r1.flags->required);
  EXPECT_EQ(r2.dsize->op, r1.dsize->op);
  EXPECT_EQ(r2.flow->established, r1.flow->established);
}

}  // namespace
}  // namespace sm::ids
