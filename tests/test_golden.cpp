// Golden-snapshot tests for the serialized output formats.
//
// The JSONL measurement reports, the metrics JSON snapshot, and the
// Prometheus exposition are interchange surfaces: downstream tooling
// parses them, so format drift must be an explicit review event, not an
// accident. Each test renders a fixed artifact and byte-compares it
// against a checked-in fixture under tests/golden/.
//
// To regenerate after an *intentional* format change:
//
//   UPDATE_GOLDEN=1 ./build/tests/test_golden
//
// then review the fixture diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/report_json.hpp"
#include "core/risk.hpp"
#include "core/verdict.hpp"
#include "obs/metrics.hpp"

using namespace sm;

namespace {

std::string golden_path(const std::string& name) {
  return std::string(SM_TEST_DIR) + "/golden/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("UPDATE_GOLDEN")) {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << path
                  << " (run with UPDATE_GOLDEN=1 to create it)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << "serialized format drifted from " << path
      << "; if intentional, regenerate with UPDATE_GOLDEN=1 and review the "
         "fixture diff";
}

/// A fully-populated report pair with every field away from its default,
/// so the fixture pins the complete schema (field set, order, escaping,
/// number formatting).
std::pair<core::ProbeReport, core::RiskReport> sample_blocked() {
  core::ProbeReport report;
  report.technique = "overt-http";
  report.target = "blocked.example";
  report.verdict = core::Verdict::BlockedRst;
  report.detail = "RST after keyword \"falun\" (attempt 2/3)";
  report.packets_sent = 17;
  report.samples = 3;
  report.samples_blocked = 3;
  report.attempts = 2;
  report.confidence.conclusion = core::Conclusion::Blocked;
  report.confidence.trials = 3;
  report.confidence.trials_blocked = 3;
  report.confidence.score = 1.0;
  core::RiskReport risk;
  risk.technique = "overt-http";
  risk.targeted_alerts = 4;
  risk.censored_access_alerts = 2;
  risk.noise_alerts = 1;
  risk.suspicion = 12.5;
  risk.evaded = false;
  risk.investigated = true;
  risk.attribution_probability = 0.875;
  return {report, risk};
}

std::pair<core::ProbeReport, core::RiskReport> sample_open() {
  core::ProbeReport report;
  report.technique = "mimicry-dns";
  report.target = "open.example";
  report.verdict = core::Verdict::Reachable;
  report.detail = "A answer matched expectation";
  report.packets_sent = 5;
  report.samples = 1;
  report.attempts = 1;
  report.confidence.conclusion = core::Conclusion::Open;
  report.confidence.trials = 1;
  report.confidence.trials_open = 1;
  report.confidence.score = 1.0;
  core::RiskReport risk;
  risk.technique = "mimicry-dns";
  risk.evaded = true;
  risk.attribution_probability = 0.125;
  return {report, risk};
}

/// A registry exercising all three series kinds, labels, and the escape
/// paths of both renderers.
void fill_registry(obs::Registry& registry) {
  registry.counter("sm_ids_packets_total", {{"instance", "mvr"}},
                   "packets inspected")->inc(1234);
  registry.counter("sm_ids_packets_total", {{"instance", "censor"}},
                   "packets inspected")->inc(987);
  registry.counter("sm_campaign_trials_total", {}, "trials run")->inc(8);
  registry.gauge("sm_mvr_store_bytes", {{"tier", "alert\"quoted\""}},
                 "bytes retained")->set(65536.5);
  auto* hist = registry.histogram("sm_trial_sim_seconds", 0.0, 10.0, 5, {},
                                  "per-trial simulated time");
  hist->observe(0.5);
  hist->observe(2.5);
  hist->observe(9.5);
}

/// v6 report pair: family shows up in the bracketed target notation, the
/// schema itself is family-invariant — this fixture pins both facts.
std::pair<core::ProbeReport, core::RiskReport> sample_blocked_v6() {
  core::ProbeReport report;
  report.technique = "syn-reach";
  report.target = "[fd00::5eed:c000:250]:80";
  report.verdict = core::Verdict::BlockedTimeout;
  report.detail = "no SYN-ACK within timeout (attempt 3/3)";
  report.packets_sent = 9;
  report.samples = 3;
  report.samples_blocked = 3;
  report.attempts = 3;
  report.confidence.conclusion = core::Conclusion::Blocked;
  report.confidence.trials = 3;
  report.confidence.trials_silent = 3;
  report.confidence.score = 1.0;
  core::RiskReport risk;
  risk.technique = "syn-reach";
  risk.evaded = true;
  risk.attribution_probability = 0.25;
  return {report, risk};
}

std::pair<core::ProbeReport, core::RiskReport> sample_open_v6() {
  core::ProbeReport report;
  report.technique = "ping";
  report.target = "[fd00::5eed:c000:250]";
  report.verdict = core::Verdict::Reachable;
  report.detail = "4/4 echo replies";
  report.packets_sent = 4;
  report.samples = 4;
  report.attempts = 1;
  report.confidence.conclusion = core::Conclusion::Open;
  report.confidence.trials = 4;
  report.confidence.trials_open = 4;
  report.confidence.score = 1.0;
  core::RiskReport risk;
  risk.technique = "ping";
  risk.evaded = true;
  risk.attribution_probability = 0.125;
  return {report, risk};
}

}  // namespace

TEST(Golden, ProbeReportJsonl) {
  std::vector<std::pair<core::ProbeReport, core::RiskReport>> results;
  results.push_back(sample_blocked());
  results.push_back(sample_open());
  check_golden("probe_reports.jsonl", core::to_jsonl(results));
}

TEST(Golden, ProbeReportJsonlV6) {
  std::vector<std::pair<core::ProbeReport, core::RiskReport>> results;
  results.push_back(sample_blocked_v6());
  results.push_back(sample_open_v6());
  check_golden("probe_reports_v6.jsonl", core::to_jsonl(results));
}

TEST(Golden, RegistryJson) {
  obs::Registry registry;
  fill_registry(registry);
  check_golden("metrics.json", registry.to_json() + "\n");
}

TEST(Golden, RegistryPrometheus) {
  obs::Registry registry;
  fill_registry(registry);
  check_golden("metrics.prom", registry.to_prometheus());
}
