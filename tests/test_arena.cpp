// Arena/Pool allocator tests: alignment, slab reuse across reset(),
// free-list recycling, ASan poisoning, and thread-confinement under the
// campaign job pool (one arena per worker, as DESIGN §12 requires).
#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "campaign/campaign.hpp"

namespace sm::common {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena(256);
  std::vector<std::pair<uint8_t*, size_t>> blocks;
  for (size_t i = 1; i <= 64; ++i) {
    size_t align = size_t{1} << (i % 5);  // 1..16
    auto* p = static_cast<uint8_t*>(arena.allocate(i, align));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u);
    std::memset(p, static_cast<int>(i), i);
    blocks.emplace_back(p, i);
  }
  // Writing each block did not clobber any other block.
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t b = 0; b < blocks[i].second; ++b) {
      EXPECT_EQ(blocks[i].first[b], static_cast<uint8_t>(i + 1));
    }
  }
}

TEST(Arena, OversizedRequestsGetDedicatedSlabs) {
  Arena arena(128);
  auto* big = static_cast<uint8_t*>(arena.allocate(4096));
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 4096);
  auto* small = static_cast<uint8_t*>(arena.allocate(16));
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(big[4095], 0xAB);
}

TEST(Arena, ResetKeepsSlabsAndReusesThem) {
  Arena arena(1024);
  for (int i = 0; i < 100; ++i) arena.allocate(64);
  size_t slabs_before = arena.slab_count();
  EXPECT_GT(slabs_before, 1u);
  arena.reset();
  for (int i = 0; i < 100; ++i) arena.allocate(64);
  // The second fill recycles the first fill's slabs: no new allocations.
  EXPECT_EQ(arena.slab_count(), slabs_before);
}

TEST(Arena, CopyReturnsStableBytes) {
  Arena arena(64);
  std::vector<uint8_t> src(200);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<uint8_t>(i);
  uint8_t* copy = arena.copy(src.data(), src.size());
  src.assign(src.size(), 0);  // mutating the source must not matter
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(copy[i], static_cast<uint8_t>(i));
  }
}

struct Blob {
  uint64_t a;
  uint64_t b;
};

TEST(Pool, RecyclesDestroyedSlots) {
  Pool<Blob> pool(8);
  std::vector<Blob*> first;
  for (int i = 0; i < 16; ++i) first.push_back(pool.create(Blob{1, 2}));
  EXPECT_EQ(pool.live(), 16u);
  EXPECT_EQ(pool.recycled(), 0u);
  std::set<void*> old_slots(first.begin(), first.end());
  for (Blob* b : first) pool.destroy(b);
  EXPECT_EQ(pool.live(), 0u);

  // The next 16 creates are served entirely from the free list, reusing
  // the exact same memory — no new slabs.
  size_t slabs = pool.slab_count();
  for (int i = 0; i < 16; ++i) {
    Blob* b = pool.create(Blob{3, 4});
    EXPECT_TRUE(old_slots.count(b)) << "slot not recycled";
  }
  EXPECT_EQ(pool.recycled(), 16u);
  EXPECT_EQ(pool.slab_count(), slabs);
  EXPECT_EQ(pool.total_created(), 32u);
}

TEST(Pool, DestructorRunsOnDestroy) {
  struct Counted {
    int* counter;
    explicit Counted(int* c) : counter(c) {}
    ~Counted() { ++*counter; }
  };
  int destroyed = 0;
  Pool<Counted> pool(4);
  Counted* a = pool.create(&destroyed);
  Counted* b = pool.create(&destroyed);
  pool.destroy(a);
  EXPECT_EQ(destroyed, 1);
  pool.destroy(b);
  EXPECT_EQ(destroyed, 2);
}

#if SM_ASAN
TEST(Pool, PoisonsFreedObjectsUnderAsan) {
  Pool<Blob> pool(4);
  Blob* b = pool.create(Blob{7, 8});
  EXPECT_FALSE(__asan_address_is_poisoned(b));
  pool.destroy(b);
  // A use-after-destroy on a pooled object now faults exactly like a
  // heap use-after-free.
  EXPECT_TRUE(__asan_address_is_poisoned(b));
  Blob* again = pool.create(Blob{9, 10});
  EXPECT_FALSE(__asan_address_is_poisoned(again));
  pool.destroy(again);
}
#endif

TEST(Pool, OneInstancePerWorkerIsThreadClean) {
  // The ownership rule: pools are thread-confined, one per campaign
  // worker. Hammering a worker-local pool from run_jobs must be clean
  // under TSan (there is no sharing to race on).
  campaign::CampaignOptions options;
  options.threads = 4;
  std::vector<size_t> recycled(8, 0);
  auto errors = campaign::run_jobs(
      8,
      [&](size_t index, int) {
        Pool<Blob> pool(32);
        std::vector<Blob*> live;
        for (int round = 0; round < 50; ++round) {
          for (int i = 0; i < 20; ++i) {
            live.push_back(pool.create(Blob{index, uint64_t(i)}));
          }
          for (Blob* b : live) pool.destroy(b);
          live.clear();
        }
        recycled[index] = pool.recycled();
      },
      options);
  for (const auto& err : errors) EXPECT_TRUE(err.empty()) << err;
  for (size_t r : recycled) EXPECT_GT(r, 0u);
}

}  // namespace
}  // namespace sm::common
