// Property-based fuzzing of the wire codecs, seeded for reproducibility.
//
// Two properties, over randomized TCP/UDP/ICMP packets and DNS messages:
//   1. Round-trip: decode(encode(x)) reproduces every field we encode.
//   2. Robustness: decode() of a randomly mutated or truncated buffer
//      either fails cleanly or yields a self-consistent view — never a
//      crash or (under the ci.sh ASan/UBSan stage) undefined behaviour.
// This is the receive path that impaired links exercise for real: byte
// corruption that slips past the checksums lands in these decoders.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "packet/packet.hpp"
#include "proto/dns/message.hpp"

namespace sm {
namespace {

using common::Bytes;
using common::Ipv4Address;
using common::Rng;

Ipv4Address random_addr(Rng& rng) {
  return Ipv4Address(static_cast<uint32_t>(rng.next()));
}

Bytes random_payload(Rng& rng, size_t max_len) {
  Bytes out(rng.bounded(max_len + 1));
  for (auto& b : out) b = static_cast<uint8_t>(rng.bounded(256));
  return out;
}

packet::IpOptions random_ip_options(Rng& rng) {
  packet::IpOptions ip;
  ip.ttl = static_cast<uint8_t>(1 + rng.bounded(255));
  ip.tos = static_cast<uint8_t>(rng.bounded(256));
  ip.identification = static_cast<uint16_t>(rng.bounded(65536));
  ip.dont_fragment = rng.chance(0.5);
  return ip;
}

/// Builds a random packet of a random flavour (TCP/UDP/ICMP).
packet::Packet random_packet(Rng& rng) {
  Bytes payload = random_payload(rng, 600);
  packet::IpOptions ip = random_ip_options(rng);
  switch (rng.bounded(3)) {
    case 0:
      return packet::make_tcp(
          random_addr(rng), random_addr(rng),
          static_cast<uint16_t>(rng.bounded(65536)),
          static_cast<uint16_t>(rng.bounded(65536)),
          static_cast<uint8_t>(rng.bounded(64)),
          static_cast<uint32_t>(rng.next()),
          static_cast<uint32_t>(rng.next()), payload, ip,
          static_cast<uint16_t>(rng.bounded(65536)));
    case 1:
      return packet::make_udp(random_addr(rng), random_addr(rng),
                              static_cast<uint16_t>(rng.bounded(65536)),
                              static_cast<uint16_t>(rng.bounded(65536)),
                              payload, ip);
    default:
      return packet::make_icmp(random_addr(rng), random_addr(rng),
                               static_cast<uint8_t>(rng.bounded(256)),
                               static_cast<uint8_t>(rng.bounded(256)),
                               static_cast<uint32_t>(rng.next()), payload,
                               ip);
  }
}

TEST(PacketFuzz, RoundTripPreservesEveryEncodedField) {
  Rng rng(0xF022);
  for (int iter = 0; iter < 500; ++iter) {
    Ipv4Address src = random_addr(rng), dst = random_addr(rng);
    uint16_t sport = static_cast<uint16_t>(rng.bounded(65536));
    uint16_t dport = static_cast<uint16_t>(rng.bounded(65536));
    Bytes payload = random_payload(rng, 400);
    packet::IpOptions ip = random_ip_options(rng);
    int flavour = static_cast<int>(rng.bounded(3));
    packet::Packet p;
    if (flavour == 0) {
      uint8_t flags = static_cast<uint8_t>(rng.bounded(64));
      uint32_t seq = static_cast<uint32_t>(rng.next());
      uint32_t ack = static_cast<uint32_t>(rng.next());
      p = packet::make_tcp(src, dst, sport, dport, flags, seq, ack,
                           payload, ip);
      auto d = packet::decode(p);
      ASSERT_TRUE(d) << "iter " << iter;
      ASSERT_TRUE(d->tcp);
      EXPECT_EQ(d->tcp->src_port, sport);
      EXPECT_EQ(d->tcp->dst_port, dport);
      EXPECT_EQ(d->tcp->flags, flags);
      EXPECT_EQ(d->tcp->seq, seq);
      EXPECT_EQ(d->tcp->ack, ack);
    } else if (flavour == 1) {
      p = packet::make_udp(src, dst, sport, dport, payload, ip);
      auto d = packet::decode(p);
      ASSERT_TRUE(d) << "iter " << iter;
      ASSERT_TRUE(d->udp);
      EXPECT_EQ(d->udp->src_port, sport);
      EXPECT_EQ(d->udp->dst_port, dport);
    } else {
      uint8_t type = static_cast<uint8_t>(rng.bounded(256));
      uint8_t code = static_cast<uint8_t>(rng.bounded(256));
      uint32_t rest = static_cast<uint32_t>(rng.next());
      p = packet::make_icmp(src, dst, type, code, rest, payload, ip);
      auto d = packet::decode(p);
      ASSERT_TRUE(d) << "iter " << iter;
      ASSERT_TRUE(d->icmp);
      EXPECT_EQ(d->icmp->type, type);
      EXPECT_EQ(d->icmp->code, code);
      EXPECT_EQ(d->icmp->rest, rest);
    }
    auto d = packet::decode(p);
    ASSERT_TRUE(d);
    EXPECT_EQ(d->ip.src, src);
    EXPECT_EQ(d->ip.dst, dst);
    EXPECT_EQ(d->ip.ttl, ip.ttl);
    EXPECT_EQ(d->ip.tos, ip.tos);
    EXPECT_EQ(d->ip.identification, ip.identification);
    EXPECT_EQ(d->ip.dont_fragment, ip.dont_fragment);
    ASSERT_EQ(d->l4_payload.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           d->l4_payload.begin()));
    EXPECT_TRUE(packet::verify_checksums(
        std::span<const uint8_t>(p.data())));
  }
}

TEST(PacketFuzz, MutatedBuffersNeverCrashTheDecoder) {
  Rng rng(0xBADF00D);
  for (int iter = 0; iter < 2000; ++iter) {
    packet::Packet p = random_packet(rng);
    Bytes wire = p.data();
    size_t flips = 1 + rng.bounded(8);
    for (size_t f = 0; f < flips && !wire.empty(); ++f) {
      wire[rng.bounded(wire.size())] ^=
          static_cast<uint8_t>(1 + rng.bounded(255));
    }
    // Must not crash; when decode succeeds the view must stay inside
    // the buffer (touch every byte the spans claim to reference).
    auto d = packet::decode(std::span<const uint8_t>(wire));
    if (d) {
      volatile uint8_t sink = 0;
      for (uint8_t b : d->l4_payload) sink ^= b;
      (void)sink;
      EXPECT_LE(d->ip.header_length(), wire.size());
    }
    (void)packet::verify_checksums(std::span<const uint8_t>(wire));
  }
}

TEST(PacketFuzz, TruncatedBuffersNeverCrashTheDecoder) {
  Rng rng(0x7A11);
  for (int iter = 0; iter < 1000; ++iter) {
    packet::Packet p = random_packet(rng);
    const Bytes& wire = p.data();
    size_t cut = rng.bounded(wire.size() + 1);
    Bytes trunc(wire.begin(), wire.begin() + cut);
    auto d = packet::decode(std::span<const uint8_t>(trunc));
    if (d) {
      volatile uint8_t sink = 0;
      for (uint8_t b : d->l4_payload) sink ^= b;
      (void)sink;
    }
    (void)packet::verify_checksums(std::span<const uint8_t>(trunc));
  }
}

// --- IPv6: random extension chains, fixpoint, truncation lockstep ---

common::Ipv6Address random_addr6(Rng& rng) {
  return common::Ipv6Address(rng.next(), rng.next());
}

packet::Ipv6Options random_ip6_options(Rng& rng) {
  packet::Ipv6Options ip;
  ip.hop_limit = static_cast<uint8_t>(1 + rng.bounded(255));
  ip.traffic_class = static_cast<uint8_t>(rng.bounded(256));
  ip.flow_label = static_cast<uint32_t>(rng.bounded(1u << 20));
  size_t chain = rng.bounded(4);  // 0..3 extension headers
  for (size_t i = 0; i < chain; ++i) {
    packet::Ipv6ExtSpec ext;
    // RFC 8200 §4.1: hop-by-hop is only valid immediately after the
    // fixed header, and decode() enforces it — so only offer it first.
    if (i == 0 && rng.chance(0.4)) {
      ext.type = static_cast<uint8_t>(packet::IpProto::HopByHop);
    } else {
      ext.type = rng.chance(0.5)
                     ? static_cast<uint8_t>(packet::IpProto::Routing)
                     : static_cast<uint8_t>(packet::IpProto::DestOpts);
    }
    ext.body = random_payload(rng, 24);
    ip.ext.push_back(std::move(ext));
  }
  return ip;
}

/// Builds a random v6 packet of a random flavour (TCP/UDP/ICMPv6), with
/// a random extension chain.
packet::Packet random_packet6(Rng& rng) {
  Bytes payload = random_payload(rng, 300);
  packet::Ipv6Options ip = random_ip6_options(rng);
  switch (rng.bounded(3)) {
    case 0:
      return packet::make_tcp6(
          random_addr6(rng), random_addr6(rng),
          static_cast<uint16_t>(rng.bounded(65536)),
          static_cast<uint16_t>(rng.bounded(65536)),
          static_cast<uint8_t>(rng.bounded(64)),
          static_cast<uint32_t>(rng.next()),
          static_cast<uint32_t>(rng.next()), payload, ip,
          static_cast<uint16_t>(rng.bounded(65536)));
    case 1:
      return packet::make_udp6(random_addr6(rng), random_addr6(rng),
                               static_cast<uint16_t>(rng.bounded(65536)),
                               static_cast<uint16_t>(rng.bounded(65536)),
                               payload, ip);
    default:
      return packet::make_icmp6(random_addr6(rng), random_addr6(rng),
                                static_cast<uint8_t>(rng.bounded(256)),
                                static_cast<uint8_t>(rng.bounded(256)),
                                static_cast<uint32_t>(rng.next()), payload,
                                ip);
  }
}

TEST(PacketFuzz, Ipv6RoundTripPreservesEveryEncodedField) {
  Rng rng(0x6F022);
  for (int iter = 0; iter < 3000; ++iter) {
    common::Ipv6Address src = random_addr6(rng), dst = random_addr6(rng);
    uint16_t sport = static_cast<uint16_t>(rng.bounded(65536));
    uint16_t dport = static_cast<uint16_t>(rng.bounded(65536));
    Bytes payload = random_payload(rng, 300);
    packet::Ipv6Options ip = random_ip6_options(rng);
    int flavour = static_cast<int>(rng.bounded(3));
    packet::Packet p;
    if (flavour == 0) {
      uint8_t flags = static_cast<uint8_t>(rng.bounded(64));
      uint32_t seq = static_cast<uint32_t>(rng.next());
      uint32_t ack = static_cast<uint32_t>(rng.next());
      p = packet::make_tcp6(src, dst, sport, dport, flags, seq, ack,
                            payload, ip);
      auto d = packet::decode(p);
      ASSERT_TRUE(d) << "iter " << iter;
      ASSERT_TRUE(d->tcp);
      EXPECT_EQ(d->tcp->src_port, sport);
      EXPECT_EQ(d->tcp->dst_port, dport);
      EXPECT_EQ(d->tcp->flags, flags);
      EXPECT_EQ(d->tcp->seq, seq);
      EXPECT_EQ(d->tcp->ack, ack);
    } else if (flavour == 1) {
      p = packet::make_udp6(src, dst, sport, dport, payload, ip);
      auto d = packet::decode(p);
      ASSERT_TRUE(d) << "iter " << iter;
      ASSERT_TRUE(d->udp);
      EXPECT_EQ(d->udp->src_port, sport);
      EXPECT_EQ(d->udp->dst_port, dport);
    } else {
      uint8_t type = static_cast<uint8_t>(rng.bounded(256));
      uint8_t code = static_cast<uint8_t>(rng.bounded(256));
      uint32_t rest = static_cast<uint32_t>(rng.next());
      p = packet::make_icmp6(src, dst, type, code, rest, payload, ip);
      auto d = packet::decode(p);
      ASSERT_TRUE(d) << "iter " << iter;
      ASSERT_TRUE(d->icmp);
      EXPECT_EQ(d->icmp->type, type);
      EXPECT_EQ(d->icmp->code, code);
      EXPECT_EQ(d->icmp->rest, rest);
    }
    auto d = packet::decode(p);
    ASSERT_TRUE(d);
    ASSERT_TRUE(d->is_v6());
    EXPECT_EQ(d->ip6->src, src);
    EXPECT_EQ(d->ip6->dst, dst);
    EXPECT_EQ(d->ip6->hop_limit, ip.hop_limit);
    EXPECT_EQ(d->ip6->traffic_class, ip.traffic_class);
    EXPECT_EQ(d->ip6->flow_label, ip.flow_label);
    ASSERT_EQ(d->ip6->ext_count, ip.ext.size()) << "iter " << iter;
    for (size_t i = 0; i < ip.ext.size(); ++i)
      EXPECT_EQ(d->ip6->ext_headers()[i].type, ip.ext[i].type);
    ASSERT_EQ(d->l4_payload.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           d->l4_payload.begin()));
    EXPECT_TRUE(packet::verify_checksums(
        std::span<const uint8_t>(p.data())));
  }
}

TEST(PacketFuzz, Ipv6DecodeReassembleReachesFixpoint) {
  Rng rng(0x6F1C5);
  for (int iter = 0; iter < 3000; ++iter) {
    packet::Packet p = random_packet6(rng);
    std::span<const uint8_t> wire(p.data());
    auto d = packet::decode(wire);
    ASSERT_TRUE(d && d->is_v6()) << "iter " << iter;
    packet::Packet rebuilt = packet::reassemble6(
        *d->ip6, wire.subspan(d->ip6->header_length()));
    ASSERT_EQ(rebuilt.data().size(), wire.size()) << "iter " << iter;
    EXPECT_TRUE(std::equal(rebuilt.data().begin(), rebuilt.data().end(),
                           wire.begin()))
        << "iter " << iter;
  }
}

TEST(PacketFuzz, Ipv6TruncationAtEveryByteKeepsDecodeRoutePeekLockstep) {
  // The sweep the dual-stack contract demands: for every prefix of every
  // packet, decode() and route_peek() accept or reject the exact same
  // bytes, and agree on the destination when both accept. Well past 10k
  // cases (~150 packets x ~250 byte average length).
  Rng rng(0x67A11);
  size_t cases = 0;
  for (int iter = 0; iter < 150; ++iter) {
    packet::Packet p = random_packet6(rng);
    const Bytes& wire = p.data();
    for (size_t cut = 0; cut <= wire.size(); ++cut, ++cases) {
      std::span<const uint8_t> trunc(wire.data(), cut);
      auto d = packet::decode(trunc);
      auto peek = packet::route_peek(trunc);
      ASSERT_EQ(d.has_value(), peek.has_value())
          << "iter " << iter << " cut " << cut;
      if (d) {
        EXPECT_EQ(*peek, d->dst_addr());
        volatile uint8_t sink = 0;
        for (uint8_t b : d->l4_payload) sink ^= b;
        (void)sink;
        EXPECT_LE(d->ip6->header_length(), cut);
      }
      (void)packet::verify_checksums(trunc);
    }
  }
  EXPECT_GE(cases, 10000u);
}

TEST(PacketFuzz, Ipv6MutatedBuffersNeverCrashTheDecoder) {
  Rng rng(0x6BADF00D);
  for (int iter = 0; iter < 3000; ++iter) {
    packet::Packet p = random_packet6(rng);
    Bytes wire = p.data();
    size_t flips = 1 + rng.bounded(8);
    for (size_t f = 0; f < flips && !wire.empty(); ++f) {
      wire[rng.bounded(wire.size())] ^=
          static_cast<uint8_t>(1 + rng.bounded(255));
    }
    // Mutation may flip the version nibble or splice the ext chain; the
    // decode/route_peek lockstep must survive arbitrary bytes.
    auto d = packet::decode(std::span<const uint8_t>(wire));
    auto peek = packet::route_peek(std::span<const uint8_t>(wire));
    ASSERT_EQ(d.has_value(), peek.has_value()) << "iter " << iter;
    if (d) {
      EXPECT_EQ(*peek, d->dst_addr());
      volatile uint8_t sink = 0;
      for (uint8_t b : d->l4_payload) sink ^= b;
      (void)sink;
      EXPECT_LE(d->net_header_length(), wire.size());
    }
    (void)packet::verify_checksums(std::span<const uint8_t>(wire));
  }
}

// --- DNS message codec ---

proto::dns::Message random_dns_message(Rng& rng) {
  using namespace proto::dns;
  Message m;
  m.header.id = static_cast<uint16_t>(rng.bounded(65536));
  m.header.qr = rng.chance(0.5);
  m.header.rd = rng.chance(0.5);
  m.header.aa = rng.chance(0.5);
  m.header.rcode = static_cast<Rcode>(rng.bounded(6));
  auto random_name = [&rng]() {
    std::string s;
    size_t labels = 1 + rng.bounded(4);
    for (size_t i = 0; i < labels; ++i) {
      if (i) s += '.';
      s += rng.alnum_string(1 + rng.bounded(12));
    }
    return Name(s);
  };
  size_t nq = 1 + rng.bounded(2);
  for (size_t i = 0; i < nq; ++i)
    m.questions.push_back(
        {random_name(), rng.chance(0.5) ? RecordType::A : RecordType::MX});
  size_t na = rng.bounded(4);
  for (size_t i = 0; i < na; ++i) {
    switch (rng.bounded(4)) {
      case 0:
        m.answers.push_back(ResourceRecord::a(
            random_name(), Ipv4Address(static_cast<uint32_t>(rng.next()))));
        break;
      case 1:
        m.answers.push_back(ResourceRecord::mx(
            random_name(), static_cast<uint16_t>(rng.bounded(100)),
            random_name()));
        break;
      case 2:
        m.answers.push_back(
            ResourceRecord::cname(random_name(), random_name()));
        break;
      default:
        m.answers.push_back(
            ResourceRecord::txt(random_name(), rng.alnum_string(20)));
        break;
    }
  }
  return m;
}

TEST(PacketFuzz, DnsRoundTripOverUdpPreservesStructure) {
  Rng rng(0xD0015);
  for (int iter = 0; iter < 300; ++iter) {
    proto::dns::Message m = random_dns_message(rng);
    // Through the full path: DNS wire → UDP/IP packet → decode both.
    Bytes dns_wire = proto::dns::encode(m);
    packet::Packet p = packet::make_udp(random_addr(rng), random_addr(rng),
                                        5353, 53, dns_wire);
    auto d = packet::decode(p);
    ASSERT_TRUE(d && d->udp);
    auto back = proto::dns::decode(d->l4_payload);
    ASSERT_TRUE(back) << "iter " << iter;
    EXPECT_EQ(back->header.id, m.header.id);
    EXPECT_EQ(back->header.qr, m.header.qr);
    EXPECT_EQ(back->header.rcode, m.header.rcode);
    ASSERT_EQ(back->questions.size(), m.questions.size());
    for (size_t i = 0; i < m.questions.size(); ++i) {
      EXPECT_EQ(back->questions[i].name, m.questions[i].name);
      EXPECT_EQ(back->questions[i].type, m.questions[i].type);
    }
    ASSERT_EQ(back->answers.size(), m.answers.size());
    for (size_t i = 0; i < m.answers.size(); ++i) {
      EXPECT_EQ(back->answers[i].name, m.answers[i].name);
      EXPECT_EQ(back->answers[i].type, m.answers[i].type);
    }
  }
}

TEST(PacketFuzz, MutatedDnsMessagesNeverCrashTheDecoder) {
  Rng rng(0xD0016);
  for (int iter = 0; iter < 1500; ++iter) {
    Bytes wire = proto::dns::encode(random_dns_message(rng));
    size_t flips = 1 + rng.bounded(6);
    for (size_t f = 0; f < flips && !wire.empty(); ++f)
      wire[rng.bounded(wire.size())] ^=
          static_cast<uint8_t>(1 + rng.bounded(255));
    if (rng.chance(0.3) && !wire.empty())
      wire.resize(rng.bounded(wire.size()));
    auto back = proto::dns::decode(std::span<const uint8_t>(wire));
    if (back) {
      // Whatever decoded must be re-encodable without crashing.
      (void)proto::dns::encode(*back);
    }
  }
}

}  // namespace
}  // namespace sm
