// AS-topology generator properties: same-seed determinism, all-pairs
// reachability across ASes, and equivalence of the compiled LPM route
// table with the legacy first-match linear scan.
#include "netsim/asgen.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "netsim/host.hpp"
#include "netsim/router.hpp"
#include "netsim/topology.hpp"
#include "packet/packet.hpp"

namespace sm::netsim {
namespace {

using common::Cidr;
using common::Duration;
using common::Ipv4Address;

AsGenConfig small_config(uint64_t seed = 0xA5) {
  AsGenConfig config;
  config.seed = seed;
  config.as_count = 4;
  config.transit_count = 2;
  config.routers_per_as = 2;
  config.subnets_per_router = 2;
  config.hosts_per_subnet = 4;
  config.extra_peering = 1;
  return config;
}

TEST(AsGen, SameSeedIsByteIdentical) {
  Network net_a;
  Network net_b;
  AsTopology a = AsTopology::generate(net_a, small_config());
  AsTopology b = AsTopology::generate(net_b, small_config());
  EXPECT_EQ(a.describe(), b.describe());
  ASSERT_EQ(a.population(), b.population());
  for (size_t i = 0; i < a.population(); ++i) {
    EXPECT_EQ(a.hosts()[i]->address(), b.hosts()[i]->address());
    EXPECT_EQ(a.hosts()[i]->name(), b.hosts()[i]->name());
  }
}

TEST(AsGen, DifferentSeedsDiffer) {
  Network net_a;
  Network net_b;
  AsTopology a = AsTopology::generate(net_a, small_config(1));
  AsTopology b = AsTopology::generate(net_b, small_config(2));
  EXPECT_NE(a.describe(), b.describe());
}

TEST(AsGen, BlocksAreDisjointAndCoverHosts) {
  Network net;
  AsTopology topo = AsTopology::generate(net, small_config());
  const auto& ases = topo.ases();
  for (size_t i = 0; i < ases.size(); ++i) {
    for (size_t j = i + 1; j < ases.size(); ++j) {
      EXPECT_FALSE(ases[i].block.contains(ases[j].block.network()));
      EXPECT_FALSE(ases[j].block.contains(ases[i].block.network()));
    }
  }
  for (size_t h = 0; h < topo.population(); ++h) {
    size_t as = topo.as_of_host(h);
    EXPECT_TRUE(ases[as].block.contains(topo.hosts()[h]->address()))
        << "host " << h << " outside its AS block";
    EXPECT_GE(h, ases[as].first_host);
    EXPECT_LT(h, ases[as].first_host + ases[as].host_count);
  }
}

TEST(AsGen, EveryHostReachableFromEveryAs) {
  Network net;
  AsTopology topo = AsTopology::generate(net, small_config());
  ASSERT_EQ(topo.population(), 4u * 2u * 2u * 4u);

  // One representative sender per AS sprays a UDP datagram at every other
  // host; every datagram must arrive. This exercises edge /32s, backbone
  // default routes, per-router aggregates, and inter-AS BFS routes.
  std::vector<uint64_t> before(topo.population());
  for (size_t h = 0; h < topo.population(); ++h) {
    before[h] = topo.hosts()[h]->packets_received();
  }
  size_t sent = 0;
  for (const AsInfo& as : topo.ases()) {
    Host* sender = topo.hosts()[as.first_host];
    for (size_t h = 0; h < topo.population(); ++h) {
      Host* dst = topo.hosts()[h];
      if (dst == sender) continue;
      sender->send(packet::make_tcp(sender->address(), dst->address(), 40000,
                                    9, 0x02, 1, 0));
      ++sent;
    }
  }
  net.run_for(Duration::seconds(2));
  uint64_t delivered = 0;
  for (size_t h = 0; h < topo.population(); ++h) {
    delivered += topo.hosts()[h]->packets_received() - before[h];
  }
  EXPECT_EQ(delivered, sent);
}

// Legacy route semantics the compiled table must reproduce: stable sort
// by descending prefix length, first containing match wins (so among
// equal-length prefixes, the earliest-inserted wins).
int reference_lookup(const std::vector<std::pair<Cidr, int>>& routes,
                     Ipv4Address dst, int default_port) {
  int best_len = -1;
  int best_port = default_port;
  for (const auto& [prefix, port] : routes) {
    if (!prefix.contains(dst)) continue;
    if (static_cast<int>(prefix.prefix_len()) > best_len) {
      best_len = prefix.prefix_len();
      best_port = port;
    }
  }
  return best_port;
}

TEST(AsGen, CompiledLpmMatchesLinearScanOnRandomRouteSets) {
  common::Rng rng(0x10F);
  for (int trial = 0; trial < 20; ++trial) {
    Network net;
    Router* router = net.add_router("r");
    std::vector<std::pair<Cidr, int>> routes;
    size_t n_routes = 1 + rng.bounded(40);
    for (size_t i = 0; i < n_routes; ++i) {
      uint8_t len = static_cast<uint8_t>(rng.bounded(33));
      Ipv4Address base(static_cast<uint32_t>(rng.next()));
      Cidr prefix(base, len);
      int port = static_cast<int>(rng.bounded(8));
      routes.emplace_back(prefix, port);
      router->add_route(prefix, port);
    }
    int default_port = rng.chance(0.5) ? -1 : 7;
    router->set_default_route(default_port);

    for (int probe = 0; probe < 2000; ++probe) {
      Ipv4Address dst(static_cast<uint32_t>(rng.next()));
      ASSERT_EQ(router->route_lookup(dst),
                reference_lookup(routes, dst, default_port))
          << "trial " << trial << " dst " << dst.to_string();
    }
    // Boundary probes: prefix edges are where interval-paint bugs live.
    for (const auto& [prefix, port] : routes) {
      (void)port;
      Ipv4Address lo = prefix.network();
      Ipv4Address hi(static_cast<uint32_t>(prefix.network().value() +
                                           prefix.size() - 1));
      for (Ipv4Address dst : {lo, hi}) {
        ASSERT_EQ(router->route_lookup(dst),
                  reference_lookup(routes, dst, default_port));
      }
    }
  }
}

TEST(AsGen, RouteMutationAfterLookupRecompiles) {
  Network net;
  Router* router = net.add_router("r");
  router->add_route(Cidr(Ipv4Address(10, 0, 0, 0), 8), 1);
  EXPECT_EQ(router->route_lookup(Ipv4Address(10, 1, 2, 3)), 1);
  // add_route after a lookup must invalidate the compiled table.
  router->add_route(Cidr(Ipv4Address(10, 1, 0, 0), 16), 2);
  EXPECT_EQ(router->route_lookup(Ipv4Address(10, 1, 2, 3)), 2);
  EXPECT_EQ(router->route_lookup(Ipv4Address(10, 2, 2, 3)), 1);
}

TEST(AsGen, BordersAndLinksAreConsistent) {
  Network net;
  AsTopology topo = AsTopology::generate(net, small_config());
  EXPECT_FALSE(topo.as_links().empty());
  for (auto [x, y] : topo.as_links()) {
    EXPECT_LT(x, y);
    EXPECT_LT(y, topo.ases().size());
  }
  for (size_t i = 0; i < topo.ases().size(); ++i) {
    EXPECT_EQ(topo.border(i), topo.ases()[i].routers.front());
    EXPECT_EQ(topo.ases()[i].routers.size(),
              topo.config().routers_per_as);
  }
}

}  // namespace
}  // namespace sm::netsim
