#include <gtest/gtest.h>

#include "packet/checksum.hpp"
#include "packet/packet.hpp"
#include "packet/print.hpp"

namespace sm::packet {
namespace {

using common::Bytes;
using common::Ipv4Address;

const Ipv4Address kSrc(10, 0, 0, 1);
const Ipv4Address kDst(192, 0, 2, 80);

TEST(Checksum, Rfc1071Example) {
  // Classic example from RFC 1071 §3.
  Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), static_cast<uint16_t>(~0xddf2 & 0xFFFF));
}

TEST(Checksum, OddLengthPadsWithZero) {
  Bytes even{0x12, 0x34, 0xAB, 0x00};
  Bytes odd{0x12, 0x34, 0xAB};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, EmptyIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(MakeTcp, RoundTripsThroughDecode) {
  Bytes payload = common::to_bytes("hello");
  Packet p = make_tcp(kSrc, kDst, 1234, 80,
                      TcpFlags::kSyn | TcpFlags::kAck, 111, 222, payload);
  auto d = decode(p);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->ip.src, kSrc);
  EXPECT_EQ(d->ip.dst, kDst);
  EXPECT_EQ(d->ip.protocol, 6);
  ASSERT_TRUE(d->tcp);
  EXPECT_EQ(d->tcp->src_port, 1234);
  EXPECT_EQ(d->tcp->dst_port, 80);
  EXPECT_EQ(d->tcp->seq, 111u);
  EXPECT_EQ(d->tcp->ack, 222u);
  EXPECT_TRUE(d->tcp->syn());
  EXPECT_TRUE(d->tcp->ack_flag());
  EXPECT_FALSE(d->tcp->rst());
  EXPECT_EQ(common::to_string(d->l4_payload), "hello");
}

TEST(MakeTcp, ChecksumsVerify) {
  Bytes payload = common::to_bytes("data!");
  Packet p = make_tcp(kSrc, kDst, 4000, 443, TcpFlags::kAck, 9, 10, payload);
  EXPECT_TRUE(verify_checksums(p.data()));
}

TEST(MakeTcp, CorruptedPayloadFailsChecksum) {
  Bytes payload = common::to_bytes("data!");
  Packet p = make_tcp(kSrc, kDst, 4000, 443, TcpFlags::kAck, 9, 10, payload);
  p.data().back() ^= 0xFF;
  EXPECT_FALSE(verify_checksums(p.data()));
}

TEST(MakeUdp, RoundTripsThroughDecode) {
  Bytes payload = common::to_bytes("dns-ish");
  Packet p = make_udp(kSrc, kDst, 5353, 53, payload);
  auto d = decode(p);
  ASSERT_TRUE(d);
  ASSERT_TRUE(d->udp);
  EXPECT_EQ(d->udp->src_port, 5353);
  EXPECT_EQ(d->udp->dst_port, 53);
  EXPECT_EQ(d->udp->length, 8 + payload.size());
  EXPECT_EQ(common::to_string(d->l4_payload), "dns-ish");
  EXPECT_TRUE(verify_checksums(p.data()));
}

TEST(MakeUdp, EmptyPayload) {
  Packet p = make_udp(kSrc, kDst, 1, 2, {});
  auto d = decode(p);
  ASSERT_TRUE(d);
  EXPECT_TRUE(d->l4_payload.empty());
  EXPECT_TRUE(verify_checksums(p.data()));
}

TEST(MakeIcmp, EchoRoundTrip) {
  Bytes payload = common::to_bytes("ping");
  Packet p = make_icmp(kSrc, kDst, IcmpHeader::kEchoRequest, 0,
                       (7u << 16) | 1u, payload);
  auto d = decode(p);
  ASSERT_TRUE(d);
  ASSERT_TRUE(d->icmp);
  EXPECT_EQ(d->icmp->type, IcmpHeader::kEchoRequest);
  EXPECT_EQ(d->icmp->rest >> 16, 7u);
  EXPECT_TRUE(verify_checksums(p.data()));
}

TEST(Decode, RejectsTruncated) {
  Packet p = make_tcp(kSrc, kDst, 1, 2, TcpFlags::kSyn, 0, 0);
  Bytes truncated(p.data().begin(), p.data().begin() + 15);
  EXPECT_FALSE(decode(truncated));
}

TEST(Decode, RejectsBadVersion) {
  Packet p = make_udp(kSrc, kDst, 1, 2, {});
  p.data()[0] = 0x65;  // version 6
  EXPECT_FALSE(decode(p.data()));
}

TEST(Decode, RejectsInconsistentLength) {
  Packet p = make_udp(kSrc, kDst, 1, 2, {});
  p.data()[2] = 0xFF;  // total_length way beyond buffer
  p.data()[3] = 0xFF;
  EXPECT_FALSE(decode(p.data()));
}

TEST(Decode, EmptyInput) {
  EXPECT_FALSE(decode(std::span<const uint8_t>{}));
}

TEST(IpOptionsTest, TtlAndDfPropagate) {
  IpOptions opt;
  opt.ttl = 3;
  opt.dont_fragment = false;
  opt.identification = 0x4242;
  Packet p = make_udp(kSrc, kDst, 1, 2, {}, opt);
  auto d = decode(p);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->ip.ttl, 3);
  EXPECT_FALSE(d->ip.dont_fragment);
  EXPECT_EQ(d->ip.identification, 0x4242);
}

TEST(DecrementTtl, DecrementsAndKeepsChecksumValid) {
  Packet p = make_udp(kSrc, kDst, 1, 2, {});
  ASSERT_TRUE(verify_checksums(p.data()));
  ASSERT_TRUE(decrement_ttl(p.data()));
  auto d = decode(p);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->ip.ttl, 63);
  EXPECT_TRUE(verify_checksums(p.data()));
}

TEST(DecrementTtl, StopsAtZero) {
  IpOptions opt;
  opt.ttl = 1;
  Packet p = make_udp(kSrc, kDst, 1, 2, {}, opt);
  ASSERT_TRUE(decrement_ttl(p.data()));  // 1 -> 0
  EXPECT_EQ(p.data()[8], 0);
  EXPECT_FALSE(decrement_ttl(p.data()));  // refuses below 0
}

TEST(DecrementTtl, RejectsShortBuffer) {
  Bytes tiny{1, 2, 3};
  EXPECT_FALSE(decrement_ttl(tiny));
}

// Property sweep: TTL decrement preserves checksum validity for many TTLs.
class TtlSweep : public ::testing::TestWithParam<int> {};

TEST_P(TtlSweep, ChecksumStaysValid) {
  IpOptions opt;
  opt.ttl = static_cast<uint8_t>(GetParam());
  Packet p = make_tcp(kSrc, kDst, 1, 2, TcpFlags::kSyn, 0, 0, {}, opt);
  while (p.data()[8] > 0 && decrement_ttl(p.data())) {
    EXPECT_TRUE(verify_checksums(p.data())) << "ttl=" << int(p.data()[8]);
  }
}

INSTANTIATE_TEST_SUITE_P(VariousTtls, TtlSweep,
                         ::testing::Values(1, 2, 5, 64, 128, 255));

TEST(Reassemble, PreservesHeaderFields) {
  Packet p = make_tcp(kSrc, kDst, 1, 2, TcpFlags::kAck, 5, 6,
                      common::to_bytes("xyz"));
  auto d = decode(p);
  ASSERT_TRUE(d);
  size_t ihl = d->ip.header_length();
  Packet rebuilt = reassemble(
      d->ip, std::span<const uint8_t>(p.data()).subspan(ihl));
  EXPECT_EQ(rebuilt.data(), p.data());
}

TEST(Print, TcpSummary) {
  Packet p = make_tcp(kSrc, kDst, 1234, 80, TcpFlags::kSyn, 42, 0);
  std::string s = p.to_string();
  EXPECT_NE(s.find("10.0.0.1:1234"), std::string::npos);
  EXPECT_NE(s.find("192.0.2.80:80"), std::string::npos);
  EXPECT_NE(s.find("[S]"), std::string::npos);
}

TEST(Print, FlagStrings) {
  EXPECT_EQ(flags_string(TcpFlags::kSyn), "[S]");
  EXPECT_EQ(flags_string(TcpFlags::kSyn | TcpFlags::kAck), "[SA]");
  EXPECT_EQ(flags_string(TcpFlags::kAck), "[.]");
  EXPECT_EQ(flags_string(TcpFlags::kRst), "[R]");
}

TEST(Print, MalformedPacket) {
  Bytes junk{1, 2, 3};
  EXPECT_EQ(summarize(junk), "<malformed packet>");
}

// --- IPv6 builders and normalization (thin units; depth in the fuzz) ---

TEST(Ipv6, TcpBuilderDecodesWithExtChain) {
  common::Ipv6Address src6 = common::map_v6(kSrc);
  common::Ipv6Address dst6 = common::map_v6(kDst);
  Ipv6Options opt;
  opt.hop_limit = 33;
  opt.ext.push_back({static_cast<uint8_t>(IpProto::HopByHop), {1, 2, 3}});
  opt.ext.push_back({static_cast<uint8_t>(IpProto::DestOpts), {}});
  Bytes payload = common::to_bytes("hello v6");
  Packet p = make_tcp6(src6, dst6, 4000, 80, TcpFlags::kSyn, 7, 0, payload,
                       opt);
  auto d = decode(p);
  ASSERT_TRUE(d && d->is_v6() && d->tcp);
  EXPECT_EQ(d->ip6->src, src6);
  EXPECT_EQ(d->ip6->dst, dst6);
  EXPECT_EQ(d->ip6->hop_limit, 33);
  EXPECT_EQ(d->ip6->ext_count, 2u);
  EXPECT_EQ(d->l4_proto(), static_cast<uint8_t>(IpProto::Tcp));
  EXPECT_EQ(common::to_string(d->l4_payload), "hello v6");
  EXPECT_TRUE(verify_checksums(p.data()));
  // Family-agnostic accessors agree with the v6 header.
  EXPECT_EQ(d->src_addr(), common::IpAddress(src6));
  EXPECT_EQ(d->ttl_hops(), 33);
}

TEST(Ipv6, RoutePeekMatchesDecodeDestination) {
  Packet p = make_udp6(common::map_v6(kSrc), common::map_v6(kDst), 1, 2,
                       common::to_bytes("x"));
  auto peek = route_peek(p.data());
  ASSERT_TRUE(peek);
  EXPECT_EQ(*peek, common::IpAddress(common::map_v6(kDst)));
}

TEST(Ipv6, StripExtHeadersNormalizes) {
  Ipv6Options opt;
  opt.ext.push_back({static_cast<uint8_t>(IpProto::HopByHop), {}});
  Packet with_ext = make_tcp6(common::map_v6(kSrc), common::map_v6(kDst),
                              4000, 80, TcpFlags::kAck, 1, 1,
                              common::to_bytes("falun"), opt);
  Packet bare = make_tcp6(common::map_v6(kSrc), common::map_v6(kDst), 4000,
                          80, TcpFlags::kAck, 1, 1,
                          common::to_bytes("falun"));
  ASSERT_TRUE(strip_ext_headers6(with_ext));
  EXPECT_EQ(with_ext.data(), bare.data());
  // Already-bare packets are untouched and report no rewrite.
  EXPECT_FALSE(strip_ext_headers6(bare));
}

TEST(Ipv6, HopLimitDecrementAndSet) {
  Packet p = make_icmp6(common::map_v6(kSrc), common::map_v6(kDst),
                        IcmpHeader::kEchoRequest6, 0, 42);
  ASSERT_TRUE(decrement_ttl(p.data()));
  auto d = decode(p);
  ASSERT_TRUE(d);
  EXPECT_EQ(d->ip6->hop_limit, 63);
  ASSERT_TRUE(set_ttl(p.data(), 5));
  EXPECT_EQ(decode(p)->ip6->hop_limit, 5);
  // v6 has no header checksum to fix; the ICMPv6 one must still verify.
  EXPECT_TRUE(verify_checksums(p.data()));
}

}  // namespace
}  // namespace sm::packet
