// The durable layers under the crash-safe campaign service, bottom-up:
// common/recordio (CRC-framed append-only files and their torn/corrupt
// recovery semantics, proven by truncating at every byte offset and
// flipping every body byte), the checkpoint record codec
// (encode→decode→encode fixpoint, doubles as bit patterns), the
// obs::Registry binary round-trip, and a golden checkpoint fixture that
// pins the on-disk format so old checkpoints stay readable.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "common/recordio.hpp"
#include "obs/metrics.hpp"

using namespace sm;

namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "sm_checkpoint_" + name + "_" +
         std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << bytes;
}

common::Bytes payload_of(std::string_view s) {
  return common::Bytes(s.begin(), s.end());
}

/// A TrialResult with every deterministic field away from its default.
campaign::TrialResult sample_trial(size_t index) {
  campaign::TrialResult t;
  t.index = index;
  t.name = "synthetic/\"quoted\"/overt-http";
  t.report.technique = "overt-http";
  t.report.target = "blocked.example/path";
  t.report.verdict = core::Verdict::BlockedRst;
  t.report.detail = "reset-mid-stream";
  t.report.packets_sent = 17;
  t.report.samples = 5;
  t.report.samples_blocked = 4;
  t.report.attempts = 2;
  t.report.confidence.conclusion = core::Conclusion::Blocked;
  t.report.confidence.trials = 5;
  t.report.confidence.trials_open = 1;
  t.report.confidence.trials_blocked = 4;
  t.report.confidence.trials_silent = 0;
  t.report.confidence.score = 0.8125;  // not exactly representable? it is
  t.risk.technique = "overt-http";
  t.risk.targeted_alerts = 3;
  t.risk.censored_access_alerts = 1;
  t.risk.noise_alerts = 7;
  t.risk.suspicion = 0.3333333333333333;  // NOT exactly representable
  t.risk.evaded = false;
  t.risk.investigated = true;
  t.risk.attribution_probability = 0.75;
  t.sim_elapsed = common::Duration::nanos(62'000'000'123);
  t.provenance_json = "{\"events\":[],\"total\":0}";
  return t;
}

/// A registry exercising all three kinds, labels, and non-integral
/// histogram moments.
void fill_registry(obs::Registry& reg) {
  reg.counter("sm_test_packets_total", {{"dir", "in"}}, "packets")->inc(41);
  reg.counter("sm_test_packets_total", {{"dir", "out"}}, "packets")->inc(7);
  reg.gauge("sm_test_depth", {}, "queue depth")->set(2.718281828459045);
  auto* h = reg.histogram("sm_test_latency", 0.0, 10.0, 5, {}, "latency");
  h->observe(0.1);
  h->observe(3.14159);
  h->observe(99.0);  // clamps to the top bin
}

// --- checkpoint record codec ------------------------------------------

TEST(Checkpoint, TrialRecordRoundTripIsFixpoint) {
  campaign::TrialResult t = sample_trial(42);
  obs::Registry snapshot;
  fill_registry(snapshot);

  common::Bytes first = campaign::encode_trial_record(t, &snapshot);
  campaign::CheckpointMeta meta;
  campaign::DecodedTrial decoded;
  bool is_meta = true;
  campaign::decode_record(first, &meta, &decoded, &is_meta);
  ASSERT_FALSE(is_meta);

  EXPECT_EQ(decoded.result.index, 42u);
  EXPECT_EQ(decoded.result.name, t.name);
  EXPECT_FALSE(decoded.result.failed);
  EXPECT_TRUE(decoded.result.resumed);
  EXPECT_EQ(decoded.result.report.detail, "reset-mid-stream");
  EXPECT_EQ(decoded.result.report.confidence.trials_blocked, 4u);
  EXPECT_EQ(decoded.result.risk.suspicion, t.risk.suspicion);  // bit-exact
  EXPECT_EQ(decoded.result.sim_elapsed.count(), t.sim_elapsed.count());
  EXPECT_EQ(decoded.result.provenance_json, t.provenance_json);
  ASSERT_TRUE(decoded.snapshot);
  EXPECT_EQ(decoded.snapshot->to_json(), snapshot.to_json());

  common::Bytes second =
      campaign::encode_trial_record(decoded.result, decoded.snapshot.get());
  EXPECT_EQ(first, second);
}

TEST(Checkpoint, FailedTrialRecordRoundTrips) {
  campaign::TrialResult t;
  t.index = 7;
  t.name = "synthetic/00007/overt-dns";
  t.failed = true;
  t.error = "probe factory returned null";
  common::Bytes first = campaign::encode_trial_record(t, nullptr);
  campaign::CheckpointMeta meta;
  campaign::DecodedTrial decoded;
  bool is_meta = false;
  campaign::decode_record(first, &meta, &decoded, &is_meta);
  ASSERT_FALSE(is_meta);
  EXPECT_TRUE(decoded.result.failed);
  EXPECT_EQ(decoded.result.error, t.error);
  EXPECT_FALSE(decoded.snapshot);
  EXPECT_EQ(campaign::encode_trial_record(decoded.result, nullptr), first);
}

TEST(Checkpoint, MetaRecordRoundTripsAndMatches) {
  campaign::CheckpointMeta meta;
  meta.campaign_seed = 0xDEADBEEFCAFEF00DULL;
  meta.trial_count = 10000;
  meta.workload_digest = 0x12345678;
  meta.derive_seeds = false;
  common::Bytes rec = campaign::encode_meta_record(meta);
  campaign::CheckpointMeta out;
  campaign::DecodedTrial trial;
  bool is_meta = false;
  campaign::decode_record(rec, &out, &trial, &is_meta);
  ASSERT_TRUE(is_meta);
  EXPECT_TRUE(out.matches(meta));
  meta.trial_count = 9999;
  EXPECT_FALSE(out.matches(meta));
}

TEST(Checkpoint, MalformedPayloadThrowsNotMisreads) {
  common::Bytes junk = {0x07, 0x01, 0xFF};  // unknown kind
  campaign::CheckpointMeta meta;
  campaign::DecodedTrial trial;
  bool is_meta = false;
  EXPECT_THROW(campaign::decode_record(junk, &meta, &trial, &is_meta),
               std::runtime_error);
  // Right kind, truncated body.
  campaign::TrialResult t = sample_trial(1);
  common::Bytes rec = campaign::encode_trial_record(t, nullptr);
  common::Bytes cut(rec.begin(), rec.begin() + rec.size() / 2);
  EXPECT_THROW(campaign::decode_record(cut, &meta, &trial, &is_meta),
               std::runtime_error);
}

// --- registry binary codec --------------------------------------------

TEST(Checkpoint, RegistryCodecPreservesEverySurface) {
  obs::Registry reg;
  fill_registry(reg);
  common::ByteWriter w;
  reg.encode(w);
  common::Bytes bytes = w.take();

  common::ByteReader r(bytes);
  std::unique_ptr<obs::Registry> decoded = obs::Registry::decode(r);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->to_json(), reg.to_json());
  EXPECT_EQ(decoded->to_prometheus(), reg.to_prometheus());
  EXPECT_EQ(decoded->series_count(), reg.series_count());

  // Re-encode fixpoint: exact state (including histogram moments)
  // survived, not a lossy approximation.
  common::ByteWriter w2;
  decoded->encode(w2);
  EXPECT_EQ(w2.data(), bytes);

  // And merging decoded copies behaves like merging originals — the
  // campaign metrics merge runs over decoded snapshots on resume.
  obs::Registry via_original, via_decoded;
  via_original.merge(reg);
  via_original.merge(reg);
  via_decoded.merge(*decoded);
  via_decoded.merge(*decoded);
  EXPECT_EQ(via_original.to_json(), via_decoded.to_json());
}

TEST(Checkpoint, RegistryDecodeRejectsTruncation) {
  obs::Registry reg;
  fill_registry(reg);
  common::ByteWriter w;
  reg.encode(w);
  common::Bytes bytes = w.take();
  for (size_t cut : {size_t{0}, size_t{1}, bytes.size() / 2,
                     bytes.size() - 1}) {
    common::Bytes prefix(bytes.begin(), bytes.begin() + cut);
    common::ByteReader r(prefix);
    EXPECT_THROW(obs::Registry::decode(r), std::runtime_error) << cut;
  }
}

// --- record files: torn and corrupt tails -----------------------------

TEST(RecordFile, TruncationAtEveryByteYieldsCleanPrefixOrNothing) {
  const std::string path = temp_path("trunc");
  std::vector<common::Bytes> payloads = {
      payload_of("alpha"), payload_of(""), payload_of("a longer third record"),
  };
  {
    common::RecordWriter writer;
    ASSERT_TRUE(writer.open(path, 0x1234, 0));
    for (const auto& p : payloads) ASSERT_TRUE(writer.append(p));
  }
  const std::string full = read_file(path);
  ASSERT_GT(full.size(), 8u);

  for (size_t len = 0; len <= full.size(); ++len) {
    write_file(path, full.substr(0, len));
    common::RecordScan scan = common::scan_records(path, 0x1234);
    if (len < 8) {
      // No whole header: structural error or (len==0) an empty-but-
      // present file is torn at the header — either way, zero records.
      EXPECT_TRUE(scan.records.empty()) << len;
      continue;
    }
    ASSERT_TRUE(scan.ok()) << len << ": " << scan.error;
    EXPECT_FALSE(scan.corrupt) << len;  // truncation tears, never corrupts
    // Every recovered record is EXACTLY an original, in order — a
    // truncated file can shorten the list but never alter a record.
    ASSERT_LE(scan.records.size(), payloads.size()) << len;
    for (size_t i = 0; i < scan.records.size(); ++i)
      EXPECT_EQ(scan.records[i], payloads[i]) << len;
    EXPECT_EQ(scan.torn, scan.valid_bytes != len) << len;
    // valid_bytes always marks a resumable clean prefix.
    EXPECT_LE(scan.valid_bytes, len) << len;
  }
  std::remove(path.c_str());
}

TEST(RecordFile, EveryBodyByteFlipIsDetectedNeverMisread) {
  const std::string path = temp_path("flip");
  std::vector<common::Bytes> payloads = {payload_of("first-payload"),
                                         payload_of("second-payload")};
  {
    common::RecordWriter writer;
    ASSERT_TRUE(writer.open(path, 0x1234, 0));
    for (const auto& p : payloads) ASSERT_TRUE(writer.append(p));
  }
  const std::string full = read_file(path);
  for (size_t i = 8; i < full.size(); ++i) {  // body bytes only
    std::string mutated = full;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x5A);
    write_file(path, mutated);
    common::RecordScan scan = common::scan_records(path, 0x1234);
    ASSERT_TRUE(scan.ok()) << i;
    // The flip must cost us the frame it landed in (reported as corrupt
    // or, when it inflates a length field past EOF, torn) — and every
    // record that IS returned must still be byte-exact.
    EXPECT_LT(scan.records.size(), payloads.size()) << i;
    EXPECT_TRUE(scan.corrupt || scan.torn) << i;
    for (size_t k = 0; k < scan.records.size(); ++k)
      EXPECT_EQ(scan.records[k], payloads[k]) << i;
  }
  std::remove(path.c_str());
}

TEST(RecordFile, WriterResumesAfterTornTail) {
  const std::string path = temp_path("resume");
  {
    common::RecordWriter writer;
    ASSERT_TRUE(writer.open(path, 0x1234, 0));
    ASSERT_TRUE(writer.append(payload_of("kept")));
    ASSERT_TRUE(writer.append(payload_of("casualty")));
  }
  // Tear the second frame.
  std::string full = read_file(path);
  write_file(path, full.substr(0, full.size() - 3));
  common::RecordScan scan = common::scan_records(path, 0x1234);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.records.size(), 1u);

  // Reopen at the clean prefix and append; the torn tail is gone.
  {
    common::RecordWriter writer;
    ASSERT_TRUE(writer.open(path, 0x1234,
                            static_cast<int64_t>(scan.valid_bytes)));
    ASSERT_TRUE(writer.append(payload_of("replayed")));
  }
  common::RecordScan again = common::scan_records(path, 0x1234);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.torn);
  ASSERT_EQ(again.records.size(), 2u);
  EXPECT_EQ(again.records[0], payload_of("kept"));
  EXPECT_EQ(again.records[1], payload_of("replayed"));
  std::remove(path.c_str());
}

TEST(RecordFile, FaultBudgetCutsMidFrame) {
  const std::string path = temp_path("fault");
  common::RecordWriter writer;
  ASSERT_TRUE(writer.open(path, 0x1234, 0));
  ASSERT_TRUE(writer.append(payload_of("whole")));
  bool fired = false;
  writer.set_fault_budget(5, [&] { fired = true; });
  EXPECT_FALSE(writer.append(payload_of("this append is cut short")));
  EXPECT_TRUE(fired);
  EXPECT_FALSE(writer.append(payload_of("dead writer refuses")));
  writer.close();

  common::RecordScan scan = common::scan_records(path, 0x1234);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0], payload_of("whole"));
  std::remove(path.c_str());
}

TEST(RecordFile, AppTagMismatchIsStructural) {
  const std::string path = temp_path("tag");
  {
    common::RecordWriter writer;
    ASSERT_TRUE(writer.open(path, 0x1111, 0));
    ASSERT_TRUE(writer.append(payload_of("x")));
  }
  EXPECT_FALSE(common::scan_records(path, 0x2222).ok());
  EXPECT_TRUE(common::scan_records(path, 0x1111).ok());
  EXPECT_TRUE(common::scan_records(path, 0).ok());  // 0 = any tag
  std::remove(path.c_str());
}

// --- checkpoint files -------------------------------------------------

TEST(Checkpoint, FileRefusesForeignCampaign) {
  const std::string path = temp_path("foreign");
  campaign::CheckpointMeta mine;
  mine.campaign_seed = 1;
  mine.trial_count = 4;
  mine.workload_digest = 0xAB;
  {
    campaign::CheckpointFile file;
    file.open(path, campaign::load_checkpoint(path), mine);
    ASSERT_TRUE(file.append(sample_trial(0), nullptr));
  }
  campaign::CheckpointMeta other = mine;
  other.campaign_seed = 2;
  campaign::CheckpointState state = campaign::load_checkpoint(path);
  campaign::CheckpointFile file;
  EXPECT_THROW(file.open(path, state, other), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, DuplicateIndexFirstRecordWins) {
  const std::string path = temp_path("dup");
  campaign::CheckpointMeta meta;
  meta.trial_count = 4;
  {
    campaign::CheckpointFile file;
    file.open(path, campaign::load_checkpoint(path), meta);
    campaign::TrialResult first = sample_trial(2);
    first.report.detail = "the-first-write";
    campaign::TrialResult second = sample_trial(2);
    second.report.detail = "the-racing-write";
    ASSERT_TRUE(file.append(first, nullptr));
    ASSERT_TRUE(file.append(second, nullptr));
  }
  campaign::CheckpointState state = campaign::load_checkpoint(path);
  EXPECT_EQ(state.duplicates, 1u);
  ASSERT_EQ(state.trials.size(), 1u);
  EXPECT_EQ(state.trials.at(2).result.report.detail, "the-first-write");
  std::remove(path.c_str());
}

// --- golden on-disk format --------------------------------------------

std::string golden_path(const std::string& name) {
  return std::string(SM_TEST_DIR) + "/golden/" + name;
}

// Pins the complete checkpoint byte format — recordio framing, meta
// record, trial records with and without snapshot/failure. Old
// checkpoints must outlive code changes: a failure here means a resume
// of a checkpoint written by the previous build would refuse or misread.
TEST(CheckpointGolden, OnDiskFormatIsStable) {
  const std::string path = temp_path("golden");
  campaign::CheckpointMeta meta;
  meta.campaign_seed = 0x5EED0C0FFEEULL;
  meta.trial_count = 3;
  meta.workload_digest = 0xC0DE1234;
  meta.derive_seeds = true;
  {
    campaign::CheckpointFile file;
    file.open(path, campaign::load_checkpoint(path), meta);
    obs::Registry snapshot;
    fill_registry(snapshot);
    ASSERT_TRUE(file.append(sample_trial(0), &snapshot));
    ASSERT_TRUE(file.append(sample_trial(1), nullptr));
    campaign::TrialResult failed;
    failed.index = 2;
    failed.name = "synthetic/00002/overt-dns";
    failed.failed = true;
    failed.error = "probe factory returned null";
    ASSERT_TRUE(file.append(failed, nullptr));
  }
  const std::string actual = read_file(path);
  std::remove(path.c_str());

  const std::string fixture = golden_path("campaign.ckpt");
  if (std::getenv("UPDATE_GOLDEN")) {
    write_file(fixture, actual);
    GTEST_SKIP() << "regenerated " << fixture;
  }
  std::ifstream in(fixture, std::ios::binary);
  ASSERT_TRUE(in) << "missing fixture " << fixture
                  << " (run with UPDATE_GOLDEN=1 to create it)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual)
      << "checkpoint format drifted; a resume of a checkpoint written by "
         "the previous build would break. If intentional, bump the record "
         "version, regenerate with UPDATE_GOLDEN=1, and review.";
}

// The reverse direction: today's decoder reads the checked-in fixture.
TEST(CheckpointGolden, FixtureStillDecodes) {
  if (std::getenv("UPDATE_GOLDEN")) GTEST_SKIP();
  campaign::CheckpointState state =
      campaign::load_checkpoint(golden_path("campaign.ckpt"));
  ASSERT_TRUE(state.exists);
  EXPECT_FALSE(state.torn);
  EXPECT_FALSE(state.corrupt);
  ASSERT_TRUE(state.has_meta);
  EXPECT_EQ(state.meta.campaign_seed, 0x5EED0C0FFEEULL);
  EXPECT_EQ(state.meta.trial_count, 3u);
  ASSERT_EQ(state.trials.size(), 3u);
  EXPECT_EQ(state.trials.at(0).result.report.detail, "reset-mid-stream");
  ASSERT_TRUE(state.trials.at(0).snapshot);
  EXPECT_NE(state.trials.at(0).snapshot->to_json().find("sm_test_latency"),
            std::string::npos);
  EXPECT_TRUE(state.trials.at(2).result.failed);
}

}  // namespace
