// Tests for the simcheck property-based model-checker: generator
// determinism and soundness, scenario serialization, all-oracle
// exploration, -j1 vs -jN byte identity, fault-driven shrinking, and
// permanent replay of the checked-in reproducer corpus.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "simcheck/corpus.hpp"
#include "simcheck/explore.hpp"
#include "simcheck/generate.hpp"
#include "simcheck/json.hpp"
#include "simcheck/runner.hpp"
#include "simcheck/scenario.hpp"
#include "simcheck/shrink.hpp"

using namespace sm;
using namespace sm::simcheck;

namespace {

constexpr uint64_t kSeed = 0x51AC4EC0DEULL;

std::string corpus_dir() { return std::string(SM_TEST_DIR) + "/corpus"; }

}  // namespace

TEST(SimcheckJson, RoundTripsValuesAndRejectsGarbage) {
  auto parsed = Json::parse(
      R"({"a":1,"b":-2.5,"c":"x\"\né","d":[true,false,null],"e":{}})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->get("a")->as_int(), 1);
  EXPECT_DOUBLE_EQ(parsed->get("b")->as_double(), -2.5);
  EXPECT_EQ(parsed->get("c")->as_string(), "x\"\n\xc3\xa9");
  EXPECT_EQ(parsed->get("d")->items().size(), 3u);
  // dump -> parse -> dump is a fixpoint.
  std::string once = parsed->dump();
  auto again = Json::parse(once);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->dump(), once);

  EXPECT_FALSE(Json::parse("{"));
  EXPECT_FALSE(Json::parse("[1,]"));
  EXPECT_FALSE(Json::parse("{} trailing"));
  EXPECT_FALSE(Json::parse("\"unterminated"));
  // Depth bomb must be rejected, not crash.
  EXPECT_FALSE(Json::parse(std::string(200, '[') + std::string(200, ']')));
}

TEST(SimcheckGenerator, IsDeterministicPerSeed) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Scenario a = generate_scenario(seed);
    Scenario b = generate_scenario(seed);
    EXPECT_TRUE(same_scenario(a, b)) << "seed " << seed;
  }
  // Different seeds produce different scenarios at least sometimes.
  size_t distinct = 0;
  Scenario first = generate_scenario(0);
  for (uint64_t seed = 1; seed < 20; ++seed) {
    if (!same_scenario(first, generate_scenario(seed))) ++distinct;
  }
  EXPECT_GT(distinct, 10u);
}

TEST(SimcheckGenerator, SamplesStayInsideTheDecidableRegime) {
  for (uint64_t seed = 0; seed < 300; ++seed) {
    Scenario s = generate_scenario(seed);
    EXPECT_GE(s.neighbor_count, Scenario::kMinNeighbors);
    EXPECT_LE(s.cover_count, s.neighbor_count);
    EXPECT_GE(s.cover_count, s.min_cover());
    EXPECT_GE(s.retry_attempts, 1u);
    EXPECT_GE(s.samples, 1u);
    size_t aimed = std::count_if(s.rules.begin(), s.rules.end(),
                                 [](const CensorRule& r) { return r.aimed; });
    EXPECT_LE(aimed, 1u);
    EXPECT_EQ(s.censored(), aimed == 1);
    if (s.censored()) EXPECT_FALSE(s.expected_verdicts().empty());
    if (s.impair.where != ImpairedSegment::None) {
      EXPECT_LE(s.impair.iid_loss, 0.15);
      EXPECT_LE(s.impair.model.corrupt_rate, 0.02);
      EXPECT_TRUE(s.impair.any());
    }
  }
}

TEST(SimcheckScenario, JsonRoundTrip) {
  for (uint64_t seed = 0; seed < 100; ++seed) {
    Scenario s = generate_scenario(seed);
    auto back = Scenario::from_json(s.to_json());
    ASSERT_TRUE(back.has_value()) << "seed " << seed;
    EXPECT_TRUE(same_scenario(s, *back)) << "seed " << seed;
  }
}

TEST(SimcheckExplore, AllOraclesGreenOnSeededSample) {
  ExploreOptions options;
  options.seed = kSeed;
  options.trials = 40;
  options.threads = 2;
  ExploreResult result = explore(options);
  EXPECT_EQ(result.failed_trials, 0u) << result.log[0];
  for (const Counterexample& ce : result.counterexamples) {
    ADD_FAILURE() << "oracle " << ce.oracle << ": " << ce.detail;
  }
  EXPECT_GT(result.packets_checked, 0u);
}

TEST(SimcheckExplore, TrialLogIsByteIdenticalAcrossThreadCounts) {
  ExploreOptions options;
  options.seed = 0xD15C0;
  options.trials = 24;
  options.threads = 1;
  ExploreResult j1 = explore(options);
  options.threads = 3;
  ExploreResult j3 = explore(options);
  ASSERT_EQ(j1.log.size(), j3.log.size());
  for (size_t i = 0; i < j1.log.size(); ++i) {
    EXPECT_EQ(j1.log[i], j3.log[i]) << "trial " << i;
  }
}

TEST(SimcheckFaults, BrokenVerdictRuleIsCaughtAndShrinksSmall) {
  ExploreOptions options;
  options.seed = kSeed;
  options.trials = 16;
  options.threads = 2;
  options.faults.break_verdict = true;
  ExploreResult result = explore(options);
  ASSERT_FALSE(result.counterexamples.empty())
      << "sabotaged verdict rule escaped the oracles";
  for (const Counterexample& ce : result.counterexamples) {
    EXPECT_EQ(ce.oracle, "O1");
    EXPECT_LE(ce.shrunk.scenario.elements(), 6u);
    // The shrunk scenario still fails, deterministically, twice.
    TrialOutcome once =
        run_scenario(ce.shrunk.scenario, ce.seeds, options.faults);
    TrialOutcome twice =
        run_scenario(ce.shrunk.scenario, ce.seeds, options.faults);
    EXPECT_FALSE(once.ok());
    EXPECT_EQ(once.log_line(0), twice.log_line(0));
  }
}

TEST(SimcheckFaults, TtlOffByOneIsCaughtBySpoofSafetyOracle) {
  ExploreOptions options;
  options.seed = kSeed;
  options.trials = 24;  // enough to sample a stateful-mimicry scenario
  options.threads = 2;
  options.faults.ttl_plus_one = true;
  options.shrink = false;
  ExploreResult result = explore(options);
  ASSERT_FALSE(result.counterexamples.empty());
  for (const Counterexample& ce : result.counterexamples) {
    EXPECT_EQ(ce.oracle, "O3");
    EXPECT_EQ(ce.original.technique, Technique::MimicryStateful);
  }
}

TEST(SimcheckCorpus, EveryCheckedInReproducerReplays) {
  std::vector<std::string> errors;
  std::vector<Reproducer> corpus = load_corpus(corpus_dir(), &errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  ASSERT_FALSE(corpus.empty()) << "no reproducers under " << corpus_dir();
  for (const Reproducer& r : corpus) {
    // With its fault applied, the named oracle must fail...
    TrialOutcome faulty = r.replay(true);
    bool named_oracle_failed = std::any_of(
        faulty.failures.begin(), faulty.failures.end(),
        [&](const Failure& f) { return f.oracle == r.oracle; });
    EXPECT_TRUE(named_oracle_failed)
        << "trial " << r.trial_index << " (" << r.fault << ") no longer fails "
        << r.oracle;
    // ...deterministically...
    TrialOutcome again = r.replay(true);
    EXPECT_EQ(faulty.log_line(r.trial_index), again.log_line(r.trial_index));
    // ...and with the sabotage off, the scenario is healthy.
    if (r.fault != "none") {
      TrialOutcome healthy = r.replay(false);
      EXPECT_TRUE(healthy.ok())
          << "trial " << r.trial_index << " fails without its fault: "
          << (healthy.failures.empty() ? "" : healthy.failures.front().detail);
    }
  }
}

TEST(SimcheckCorpus, ReproducerSerializationRoundTrips) {
  Counterexample ce;
  ce.trial_index = 12;
  ce.oracle = "O1";
  ce.shrunk.scenario = generate_scenario(77);
  Faults faults;
  faults.break_verdict = true;
  Reproducer r =
      Reproducer::from_counterexample(0xDEADBEEFCAFEF00DULL, ce, faults,
                                      "unit-test reproducer");
  auto back = Reproducer::parse(r.to_json_text());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->root_seed, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(back->trial_index, 12u);
  EXPECT_EQ(back->oracle, "O1");
  EXPECT_EQ(back->fault, "break-verdict");
  EXPECT_TRUE(same_scenario(back->scenario, ce.shrunk.scenario));
  // Seeds re-derive identically from (root, trial).
  SeedPack a = r.seeds();
  SeedPack b = back->seeds();
  EXPECT_EQ(a.sav, b.sav);
  EXPECT_EQ(a.generator, b.generator);
}

TEST(SimcheckShrink, PreservesTheFailingOracleAndOnlySimplifies) {
  // Find one break-verdict counterexample and shrink it by hand.
  Faults faults;
  faults.break_verdict = true;
  for (size_t trial = 0; trial < 16; ++trial) {
    SeedPack seeds = SeedPack::derive(kSeed, trial);
    Scenario s = generate_scenario(seeds.generator);
    TrialOutcome outcome = run_scenario(s, seeds, faults);
    if (outcome.ok()) continue;
    ShrinkResult shrunk =
        shrink(s, seeds, faults, outcome.failures.front().oracle);
    EXPECT_LE(shrunk.scenario.elements(), s.elements());
    EXPECT_GT(shrunk.evaluations, 0u);
    TrialOutcome minimal = run_scenario(shrunk.scenario, seeds, faults);
    EXPECT_FALSE(minimal.ok());
    return;
  }
  FAIL() << "no counterexample found in 16 trials";
}
