// IP fragmentation/reassembly unit tests plus the Khattak-style censor
// evasion scenario: keywords split across fragments evade a
// fragment-blind censor and are caught again under virtual
// defragmentation.
#include <gtest/gtest.h>

#include "censor/gfc.hpp"
#include "core/probe.hpp"
#include "netsim/topology.hpp"
#include "packet/checksum.hpp"
#include "packet/fragment.hpp"

namespace sm::packet {
namespace {

using common::Duration;
using common::Ipv4Address;
using common::SimTime;

const Ipv4Address kSrc(10, 0, 0, 1);
const Ipv4Address kDst(192, 0, 2, 80);

Packet big_udp(size_t payload_len, uint16_t id = 77) {
  common::Bytes payload(payload_len);
  for (size_t i = 0; i < payload_len; ++i)
    payload[i] = static_cast<uint8_t>('a' + i % 26);
  IpOptions opt;
  opt.dont_fragment = false;
  opt.identification = id;
  return make_udp(kSrc, kDst, 1111, 2222, payload, opt);
}

TEST(Fragment, SmallPacketUntouched) {
  Packet p = big_udp(100);
  auto frags = fragment(p, 1500);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].data(), p.data());
}

TEST(Fragment, DfPacketNotFragmented) {
  common::Bytes payload(3000, 'x');
  Packet p = make_udp(kSrc, kDst, 1, 2, payload);  // DF set by default
  auto frags = fragment(p, 1500);
  ASSERT_EQ(frags.size(), 1u);
}

TEST(Fragment, SplitsWithAlignedOffsets) {
  Packet p = big_udp(3000);
  auto frags = fragment(p, 1500);
  ASSERT_GE(frags.size(), 3u);
  size_t covered = 0;
  for (size_t i = 0; i < frags.size(); ++i) {
    auto d = decode(frags[i]);
    ASSERT_TRUE(d);
    EXPECT_LE(frags[i].size(), 1500u);
    EXPECT_EQ(d->ip.fragment_offset * 8u, covered);
    EXPECT_EQ(d->ip.more_fragments, i + 1 < frags.size());
    EXPECT_EQ(d->ip.identification, 77);
    covered += d->ip.total_length - d->ip.header_length();
    // Every fragment's own IP checksum is valid.
    EXPECT_EQ(internet_checksum(std::span<const uint8_t>(
                  frags[i].data().data(), d->ip.header_length())),
              0);
  }
  EXPECT_EQ(covered, 3000u + 8u);  // UDP header rides in fragment 0
}

TEST(Reassembler, RoundTripInOrder) {
  Packet p = big_udp(5000);
  auto frags = fragment(p, 1500);
  Reassembler r;
  std::optional<Packet> whole;
  for (const auto& f : frags) {
    whole = r.add(SimTime(0), f.data());
    if (&f != &frags.back()) { EXPECT_FALSE(whole); }
  }
  ASSERT_TRUE(whole);
  EXPECT_EQ(whole->data(), p.data());
  EXPECT_TRUE(verify_checksums(whole->data()));
  EXPECT_EQ(r.pending_datagrams(), 0u);
}

TEST(Reassembler, RoundTripReversedOrder) {
  Packet p = big_udp(4000);
  auto frags = fragment(p, 1000);
  Reassembler r;
  std::optional<Packet> whole;
  for (auto it = frags.rbegin(); it != frags.rend(); ++it)
    whole = r.add(SimTime(0), it->data());
  ASSERT_TRUE(whole);
  EXPECT_EQ(whole->data(), p.data());
}

TEST(Reassembler, NonFragmentPassesThrough) {
  Packet p = big_udp(100);
  Reassembler r;
  auto out = r.add(SimTime(0), p.data());
  ASSERT_TRUE(out);
  EXPECT_EQ(out->data(), p.data());
}

TEST(Reassembler, InterleavedDatagramsKeptApart) {
  Packet a = big_udp(3000, 1);
  Packet b = big_udp(3000, 2);
  auto fa = fragment(a, 1500);
  auto fb = fragment(b, 1500);
  Reassembler r;
  EXPECT_FALSE(r.add(SimTime(0), fa[0].data()));
  EXPECT_FALSE(r.add(SimTime(0), fb[0].data()));
  EXPECT_FALSE(r.add(SimTime(0), fa[1].data()));
  auto whole_a = r.add(SimTime(0), fa[2].data());
  ASSERT_TRUE(whole_a);
  EXPECT_EQ(whole_a->data(), a.data());
  EXPECT_EQ(r.pending_datagrams(), 1u);  // b still incomplete
}

TEST(Reassembler, MissingFragmentNeverCompletes) {
  Packet p = big_udp(3000);
  auto frags = fragment(p, 1500);
  ASSERT_GE(frags.size(), 3u);
  Reassembler r;
  EXPECT_FALSE(r.add(SimTime(0), frags[0].data()));
  EXPECT_FALSE(r.add(SimTime(0), frags[2].data()));  // skip the middle
  EXPECT_EQ(r.pending_datagrams(), 1u);
  EXPECT_GT(r.pending_bytes(), 0u);
}

TEST(Reassembler, ExpiryEvictsStale) {
  Packet p = big_udp(3000);
  auto frags = fragment(p, 1500);
  Reassembler r(Duration::seconds(5));
  r.add(SimTime(0), frags[0].data());
  EXPECT_EQ(r.expire(SimTime(Duration::seconds(10).count())), 1u);
  EXPECT_EQ(r.pending_datagrams(), 0u);
}

TEST(Reassembler, HostDeliversReassembledDatagram) {
  netsim::Network net;
  auto* a = net.add_host("a", kSrc);
  auto* b = net.add_host("b", kDst);
  auto* router = net.add_router("r");
  net.connect(a, router);
  net.connect(b, router);
  std::string received;
  b->udp_bind(2222, [&](const Decoded&, std::span<const uint8_t> payload) {
    received = common::to_string(payload);
  });
  Packet p = big_udp(3000);
  for (auto& f : fragment(p, 1000)) a->send(std::move(f));
  net.run_for(Duration::millis(50));
  EXPECT_EQ(received.size(), 3000u);
  EXPECT_EQ(received.substr(0, 4), "abcd");
}

// --- IPv6 fragmentation (RFC 8200 §4.5) ---

const common::Ipv6Address kSrc6 = common::map_v6(kSrc);
const common::Ipv6Address kDst6 = common::map_v6(kDst);

Packet big_udp6(size_t payload_len) {
  common::Bytes payload(payload_len);
  for (size_t i = 0; i < payload_len; ++i)
    payload[i] = static_cast<uint8_t>('a' + i % 26);
  return make_udp6(kSrc6, kDst6, 1111, 2222, payload);
}

TEST(Fragment6, SplitsWithAlignedOffsetsAndSharedId) {
  Packet p = big_udp6(3000);
  auto frags = fragment6(p, 1280, 0xCAFE);
  ASSERT_GE(frags.size(), 3u);
  size_t covered = 0;
  for (size_t i = 0; i < frags.size(); ++i) {
    auto d = decode(frags[i]);
    ASSERT_TRUE(d && d->is_v6());
    EXPECT_LE(frags[i].size(), 1280u);
    ASSERT_TRUE(d->ip6->has_fragment);
    EXPECT_EQ(d->ip6->fragment_id, 0xCAFEu);
    EXPECT_EQ(d->ip6->fragment_offset * 8u, covered);
    EXPECT_EQ(d->ip6->more_fragments, i + 1 < frags.size());
    covered += frags[i].size() - d->ip6->header_length();
  }
  EXPECT_EQ(covered, 3000u + 8u);  // UDP header rides in fragment 0
}

TEST(Fragment6, SmallPacketUntouched) {
  Packet p = big_udp6(100);
  auto frags = fragment6(p, 1280, 1);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].data(), p.data());
}

TEST(Reassembler6, RoundTripInOrder) {
  Packet p = big_udp6(5000);
  auto frags = fragment6(p, 1280, 7);
  Reassembler r;
  std::optional<Packet> whole;
  for (const auto& f : frags) {
    whole = r.add(SimTime(0), f.data());
    if (&f != &frags.back()) { EXPECT_FALSE(whole); }
  }
  ASSERT_TRUE(whole);
  EXPECT_EQ(whole->data(), p.data());
  EXPECT_TRUE(verify_checksums(whole->data()));
  EXPECT_EQ(r.pending_datagrams(), 0u);
}

TEST(Reassembler6, RoundTripReversedOrder) {
  Packet p = big_udp6(4000);
  auto frags = fragment6(p, 1000, 8);
  Reassembler r;
  std::optional<Packet> whole;
  for (auto it = frags.rbegin(); it != frags.rend(); ++it)
    whole = r.add(SimTime(0), it->data());
  ASSERT_TRUE(whole);
  EXPECT_EQ(whole->data(), p.data());
}

TEST(Reassembler6, OverlappingDuplicateFragmentIsHarmless) {
  Packet p = big_udp6(3000);
  auto frags = fragment6(p, 1280, 9);
  ASSERT_GE(frags.size(), 3u);
  Reassembler r;
  EXPECT_FALSE(r.add(SimTime(0), frags[0].data()));
  EXPECT_FALSE(r.add(SimTime(0), frags[1].data()));
  EXPECT_FALSE(r.add(SimTime(0), frags[1].data()));  // replayed overlap
  auto whole = r.add(SimTime(0), frags[2].data());
  ASSERT_TRUE(whole);
  EXPECT_EQ(whole->data(), p.data());
}

TEST(Reassembler6, InterleavedIdsKeptApart) {
  Packet a = big_udp6(3000);
  Packet b = big_udp6(3000);
  auto fa = fragment6(a, 1280, 1);
  auto fb = fragment6(b, 1280, 2);  // same flow, different fragment id
  Reassembler r;
  EXPECT_FALSE(r.add(SimTime(0), fa[0].data()));
  EXPECT_FALSE(r.add(SimTime(0), fb[0].data()));
  EXPECT_FALSE(r.add(SimTime(0), fa[1].data()));
  auto whole_a = r.add(SimTime(0), fa[2].data());
  ASSERT_TRUE(whole_a);
  EXPECT_EQ(whole_a->data(), a.data());
  EXPECT_EQ(r.pending_datagrams(), 1u);  // b still incomplete
}

TEST(Reassembler6, HostDeliversReassembledV6Datagram) {
  netsim::Network net;
  auto* a = net.add_host("a", kSrc);
  auto* b = net.add_host("b", kDst);
  auto* router = net.add_router("r");
  net.connect(a, router);
  net.connect(b, router);
  std::string received;
  b->udp_bind(2222, [&](const Decoded& d, std::span<const uint8_t> payload) {
    if (d.is_v6()) received = common::to_string(payload);
  });
  Packet p = big_udp6(3000);
  for (auto& f : fragment6(p, 1000, 0x31)) a->send(std::move(f));
  net.run_for(Duration::millis(50));
  EXPECT_EQ(received.size(), 3000u);
  EXPECT_EQ(received.substr(0, 4), "abcd");
}

}  // namespace
}  // namespace sm::packet

namespace sm::core {
namespace {

// --- The evasion scenario ---

/// Sends a keyword-bearing TCP segment from the client, fragmented at
/// the IP layer so no single fragment contains the whole keyword.
void send_fragmented_keyword(Testbed& tb) {
  std::string req = "GET /search?q=falun HTTP/1.1\r\nHost: x\r\n\r\n";
  // Pad so the keyword straddles the first fragment boundary (fragment
  // payloads are 8-byte multiples; IP header 20 + TCP header 20).
  packet::IpOptions opt;
  opt.dont_fragment = false;
  opt.identification = 99;
  packet::Packet p = packet::make_tcp(
      tb.addr().client, tb.addr().web_blocked, 5555, 80,
      packet::TcpFlags::kAck, 1000, 1, common::to_bytes(req), opt);
  // MTU 56: IP(20) + 36 payload bytes per fragment; "falun" sits at
  // payload offset 31..36 of the TCP segment -> split across fragments.
  for (auto& f : packet::fragment(p, 56)) tb.client->send(std::move(f));
}

TEST(FragmentEvasion, FragmentBlindCensorMissesSplitKeyword) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.reassemble_ip_fragments = false;  // historical GFC posture
  Testbed tb(cfg);
  send_fragmented_keyword(tb);
  tb.run_for(common::Duration::millis(100));
  EXPECT_EQ(tb.censor_tap->stats().rst_bursts, 0u);
}

TEST(FragmentEvasion, VirtualDefragmentationCatchesIt) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.reassemble_ip_fragments = true;
  Testbed tb(cfg);
  send_fragmented_keyword(tb);
  tb.run_for(common::Duration::millis(100));
  EXPECT_GE(tb.censor_tap->stats().rst_bursts, 1u);
}

TEST(FragmentEvasion, UnfragmentedKeywordCaughtEitherWay) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  Testbed tb(cfg);
  std::string req = "GET /search?q=falun HTTP/1.1\r\n\r\n";
  tb.client->send(packet::make_tcp(tb.addr().client,
                                   tb.addr().web_blocked, 5555, 80,
                                   packet::TcpFlags::kAck, 1000, 1,
                                   common::to_bytes(req)));
  tb.run_for(common::Duration::millis(100));
  EXPECT_GE(tb.censor_tap->stats().rst_bursts, 1u);
}

// --- The v6 evasion differential ---

/// Sends a keyword-bearing v6 TCP segment, source-fragmented so the
/// keyword straddles a fragment boundary. "falun" sits at TCP-segment
/// bytes 36..40; mtu 88 gives 40-byte fragmentable pieces (88 - 40 fixed
/// - 8 fragment header), so the 'n' lands in fragment 1.
void send_fragmented_keyword6(Testbed& tb) {
  std::string req = "GET /search?qqq=falun HTTP/1.1\r\nHost: x\r\n\r\n";
  packet::Packet p = packet::make_tcp6(
      tb.client->address6(), common::map_v6(tb.addr().web_blocked), 5555, 80,
      packet::TcpFlags::kAck, 1000, 1, common::to_bytes(req));
  for (auto& f : packet::fragment6(p, 88, 0x42)) tb.client->send(std::move(f));
}

TEST(FragmentEvasion, V6FragmentBlindCensorMissesSplitKeyword) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.v6_ext_header_blind = false;  // isolate the fragment window
  cfg.policy.reassemble_ip_fragments = false;
  Testbed tb(cfg);
  send_fragmented_keyword6(tb);
  tb.run_for(common::Duration::millis(100));
  EXPECT_EQ(tb.censor_tap->stats().rst_bursts, 0u);
}

TEST(FragmentEvasion, V6VirtualDefragmentationCatchesIt) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.v6_ext_header_blind = false;
  cfg.policy.reassemble_ip_fragments = true;
  Testbed tb(cfg);
  send_fragmented_keyword6(tb);
  tb.run_for(common::Duration::millis(100));
  EXPECT_GE(tb.censor_tap->stats().rst_bursts, 1u);
}

TEST(FragmentEvasion, V6ExtHeaderBlindnessTrumpsDefragmentation) {
  // With the deployed-DPI default (ext-header blind), the fragment header
  // itself is the evasion: even a defragmenting censor never inspects the
  // pieces, so the keyword passes where the identical v4 split would be
  // caught.
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.reassemble_ip_fragments = true;  // blind gate wins anyway
  Testbed tb(cfg);
  send_fragmented_keyword6(tb);
  tb.run_for(common::Duration::millis(100));
  EXPECT_EQ(tb.censor_tap->stats().rst_bursts, 0u);
  EXPECT_GE(tb.censor_tap->stats().v6_ext_blind_passes, 1u);
}

TEST(FragmentEvasion, V6EndpointStillSeesWhatTheCensorMissed) {
  // The IDS-vs-endpoint differential: the same fragments the blind
  // censor passes reassemble cleanly at the destination host, keyword
  // intact — the measurement-visible consequence of the evasion.
  netsim::Network net;
  auto* a = net.add_host("a", common::Ipv4Address(10, 0, 0, 1));
  auto* b = net.add_host("b", common::Ipv4Address(192, 0, 2, 80));
  auto* router = net.add_router("r");
  net.connect(a, router);
  net.connect(b, router);
  censor::CensorPolicy policy;
  policy.rst_keywords = {"falun"};
  policy.v6_ext_header_blind = false;  // fragment-blind, not ext-blind
  censor::CensorTap censor(policy);
  router->add_tap(&censor);

  std::string received;
  b->udp_bind(2222, [&](const packet::Decoded& d,
                        std::span<const uint8_t> payload) {
    if (d.is_v6()) received = common::to_string(payload);
  });
  std::string keyword_payload = "padpadpadpadpadpadpadpadpadpad falun end";
  packet::Packet p =
      packet::make_udp6(a->address6(), b->address6(), 1111, 2222,
                        common::to_bytes(keyword_payload));
  // 8-byte fragmentable pieces: no fragment holds the whole keyword.
  for (auto& f : packet::fragment6(p, 56, 0x77)) a->send(std::move(f));
  net.run_for(common::Duration::millis(50));

  EXPECT_EQ(censor.stats().rst_packets_injected, 0u);
  EXPECT_NE(received.find("falun"), std::string::npos);
}

}  // namespace
}  // namespace sm::core
