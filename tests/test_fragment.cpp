// IP fragmentation/reassembly unit tests plus the Khattak-style censor
// evasion scenario: keywords split across fragments evade a
// fragment-blind censor and are caught again under virtual
// defragmentation.
#include <gtest/gtest.h>

#include "censor/gfc.hpp"
#include "core/probe.hpp"
#include "netsim/topology.hpp"
#include "packet/checksum.hpp"
#include "packet/fragment.hpp"

namespace sm::packet {
namespace {

using common::Duration;
using common::Ipv4Address;
using common::SimTime;

const Ipv4Address kSrc(10, 0, 0, 1);
const Ipv4Address kDst(192, 0, 2, 80);

Packet big_udp(size_t payload_len, uint16_t id = 77) {
  common::Bytes payload(payload_len);
  for (size_t i = 0; i < payload_len; ++i)
    payload[i] = static_cast<uint8_t>('a' + i % 26);
  IpOptions opt;
  opt.dont_fragment = false;
  opt.identification = id;
  return make_udp(kSrc, kDst, 1111, 2222, payload, opt);
}

TEST(Fragment, SmallPacketUntouched) {
  Packet p = big_udp(100);
  auto frags = fragment(p, 1500);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0].data(), p.data());
}

TEST(Fragment, DfPacketNotFragmented) {
  common::Bytes payload(3000, 'x');
  Packet p = make_udp(kSrc, kDst, 1, 2, payload);  // DF set by default
  auto frags = fragment(p, 1500);
  ASSERT_EQ(frags.size(), 1u);
}

TEST(Fragment, SplitsWithAlignedOffsets) {
  Packet p = big_udp(3000);
  auto frags = fragment(p, 1500);
  ASSERT_GE(frags.size(), 3u);
  size_t covered = 0;
  for (size_t i = 0; i < frags.size(); ++i) {
    auto d = decode(frags[i]);
    ASSERT_TRUE(d);
    EXPECT_LE(frags[i].size(), 1500u);
    EXPECT_EQ(d->ip.fragment_offset * 8u, covered);
    EXPECT_EQ(d->ip.more_fragments, i + 1 < frags.size());
    EXPECT_EQ(d->ip.identification, 77);
    covered += d->ip.total_length - d->ip.header_length();
    // Every fragment's own IP checksum is valid.
    EXPECT_EQ(internet_checksum(std::span<const uint8_t>(
                  frags[i].data().data(), d->ip.header_length())),
              0);
  }
  EXPECT_EQ(covered, 3000u + 8u);  // UDP header rides in fragment 0
}

TEST(Reassembler, RoundTripInOrder) {
  Packet p = big_udp(5000);
  auto frags = fragment(p, 1500);
  Reassembler r;
  std::optional<Packet> whole;
  for (const auto& f : frags) {
    whole = r.add(SimTime(0), f.data());
    if (&f != &frags.back()) { EXPECT_FALSE(whole); }
  }
  ASSERT_TRUE(whole);
  EXPECT_EQ(whole->data(), p.data());
  EXPECT_TRUE(verify_checksums(whole->data()));
  EXPECT_EQ(r.pending_datagrams(), 0u);
}

TEST(Reassembler, RoundTripReversedOrder) {
  Packet p = big_udp(4000);
  auto frags = fragment(p, 1000);
  Reassembler r;
  std::optional<Packet> whole;
  for (auto it = frags.rbegin(); it != frags.rend(); ++it)
    whole = r.add(SimTime(0), it->data());
  ASSERT_TRUE(whole);
  EXPECT_EQ(whole->data(), p.data());
}

TEST(Reassembler, NonFragmentPassesThrough) {
  Packet p = big_udp(100);
  Reassembler r;
  auto out = r.add(SimTime(0), p.data());
  ASSERT_TRUE(out);
  EXPECT_EQ(out->data(), p.data());
}

TEST(Reassembler, InterleavedDatagramsKeptApart) {
  Packet a = big_udp(3000, 1);
  Packet b = big_udp(3000, 2);
  auto fa = fragment(a, 1500);
  auto fb = fragment(b, 1500);
  Reassembler r;
  EXPECT_FALSE(r.add(SimTime(0), fa[0].data()));
  EXPECT_FALSE(r.add(SimTime(0), fb[0].data()));
  EXPECT_FALSE(r.add(SimTime(0), fa[1].data()));
  auto whole_a = r.add(SimTime(0), fa[2].data());
  ASSERT_TRUE(whole_a);
  EXPECT_EQ(whole_a->data(), a.data());
  EXPECT_EQ(r.pending_datagrams(), 1u);  // b still incomplete
}

TEST(Reassembler, MissingFragmentNeverCompletes) {
  Packet p = big_udp(3000);
  auto frags = fragment(p, 1500);
  ASSERT_GE(frags.size(), 3u);
  Reassembler r;
  EXPECT_FALSE(r.add(SimTime(0), frags[0].data()));
  EXPECT_FALSE(r.add(SimTime(0), frags[2].data()));  // skip the middle
  EXPECT_EQ(r.pending_datagrams(), 1u);
  EXPECT_GT(r.pending_bytes(), 0u);
}

TEST(Reassembler, ExpiryEvictsStale) {
  Packet p = big_udp(3000);
  auto frags = fragment(p, 1500);
  Reassembler r(Duration::seconds(5));
  r.add(SimTime(0), frags[0].data());
  EXPECT_EQ(r.expire(SimTime(Duration::seconds(10).count())), 1u);
  EXPECT_EQ(r.pending_datagrams(), 0u);
}

TEST(Reassembler, HostDeliversReassembledDatagram) {
  netsim::Network net;
  auto* a = net.add_host("a", kSrc);
  auto* b = net.add_host("b", kDst);
  auto* router = net.add_router("r");
  net.connect(a, router);
  net.connect(b, router);
  std::string received;
  b->udp_bind(2222, [&](const Decoded&, std::span<const uint8_t> payload) {
    received = common::to_string(payload);
  });
  Packet p = big_udp(3000);
  for (auto& f : fragment(p, 1000)) a->send(std::move(f));
  net.run_for(Duration::millis(50));
  EXPECT_EQ(received.size(), 3000u);
  EXPECT_EQ(received.substr(0, 4), "abcd");
}

}  // namespace
}  // namespace sm::packet

namespace sm::core {
namespace {

// --- The evasion scenario ---

/// Sends a keyword-bearing TCP segment from the client, fragmented at
/// the IP layer so no single fragment contains the whole keyword.
void send_fragmented_keyword(Testbed& tb) {
  std::string req = "GET /search?q=falun HTTP/1.1\r\nHost: x\r\n\r\n";
  // Pad so the keyword straddles the first fragment boundary (fragment
  // payloads are 8-byte multiples; IP header 20 + TCP header 20).
  packet::IpOptions opt;
  opt.dont_fragment = false;
  opt.identification = 99;
  packet::Packet p = packet::make_tcp(
      tb.addr().client, tb.addr().web_blocked, 5555, 80,
      packet::TcpFlags::kAck, 1000, 1, common::to_bytes(req), opt);
  // MTU 56: IP(20) + 36 payload bytes per fragment; "falun" sits at
  // payload offset 31..36 of the TCP segment -> split across fragments.
  for (auto& f : packet::fragment(p, 56)) tb.client->send(std::move(f));
}

TEST(FragmentEvasion, FragmentBlindCensorMissesSplitKeyword) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.reassemble_ip_fragments = false;  // historical GFC posture
  Testbed tb(cfg);
  send_fragmented_keyword(tb);
  tb.run_for(common::Duration::millis(100));
  EXPECT_EQ(tb.censor_tap->stats().rst_bursts, 0u);
}

TEST(FragmentEvasion, VirtualDefragmentationCatchesIt) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  cfg.policy.reassemble_ip_fragments = true;
  Testbed tb(cfg);
  send_fragmented_keyword(tb);
  tb.run_for(common::Duration::millis(100));
  EXPECT_GE(tb.censor_tap->stats().rst_bursts, 1u);
}

TEST(FragmentEvasion, UnfragmentedKeywordCaughtEitherWay) {
  TestbedConfig cfg;
  cfg.policy = censor::gfc_profile();
  Testbed tb(cfg);
  std::string req = "GET /search?q=falun HTTP/1.1\r\n\r\n";
  tb.client->send(packet::make_tcp(tb.addr().client,
                                   tb.addr().web_blocked, 5555, 80,
                                   packet::TcpFlags::kAck, 1000, 1,
                                   common::to_bytes(req)));
  tb.run_for(common::Duration::millis(100));
  EXPECT_GE(tb.censor_tap->stats().rst_bursts, 1u);
}

}  // namespace
}  // namespace sm::core
