// Flyweight background-traffic generator: determinism, wire validity of
// the RFC 1624 template patching, MVR classifier integration, and
// flow-slot recycling through the Pool.
#include "netsim/bgtraffic.hpp"

#include <gtest/gtest.h>

#include <string>

#include "netsim/asgen.hpp"
#include "netsim/router.hpp"
#include "netsim/topology.hpp"
#include "packet/packet.hpp"
#include "surveillance/mvr.hpp"

namespace sm::netsim {
namespace {

using common::Duration;
using common::Ipv4Address;

AsGenConfig small_topo_config() {
  AsGenConfig config;
  config.as_count = 3;
  config.transit_count = 1;
  config.routers_per_as = 2;
  config.subnets_per_router = 2;
  config.hosts_per_subnet = 8;
  return config;
}

BgTrafficConfig small_traffic_config() {
  BgTrafficConfig config;
  config.flows_per_second = 400;
  config.window = Duration::seconds(2);
  config.censored_fraction = 0.05;
  return config;
}

/// Tap that verifies IP + L4 checksums of every forwarded packet —
/// catches any slip in the incremental template patching.
struct ChecksumAuditTap : netsim::Tap {
  uint64_t seen = 0;
  uint64_t bad = 0;
  TapDecision process(const TapContext& ctx, Router&) override {
    ++seen;
    if (!packet::verify_checksums(ctx.pkt.wire())) ++bad;
    return TapDecision::Pass;
  }
};

struct Sim {
  Network net;
  AsTopology topo;
  BgTraffic bg;
  Sim()
      : topo(AsTopology::generate(net, small_topo_config())),
        bg(net, topo, small_traffic_config()) {}
};

TEST(BgTraffic, SameSeedIsDeterministic) {
  auto run = [] {
    Sim sim;
    sim.bg.start();
    sim.net.run_for(Duration::seconds(3));
    const auto& s = sim.bg.stats();
    return std::to_string(s.flows_started) + "," +
           std::to_string(s.flows_finished) + "," +
           std::to_string(s.packets_emitted) + "," +
           std::to_string(s.bytes_emitted) + "," +
           std::to_string(s.flows_web) + "," + std::to_string(s.flows_p2p) +
           "," + std::to_string(s.flows_dns) + "," +
           std::to_string(s.flows_mail) + "," +
           std::to_string(s.flows_censored);
  };
  std::string a = run();
  std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find_first_not_of("0,"), std::string::npos) << a;
}

TEST(BgTraffic, EmitsAllKindsWithValidChecksums) {
  Sim sim;
  ChecksumAuditTap audit;
  for (const AsInfo& as : sim.topo.ases()) {
    as.routers.front()->add_tap(&audit);
  }
  sim.bg.start();
  sim.net.run_for(Duration::seconds(3));

  const auto& s = sim.bg.stats();
  EXPECT_GT(s.flows_started, 400u);
  EXPECT_EQ(s.flows_started, s.flows_finished);
  EXPECT_GT(s.flows_web, 0u);
  EXPECT_GT(s.flows_p2p, 0u);
  EXPECT_GT(s.flows_dns, 0u);
  EXPECT_GT(s.flows_mail, 0u);
  EXPECT_GT(s.flows_censored, 0u);
  EXPECT_GT(audit.seen, 0u);
  EXPECT_EQ(audit.bad, 0u) << audit.bad << " of " << audit.seen
                           << " packets had bad checksums";
  EXPECT_EQ(sim.bg.live_flows(), 0u);
  EXPECT_GT(sim.bg.flow_slots_recycled(), 0u);
}

TEST(BgTraffic, MvrClassifiesTheMix) {
  Sim sim;
  surveillance::MvrTap mvr;
  for (const AsInfo& as : sim.topo.ases()) {
    as.routers.front()->add_tap(&mvr);
  }
  sim.bg.start();
  sim.net.run_for(Duration::seconds(3));

  const auto& stats = mvr.stats();
  EXPECT_GT(stats.packets_seen, 0u);
  // p2p is a discard class: background DHT chatter must be shed.
  EXPECT_GT(stats.bytes_discarded, 0u);
  // Censored-web flows trip policy-violation alerts across the population.
  EXPECT_GT(stats.interesting_alerts, 0u);
  // Bulk-mail signatures land in the noise ledger.
  EXPECT_GT(stats.noise_alerts, 0u);
}

TEST(BgTraffic, OvertProbeIsAttributedMimicryIsNot) {
  Sim sim;
  surveillance::MvrTap mvr;
  for (const AsInfo& as : sim.topo.ases()) {
    as.routers.front()->add_tap(&mvr);
  }
  sim.bg.start();
  Ipv4Address overt = sim.bg.launch_probe(0, /*mimicry=*/false);
  Ipv4Address mimic = sim.bg.launch_probe(1, /*mimicry=*/true);
  sim.net.run_for(Duration::seconds(3));

  // The overt probe carries a measurement-platform fingerprint: the MVR
  // singles it out. The mimicry probe is byte-identical to ordinary
  // censored browsing: it earns the same policy-violation alert as the
  // 1.57% background population — and nothing more.
  EXPECT_GT(mvr.targeted_alerts_for(overt), 0u);
  EXPECT_EQ(mvr.targeted_alerts_for(mimic), 0u);
  EXPECT_GT(mvr.censored_access_alerts_for(mimic), 0u);
}

TEST(BgTraffic, ProbeTrafficIsDeterministicToo) {
  auto run = [] {
    Sim sim;
    sim.bg.start();
    sim.bg.launch_probe(2, false);
    sim.bg.launch_probe(3, true);
    sim.net.run_for(Duration::seconds(3));
    return sim.bg.stats().packets_emitted;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sm::netsim
