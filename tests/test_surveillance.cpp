#include <gtest/gtest.h>

#include "netsim/topology.hpp"
#include "surveillance/analyst.hpp"
#include "surveillance/classify.hpp"
#include "surveillance/mvr.hpp"
#include "surveillance/store.hpp"

namespace sm::surveillance {
namespace {

using common::Duration;
using common::Ipv4Address;
using common::SimTime;
using packet::TcpFlags;

packet::Decoded decode_keep(packet::Packet p, common::Bytes& storage) {
  storage = p.data();
  return *packet::decode(storage);
}

TEST(Classifier, PortClasses) {
  common::Bytes s;
  auto web = decode_keep(packet::make_tcp(Ipv4Address(1, 1, 1, 1),
                                          Ipv4Address(2, 2, 2, 2), 5000, 80,
                                          TcpFlags::kSyn, 0, 0),
                         s);
  EXPECT_EQ(port_class(web), TrafficClass::Web);
  common::Bytes s2;
  auto dns = decode_keep(packet::make_udp(Ipv4Address(1, 1, 1, 1),
                                          Ipv4Address(2, 2, 2, 2), 5000, 53,
                                          common::to_bytes("q")),
                         s2);
  EXPECT_EQ(port_class(dns), TrafficClass::Dns);
  common::Bytes s3;
  auto mail = decode_keep(packet::make_tcp(Ipv4Address(1, 1, 1, 1),
                                           Ipv4Address(2, 2, 2, 2), 5000, 25,
                                           TcpFlags::kSyn, 0, 0),
                          s3);
  EXPECT_EQ(port_class(mail), TrafficClass::Mail);
}

TEST(Classifier, P2pByPortAndPayload) {
  common::Bytes s;
  auto bt_port = decode_keep(
      packet::make_tcp(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                       5000, 6881, TcpFlags::kSyn, 0, 0),
      s);
  EXPECT_TRUE(looks_p2p(bt_port));
  common::Bytes s2;
  auto bt_payload = decode_keep(
      packet::make_tcp(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                       5000, 9999, TcpFlags::kAck, 1, 1,
                       common::to_bytes("\x13"
                                        "BitTorrent protocol")),
      s2);
  EXPECT_TRUE(looks_p2p(bt_payload));
  common::Bytes s3;
  auto plain = decode_keep(
      packet::make_tcp(Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                       5000, 80, TcpFlags::kSyn, 0, 0),
      s3);
  EXPECT_FALSE(looks_p2p(plain));
}

TEST(Classifier, ScanDetectionByFanout) {
  Classifier c(ClassifierConfig{.scan_fanout_threshold = 10,
                                .scan_window = Duration::seconds(10),
                                .ddos_rate_threshold = 1000,
                                .ddos_window = Duration::seconds(10)});
  Ipv4Address scanner(10, 0, 0, 9);
  TrafficClass last = TrafficClass::Other;
  for (int i = 0; i < 12; ++i) {
    common::Bytes s;
    auto pkt = decode_keep(
        packet::make_tcp(scanner, Ipv4Address(198, 18, 0, 80), 40000,
                         static_cast<uint16_t>(100 + i), TcpFlags::kSyn, 0,
                         0),
        s);
    last = c.classify(SimTime(i * 1000), pkt);
  }
  EXPECT_EQ(last, TrafficClass::Scanning);
}

TEST(Classifier, ScanWindowExpires) {
  Classifier c(ClassifierConfig{.scan_fanout_threshold = 5,
                                .scan_window = Duration::seconds(1),
                                .ddos_rate_threshold = 1000,
                                .ddos_window = Duration::seconds(10)});
  Ipv4Address src(10, 0, 0, 9);
  // 4 SYNs, then a long pause, then 4 more: never 5 in one window.
  for (int burst = 0; burst < 2; ++burst) {
    for (int i = 0; i < 4; ++i) {
      common::Bytes s;
      auto pkt = decode_keep(
          packet::make_tcp(src, Ipv4Address(198, 18, 0, 80), 40000,
                           static_cast<uint16_t>(burst * 100 + i),
                           TcpFlags::kSyn, 0, 0),
          s);
      SimTime t(burst * Duration::seconds(10).count() + i);
      EXPECT_NE(c.classify(t, pkt), TrafficClass::Scanning);
    }
  }
}

TEST(Classifier, DdosByRequestRate) {
  Classifier c(ClassifierConfig{.scan_fanout_threshold = 1000,
                                .scan_window = Duration::seconds(10),
                                .ddos_rate_threshold = 20,
                                .ddos_window = Duration::seconds(10)});
  Ipv4Address bot(10, 0, 0, 9);
  Ipv4Address victim(198, 18, 0, 80);
  TrafficClass last = TrafficClass::Other;
  for (int i = 0; i < 25; ++i) {
    common::Bytes s;
    auto pkt = decode_keep(
        packet::make_tcp(bot, victim, 40000, 80, TcpFlags::kAck, 1, 1,
                         common::to_bytes("GET / HTTP/1.1\r\n\r\n")),
        s);
    last = c.classify(SimTime(i * 1000), pkt);
  }
  EXPECT_EQ(last, TrafficClass::DdosLike);
}

TEST(RetentionStoreTest, EvictsBeyondWindow) {
  ContentStore store(Duration::seconds(10));
  for (int i = 0; i < 5; ++i) {
    ContentItem item;
    item.time = SimTime(Duration::seconds(i).count());
    item.bytes = 100;
    store.add(item.time, item, 100);
  }
  EXPECT_EQ(store.count(), 5u);
  EXPECT_EQ(store.bytes(), 500u);
  store.evict(SimTime(Duration::seconds(13).count()));
  // Items at t=0..3 have age >= 10s relative to t=13; only t=4 survives.
  EXPECT_EQ(store.count(), 1u);
  EXPECT_EQ(store.bytes(), 100u);
}

TEST(RetentionStoreTest, ZeroAgeSurvives) {
  MetadataStore store(Duration::days(30));
  MetadataItem item;
  item.time = SimTime(0);
  store.add(SimTime(0), item, 64);
  store.evict(SimTime(0));
  EXPECT_EQ(store.count(), 1u);
}

TEST(Analyst, SuspicionScoringAndThreshold) {
  Analyst analyst(AnalystConfig{.weight_interesting = 10.0,
                                .weight_censored_touch = 0.1,
                                .weight_content_mb = 0.5,
                                .investigation_threshold = 10.0});
  Ipv4Address user(10, 0, 0, 5);
  EXPECT_FALSE(analyst.would_investigate(user));
  analyst.record_interesting_alert(SimTime(0), user, /*priority=*/1);
  EXPECT_TRUE(analyst.would_investigate(user));
  EXPECT_DOUBLE_EQ(analyst.suspicion(user), 10.0);
}

TEST(Analyst, CensoredTouchesBarelyScore) {
  // The Syria insight: 1.57% of everyone touches censored content, so a
  // single touch cannot make anyone investigable.
  Analyst analyst;
  Ipv4Address user(10, 0, 0, 5);
  for (int i = 0; i < 50; ++i)
    analyst.record_censored_touch(SimTime(i), user);
  EXPECT_FALSE(analyst.would_investigate(user));
  EXPECT_EQ(analyst.dossier(user)->censored_touches, 50u);
}

TEST(Analyst, NoiseAlertsNeverScore) {
  Analyst analyst;
  Ipv4Address user(10, 0, 0, 5);
  for (int i = 0; i < 1000; ++i)
    analyst.record_noise_alert(SimTime(i), user);
  EXPECT_DOUBLE_EQ(analyst.suspicion(user), 0.0);
  EXPECT_EQ(analyst.dossier(user)->noise_alerts, 1000u);
}

TEST(Analyst, PriorityScalesScore) {
  Analyst analyst;
  Ipv4Address hi(10, 0, 0, 1), lo(10, 0, 0, 2);
  analyst.record_interesting_alert(SimTime(0), hi, 1);
  analyst.record_interesting_alert(SimTime(0), lo, 4);
  EXPECT_GT(analyst.suspicion(hi), analyst.suspicion(lo));
}

TEST(Analyst, TopSuspectsSorted) {
  Analyst analyst;
  analyst.record_interesting_alert(SimTime(0), Ipv4Address(10, 0, 0, 1), 2);
  analyst.record_interesting_alert(SimTime(0), Ipv4Address(10, 0, 0, 2), 1);
  analyst.record_interesting_alert(SimTime(0), Ipv4Address(10, 0, 0, 2), 1);
  auto top = analyst.top_suspects(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].user, Ipv4Address(10, 0, 0, 2));
}

TEST(Rules, CommunityRulesetHasNoiseAndTargeted) {
  auto rules = community_ruleset();
  bool has_noise = false, has_targeted = false;
  for (const auto& r : rules) {
    if (noise_classtypes().count(r.classtype)) has_noise = true;
    if (r.classtype == "measurement-tool") has_targeted = true;
  }
  EXPECT_TRUE(has_noise);
  EXPECT_TRUE(has_targeted);
}

// --- MVR pipeline over a small network ---

class MvrNetTest : public ::testing::Test {
 protected:
  MvrNetTest() {
    client_ = net_.add_host("c", Ipv4Address(10, 1, 1, 10));
    server_ = net_.add_host("s", Ipv4Address(198, 18, 0, 80));
    router_ = net_.add_router("r");
    net_.connect(client_, router_);
    net_.connect(server_, router_);
    MvrConfig cfg;
    cfg.content_retention_fraction = 0.5;  // amplified for small tests
    // Raise volume-heuristic thresholds: these unit tests direct bursts
    // at one server and must not trip the scan/ddos classifiers.
    cfg.classifier.ddos_rate_threshold = 100000;
    cfg.classifier.scan_fanout_threshold = 100000;
    mvr_ = std::make_unique<MvrTap>(cfg);
    router_->add_tap(mvr_.get());
  }
  netsim::Network net_;
  netsim::Host* client_;
  netsim::Host* server_;
  netsim::Router* router_;
  std::unique_ptr<MvrTap> mvr_;
};

TEST_F(MvrNetTest, MetadataAlwaysRecorded) {
  client_->send_udp(server_->address(), 1000, 80, common::to_bytes("x"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(mvr_->metadata_store().count(), 1u);
  EXPECT_EQ(mvr_->stats().packets_seen, 1u);
}

TEST_F(MvrNetTest, P2pBytesDiscarded) {
  common::Bytes payload = common::to_bytes("d1:ad2:id20:xxxxxxxxxxxxxxxx");
  for (int i = 0; i < 20; ++i)
    client_->send_udp(server_->address(), 6881, 6881, payload);
  net_.run_for(Duration::millis(100));
  EXPECT_GT(mvr_->stats().bytes_discarded, 0u);
  EXPECT_GT(mvr_->stats().bytes_by_class.at(TrafficClass::P2p), 0u);
}

TEST_F(MvrNetTest, MeasurementSignatureIsInterestingAlert) {
  // A TCP segment carrying an overt platform fingerprint.
  client_->send(packet::make_tcp(
      client_->address(), server_->address(), 4000, 80, TcpFlags::kAck, 1,
      1, common::to_bytes("GET / HTTP/1.1\r\nUser-Agent: OONI-Probe\r\n")));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(mvr_->interesting_alerts_for(client_->address()), 1u);
  EXPECT_GT(mvr_->analyst().suspicion(client_->address()), 0.0);
  EXPECT_EQ(mvr_->alert_store().count(), 1u);
}

TEST_F(MvrNetTest, SpamSignatureIsNoise) {
  client_->send(packet::make_tcp(
      client_->address(), server_->address(), 4000, 25, TcpFlags::kAck, 1,
      1, common::to_bytes("MAIL FROM:<spam@bulk.example>\r\n")));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(mvr_->noise_alerts_for(client_->address()), 1u);
  EXPECT_EQ(mvr_->interesting_alerts_for(client_->address()), 0u);
  EXPECT_DOUBLE_EQ(mvr_->analyst().suspicion(client_->address()), 0.0);
}

TEST_F(MvrNetTest, RetentionFractionRoughlyHolds) {
  // Web traffic (retained class) sampled at the configured fraction.
  for (int i = 0; i < 400; ++i) {
    client_->send(packet::make_tcp(client_->address(), server_->address(),
                                   static_cast<uint16_t>(10000 + i), 8080,
                                   TcpFlags::kAck, 1, 1,
                                   common::to_bytes("payload")));
  }
  net_.run_for(Duration::seconds(1));
  double fraction = mvr_->retained_fraction();
  EXPECT_NEAR(fraction, 0.5, 0.12);
}

TEST_F(MvrNetTest, PassiveTapNeverDrops) {
  client_->send_udp(server_->address(), 1, 80, common::to_bytes("x"));
  net_.run_for(Duration::millis(10));
  EXPECT_EQ(router_->counters().dropped_by_tap, 0u);
  EXPECT_EQ(router_->counters().forwarded, 1u);
}

}  // namespace
}  // namespace sm::surveillance
