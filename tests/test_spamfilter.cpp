#include <gtest/gtest.h>

#include "spamfilter/corpus.hpp"
#include "spamfilter/scorer.hpp"

namespace sm::spamfilter {
namespace {

TEST(Email, ParsesHeadersAndBody) {
  Email e = Email::parse(
      "From: a@b\r\nSubject: Hi there\r\nDate: today\r\n\r\nbody text");
  EXPECT_EQ(e.header("From"), "a@b");
  EXPECT_EQ(e.subject(), "Hi there");
  EXPECT_EQ(e.body, "body text");
}

TEST(Email, HeaderLookupCaseInsensitive) {
  Email e = Email::parse("SUBJECT: x\r\n\r\n");
  EXPECT_EQ(e.header("subject"), "x");
  EXPECT_EQ(e.header("missing"), "");
}

TEST(Email, HandlesLfOnlySeparator) {
  Email e = Email::parse("Subject: x\n\nbody");
  EXPECT_EQ(e.subject(), "x");
  EXPECT_EQ(e.body, "body");
}

TEST(Email, NoBody) {
  Email e = Email::parse("Subject: only headers");
  EXPECT_EQ(e.subject(), "only headers");
  EXPECT_TRUE(e.body.empty());
}

TEST(Scorer, SpamVocabularyScoresHigh) {
  Scorer scorer;
  auto report = scorer.score_raw(
      "From: x9@spam.example\r\n"
      "Subject: FREE MONEY - CHEAP MEDS NO PRESCRIPTION!!\r\n"
      "\r\n"
      "Buy viagra and cialis at our online pharmacy. Click here "
      "http://pills.example.ru/ now! Act now, limited time!\r\n");
  EXPECT_GT(report.score, 80.0);
  EXPECT_TRUE(report.is_spam());
  EXPECT_FALSE(report.components.empty());
}

TEST(Scorer, HamScoresLow) {
  Scorer scorer;
  auto report = scorer.score_raw(
      "From: colleague@work.example\r\n"
      "Subject: Meeting notes\r\n"
      "Date: Mon, 16 Nov 2015 10:00:00 -0500\r\n"
      "Message-ID: <abc@work.example>\r\n"
      "\r\n"
      "Hi, attached are the notes from today's sync. Best, Alex\r\n");
  EXPECT_LT(report.score, 20.0);
  EXPECT_FALSE(report.is_spam());
}

TEST(Scorer, MissingHeadersAddPoints) {
  Scorer scorer;
  auto with = scorer.score_raw(
      "From: a@b\r\nSubject: x\r\nDate: d\r\nMessage-ID: <m@b>\r\n\r\nhi");
  auto without = scorer.score_raw("From: a@b\r\nSubject: x\r\n\r\nhi");
  EXPECT_GT(without.raw, with.raw);
}

TEST(Scorer, AllCapsSubjectFlagged) {
  Scorer scorer;
  auto caps = scorer.score_raw("Subject: BUY THIS PRODUCT TODAY\r\n\r\nx");
  bool found = false;
  for (const auto& c : caps.components)
    if (c.name == "SUBJECT_ALL_CAPS") found = true;
  EXPECT_TRUE(found);
}

TEST(Scorer, ScoreWithinScale) {
  Scorer scorer;
  auto low = scorer.score_raw("Subject: hi\r\nDate: d\r\nMessage-ID: <m>"
                              "\r\n\r\nshort note");
  auto high = scorer.score_raw(
      "Subject: FREE MONEY LOTTERY WINNER!!\r\n\r\n"
      "viagra cialis pharmacy casino rolex nigerian prince wire transfer "
      "make money fast work from home no prescription cheap meds "
      "100% free click here act now limited time weight loss enlarge");
  EXPECT_GE(low.score, 0.0);
  EXPECT_LE(high.score, 100.0);
  EXPECT_GT(high.score, 95.0);
}

TEST(Corpus, SpamMeasurementEmailsScoreAsSpam) {
  // Figure 2's premise: every spam-cloaked measurement should classify
  // as spam.
  Scorer scorer;
  common::Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    std::string raw = make_spam_measurement_email(rng, "blocked.example");
    auto report = scorer.score_raw(raw);
    EXPECT_GT(report.score, 50.0) << raw;
  }
}

TEST(Corpus, HamEmailsScoreAsHam) {
  Scorer scorer;
  common::Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    std::string raw = make_ham_email(rng, "open.example");
    auto report = scorer.score_raw(raw);
    EXPECT_LT(report.score, 50.0) << raw;
  }
}

TEST(Corpus, MessagesAddressTheMeasuredDomain) {
  common::Rng rng(44);
  std::string raw = make_spam_measurement_email(rng, "target.example");
  EXPECT_NE(raw.find("postmaster@target.example"), std::string::npos);
}

TEST(Corpus, GeneratedMessagesVary) {
  common::Rng rng(45);
  std::string a = make_spam_measurement_email(rng, "d.example");
  std::string b = make_spam_measurement_email(rng, "d.example");
  EXPECT_NE(a, b);
}

// Parameterized: separation holds across corpus seeds.
class SeparationSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeparationSweep, SpamAlwaysAboveHam) {
  Scorer scorer;
  common::Rng rng(GetParam());
  double min_spam = 100.0, max_ham = 0.0;
  for (int i = 0; i < 20; ++i) {
    min_spam = std::min(
        min_spam,
        scorer.score_raw(make_spam_measurement_email(rng, "x.example"))
            .score);
    max_ham = std::max(
        max_ham, scorer.score_raw(make_ham_email(rng, "x.example")).score);
  }
  EXPECT_GT(min_spam, max_ham);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeparationSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sm::spamfilter
