// End-to-end scenarios on the full testbed: the paper's evaluation logic
// (§3.2) — each technique must be *accurate* (detect the blocking the
// censor is configured to do) and *evasive* (leave no targeted alert in
// the MVR), while the overt baseline is accurate but NOT evasive.
#include <gtest/gtest.h>

#include "core/background.hpp"
#include "core/ddos.hpp"
#include "core/mimicry.hpp"
#include "core/overt.hpp"
#include "core/probe.hpp"
#include "core/risk.hpp"
#include "core/scan.hpp"
#include "core/spam.hpp"

namespace sm::core {
namespace {

TestbedConfig blocked_ip_config() {
  TestbedConfig cfg;
  TestbedAddresses addr;
  cfg.policy = censor::gfc_profile();
  cfg.policy.blocked_ips.push_back(addr.web_blocked);
  cfg.policy.blocked_ips.push_back(addr.mail_blocked);
  return cfg;
}

TEST(Integration, OvertHttpDetectsKeywordRstButIsLogged) {
  Testbed tb;  // GFC profile: keyword RST on "falun"/"tiananmen"
  OvertHttpProbe probe(tb, {.domain = "blocked.example", .path = "/",
                            .user_agent = "OONI-Probe/2.0"});
  ProbeReport report = run_probe(tb, probe);
  // The blocked site's page contains "falun": the censor RSTs the
  // response stream mid-flight.
  EXPECT_EQ(report.verdict, Verdict::BlockedRst) << report.to_string();
  // And the overt platform fingerprint was logged by the MVR.
  RiskReport risk = assess_risk(tb, "overt-http");
  EXPECT_FALSE(risk.evaded) << risk.to_string();
  EXPECT_GT(risk.targeted_alerts, 0u);
}

TEST(Integration, OvertHttpReachesOpenSite) {
  Testbed tb;
  OvertHttpProbe probe(tb, {.domain = "open.example", .path = "/",
                            .user_agent = "Mozilla/5.0"});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable) << report.to_string();
}

TEST(Integration, OvertDnsSeesGfcForgery) {
  Testbed tb;
  OvertDnsProbe probe(tb, {.domain = "twitter.com"});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedDnsForgery) << report.to_string();
}

TEST(Integration, ScanDetectsIpBlockingAndEvades) {
  Testbed tb(blocked_ip_config());
  ScanOptions opts;
  opts.target = tb.addr().web_blocked;
  opts.ports = top_tcp_ports(50);
  opts.expected_open = {80};
  ScanProbe probe(tb, opts);
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedTimeout) << report.to_string();

  RiskReport risk = assess_risk(tb, "scan");
  EXPECT_TRUE(risk.evaded) << risk.to_string();
  EXPECT_FALSE(risk.investigated);
}

TEST(Integration, ScanFindsOpenSiteReachable) {
  Testbed tb;
  ScanOptions opts;
  opts.target = tb.addr().web_open;
  opts.ports = top_tcp_ports(50);
  opts.expected_open = {80};
  ScanProbe probe(tb, opts);
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable) << report.to_string();
  EXPECT_EQ(probe.port_states().at(80), PortState::Open);
}

TEST(Integration, SpamProbeSeesDnsForgeryForMxOfBlockedDomain) {
  Testbed tb;  // GFC forges twitter.com (A and MX)
  SpamProbe probe(tb, {.domain = "twitter.com"});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedDnsForgery) << report.to_string();
  RiskReport risk = assess_risk(tb, "spam");
  EXPECT_TRUE(risk.evaded) << risk.to_string();
}

TEST(Integration, SpamProbeDeliversToOpenDomainAndEvades) {
  Testbed tb;
  SpamProbe probe(tb, {.domain = "open.example"});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable) << report.to_string();
  EXPECT_EQ(tb.smtp_open->message_count(), 1u);
  RiskReport risk = assess_risk(tb, "spam");
  EXPECT_TRUE(risk.evaded) << risk.to_string();
  // The spam signature fired as a *noise* alert (seen, then discarded).
  EXPECT_GT(risk.noise_alerts, 0u);
}

TEST(Integration, SpamProbeSeesIpBlockOnMailServer) {
  Testbed tb(blocked_ip_config());
  SpamProbe probe(tb, {.domain = "blocked.example"});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedTimeout) << report.to_string();
}

TEST(Integration, DdosProbeSamplesKeywordCensorship) {
  Testbed tb;
  DdosProbe probe(tb, {.domain = "blocked.example", .requests = 10});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedRst) << report.to_string();
  EXPECT_EQ(probe.sample_verdicts().size(), 10u);
  RiskReport risk = assess_risk(tb, "ddos");
  EXPECT_TRUE(risk.evaded) << risk.to_string();
}

TEST(Integration, DdosProbeOnOpenSiteReachable) {
  Testbed tb;
  DdosProbe probe(tb, {.domain = "open.example", .requests = 10});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable) << report.to_string();
}

TEST(Integration, StatelessMimicryMeasuresDnsForgeryWithCover) {
  Testbed tb;
  StatelessDnsMimicryProbe probe(tb, {.domain = "youtube.com",
                                      .cover_count = 10});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::BlockedDnsForgery) << report.to_string();
  EXPECT_EQ(probe.cover_sent(), 10u);
  // The DNS server saw queries "from" many hosts.
  EXPECT_GE(tb.dns_server->queries_served(), 10u);
}

TEST(Integration, StatefulMimicryDetectsKeywordAndCoverCompletes) {
  Testbed tb;
  StatefulMimicryProbe probe(tb, {.path = "/search?q=falun",
                                  .cover_flows = 8});
  ProbeReport report = run_probe(tb, probe);
  // "falun" in the GET triggers the keyword censor: RST.
  EXPECT_EQ(report.verdict, Verdict::BlockedRst) << report.to_string();
  EXPECT_EQ(probe.cover_flows_started(), 8u);
}

TEST(Integration, StatefulMimicryInnocuousPathCompletes) {
  Testbed tb;
  StatefulMimicryProbe probe(tb, {.path = "/search?q=weather",
                                  .cover_flows = 5});
  ProbeReport report = run_probe(tb, probe);
  EXPECT_EQ(report.verdict, Verdict::Reachable) << report.to_string();
}

TEST(Integration, CoverTrafficConfusesAttribution) {
  Testbed tb;
  // With cover, suspicion should be spread across the AS: attribution
  // probability for the client stays near uniform.
  StatelessDnsMimicryProbe probe(tb, {.domain = "youtube.com",
                                      .cover_count = 15});
  run_probe(tb, probe);
  RiskReport risk = assess_risk(tb, "mimicry-dns");
  EXPECT_TRUE(risk.evaded) << risk.to_string();
  size_t as_size = tb.client_as_addresses().size();
  EXPECT_LE(risk.attribution_probability, 2.0 / static_cast<double>(as_size))
      << risk.to_string();
}

TEST(Integration, BackgroundTrafficRunsAndMvrReduces) {
  Testbed tb;
  BackgroundTraffic bg(tb);
  bg.schedule(common::Duration::seconds(20));
  tb.run_for(common::Duration::seconds(25));
  const auto& stats = tb.mvr->stats();
  EXPECT_GT(stats.packets_seen, 100u);
  // MVR must discard the p2p bulk.
  EXPECT_GT(stats.bytes_discarded, 0u);
  // Content retention is sampled (well under half of seen bytes).
  EXPECT_LT(stats.bytes_content_retained, stats.bytes_seen / 2);
}

TEST(Integration, CensorStateStaysSmall) {
  // §2.1: censorship systems keep only flow-reassembly state.
  Testbed tb;
  BackgroundTraffic bg(tb);
  bg.schedule(common::Duration::seconds(10));
  tb.run_for(common::Duration::seconds(12));
  // Bounded by stream caps: every flow holds at most 2*16 KiB.
  size_t flows = tb.censor_tap->engine().flows().flow_count();
  EXPECT_LE(tb.censor_tap->state_bytes(), flows * 2 * 16 * 1024);
}

}  // namespace
}  // namespace sm::core
