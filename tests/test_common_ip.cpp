#include <gtest/gtest.h>

#include "common/ip.hpp"

namespace sm::common {
namespace {

TEST(Ipv4Address, ParseValid) {
  auto a = Ipv4Address::parse("192.0.2.1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->value(), 0xC0000201u);
  EXPECT_EQ(a->to_string(), "192.0.2.1");
}

TEST(Ipv4Address, ParseBoundaries) {
  EXPECT_TRUE(Ipv4Address::parse("0.0.0.0"));
  EXPECT_TRUE(Ipv4Address::parse("255.255.255.255"));
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.256"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4x"));
  EXPECT_FALSE(Ipv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(Ipv4Address::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Address::parse(" 1.2.3.4"));
}

TEST(Ipv4Address, ByteRoundTrip) {
  Ipv4Address a(10, 20, 30, 40);
  auto bytes = a.to_bytes();
  EXPECT_EQ(bytes[0], 10);
  EXPECT_EQ(bytes[3], 40);
  EXPECT_EQ(Ipv4Address::from_bytes(bytes), a);
}

TEST(Ipv4Address, Classification) {
  EXPECT_TRUE(Ipv4Address(10, 0, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 16, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(172, 31, 255, 255).is_private());
  EXPECT_FALSE(Ipv4Address(172, 32, 0, 1).is_private());
  EXPECT_TRUE(Ipv4Address(192, 168, 1, 1).is_private());
  EXPECT_FALSE(Ipv4Address(192, 0, 2, 1).is_private());
  EXPECT_TRUE(Ipv4Address(127, 0, 0, 1).is_loopback());
  EXPECT_TRUE(Ipv4Address(224, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Ipv4Address(255, 255, 255, 255).is_broadcast());
  EXPECT_TRUE(Ipv4Address().is_unspecified());
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(1, 0, 0, 0), Ipv4Address(2, 0, 0, 0));
  EXPECT_EQ(Ipv4Address(1, 2, 3, 4), Ipv4Address(1, 2, 3, 4));
}

TEST(MacAddress, ParseAndFormat) {
  auto m = MacAddress::parse("02:00:aa:bb:cc:dd");
  ASSERT_TRUE(m);
  EXPECT_EQ(m->to_string(), "02:00:aa:bb:cc:dd");
  EXPECT_TRUE(MacAddress::parse("02-00-AA-BB-CC-DD"));
  EXPECT_FALSE(MacAddress::parse("02:00:aa:bb:cc"));
  EXPECT_FALSE(MacAddress::parse("02:00:aa:bb:cc:zz"));
}

TEST(MacAddress, Broadcast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_FALSE(MacAddress::from_host_id(7).is_broadcast());
}

TEST(MacAddress, FromHostIdUnique) {
  EXPECT_NE(MacAddress::from_host_id(1), MacAddress::from_host_id(2));
}

TEST(Cidr, ParseAndContains) {
  auto c = Cidr::parse("10.1.0.0/16");
  ASSERT_TRUE(c);
  EXPECT_TRUE(c->contains(Ipv4Address(10, 1, 2, 3)));
  EXPECT_FALSE(c->contains(Ipv4Address(10, 2, 0, 0)));
  EXPECT_EQ(c->to_string(), "10.1.0.0/16");
}

TEST(Cidr, MasksHostBits) {
  Cidr c(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_EQ(c.network(), Ipv4Address(10, 1, 0, 0));
}

TEST(Cidr, SlashZeroContainsEverything) {
  Cidr c(Ipv4Address(), 0);
  EXPECT_TRUE(c.contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(c.contains(Ipv4Address(0, 0, 0, 1)));
}

TEST(Cidr, Slash32IsExact) {
  Cidr c(Ipv4Address(198, 18, 0, 80), 32);
  EXPECT_TRUE(c.contains(Ipv4Address(198, 18, 0, 80)));
  EXPECT_FALSE(c.contains(Ipv4Address(198, 18, 0, 81)));
  EXPECT_EQ(c.size(), 1u);
}

TEST(Cidr, SizeAndAddressAt) {
  Cidr c(Ipv4Address(10, 0, 0, 0), 24);
  EXPECT_EQ(c.size(), 256u);
  EXPECT_EQ(c.address_at(0), Ipv4Address(10, 0, 0, 0));
  EXPECT_EQ(c.address_at(255), Ipv4Address(10, 0, 0, 255));
}

TEST(Cidr, NestedContains) {
  Cidr outer(Ipv4Address(10, 0, 0, 0), 8);
  Cidr inner(Ipv4Address(10, 5, 0, 0), 16);
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
}

TEST(Cidr, ParseRejectsMalformed) {
  EXPECT_FALSE(Cidr::parse("10.0.0.0"));
  EXPECT_FALSE(Cidr::parse("10.0.0.0/33"));
  EXPECT_FALSE(Cidr::parse("10.0.0.0/"));
  EXPECT_FALSE(Cidr::parse("10.0.0/8"));
}

// Property sweep: netmask and size are consistent for every prefix length.
class CidrPrefixSweep : public ::testing::TestWithParam<int> {};

TEST_P(CidrPrefixSweep, MaskAndSizeConsistent) {
  int len = GetParam();
  Cidr c(Ipv4Address(203, 0, 113, 7), static_cast<uint8_t>(len));
  if (len > 0) {
    // Network address is inside; the last address is inside; one past is
    // not (unless /0 covers everything).
    EXPECT_TRUE(c.contains(c.network()));
    EXPECT_TRUE(c.contains(c.address_at(c.size() - 1)));
  }
  // popcount(netmask) == prefix length.
  EXPECT_EQ(__builtin_popcount(c.netmask()), len);
}

INSTANTIATE_TEST_SUITE_P(AllPrefixLengths, CidrPrefixSweep,
                         ::testing::Range(0, 33));

// --- IPv6 address surface (thin units; depth lives in the fuzz sweeps) ---

TEST(Ipv6Address, ParseAndCanonicalForm) {
  auto a = Ipv6Address::parse("fd00::5eed:c000:250");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->hi(), 0xfd00'0000'0000'0000u);
  EXPECT_EQ(a->lo(), 0x0000'5eed'c000'0250u);
  // RFC 5952: lowercase, longest zero run compressed.
  EXPECT_EQ(a->to_string(), "fd00::5eed:c000:250");
  EXPECT_EQ(Ipv6Address(0, 1).to_string(), "::1");
  EXPECT_FALSE(Ipv6Address::parse("fd00:::1"));
  EXPECT_FALSE(Ipv6Address::parse("12345::"));
}

TEST(Ipv6Address, MapV6EmbedsAndUnmapsRoundTrip) {
  Ipv4Address v4(192, 0, 2, 80);
  Ipv6Address v6 = map_v6(v4);
  EXPECT_TRUE(v6.is_unique_local());
  auto back = unmap_v6(v6);
  ASSERT_TRUE(back);
  EXPECT_EQ(*back, v4);
  // Outside the fd00::5eed:0:0/96 embedding there is no v4 identity.
  EXPECT_FALSE(unmap_v6(Ipv6Address(0xfd00'0000'0000'0000, 1)));
  EXPECT_FALSE(unmap_v6(Ipv6Address(0x2001'0db8'0000'0000, 0)));
}

TEST(Ipv6Address, HostIdentityCollapsesBothFamilies) {
  Ipv4Address v4(10, 0, 0, 7);
  EXPECT_EQ(host_identity(IpAddress(v4)), v4);
  EXPECT_EQ(host_identity(IpAddress(map_v6(v4))), v4);
  // Unattributable v6 collapses to the zero address, not to a wrong host.
  EXPECT_EQ(host_identity(IpAddress(Ipv6Address(0x2001'0db8'0000'0000, 9))),
            Ipv4Address(uint32_t{0}));
}

TEST(Cidr6, ContainsAndMapping) {
  auto c = Cidr6::parse("fd00::5eed:a00:0/120");
  ASSERT_TRUE(c);
  EXPECT_EQ(c->prefix_len(), 120);
  EXPECT_TRUE(c->contains(map_v6(Ipv4Address(10, 0, 0, 42))));
  EXPECT_FALSE(c->contains(map_v6(Ipv4Address(10, 0, 1, 42))));
  // map_v6 on a Cidr shifts the prefix into the /96 embedding.
  Cidr6 mapped = map_v6(Cidr(Ipv4Address(10, 0, 0, 0), 24));
  EXPECT_EQ(mapped.prefix_len(), 120);
  EXPECT_EQ(mapped.network(), c->network());
  EXPECT_FALSE(Cidr6::parse("fd00::/129"));
}

}  // namespace
}  // namespace sm::common
